//! # HERA — Efficient Entity Resolution on Heterogeneous Records
//!
//! A from-scratch Rust reproduction of Lin, Wang, Li & Gao's HERA
//! (ICDE 2020): entity resolution that runs *directly* on records whose
//! schemas differ from source to source, instead of forcing them through
//! schema matching + data exchange first.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `hera-types` | records, schemas, values, datasets, ground truth |
//! | [`sim`] | `hera-sim` | pluggable value-similarity metrics (q-gram Jaccard, edit, Jaro-Winkler, cosine, Soft TF-IDF, numeric) |
//! | [`join`] | `hera-join` | similarity self-join (inverted q-gram index + prefix filter) |
//! | [`block`] | `hera-block` | blocking & meta-blocking: token / q-gram / MinHash-LSH candidate generation |
//! | [`matching`] | `hera-matching` | Kuhn–Munkres max-weight bipartite matching, simplification, greedy |
//! | [`index`] | `hera-index` | the value-pair index, Algorithm-1 bounds, union–find, merge maintenance |
//! | [`obs`] | `hera-obs` | structured run journal: spans, counters, merge/promotion events (JSON Lines) |
//! | [`serve`] | `hera-serve` | long-lived sharded ER service: incremental ingest, boundary stitching, JSON-lines protocol over stdio/TCP |
//! | [`faults`] | `hera-faults` | deterministic fault injection: seeded failpoint plans, retry/backoff, injectable clocks |
//! | [`core`] | `hera-core` | super records, instance-/schema-based verification, the HERA driver, the chaos harness |
//! | [`store`] | `hera-store` | versioned, CRC-checked session snapshots (checkpoint/restore) |
//! | [`baselines`] | `hera-baselines` | R-Swoosh, correlation clustering, collective ER, nest-loop verifier |
//! | [`datagen`] | `hera-datagen` | synthetic heterogeneous movie datasets (Table I presets) |
//! | [`exchange`] | `hera-exchange` | target schemas, tgds, the chase (`-S` / `-L` homogeneous datasets) |
//! | [`eval`] | `hera-eval` | pairwise precision/recall/F1, B³ |
//!
//! ## Quickstart
//!
//! ```
//! use hera::{Hera, HeraConfig, motivating_example};
//!
//! let dataset = motivating_example(); // the paper's Fig. 1 customers
//! let result = Hera::builder(HeraConfig::new(0.5, 0.5)).build().run(&dataset)?;
//! assert_eq!(result.entity_count(), 2);
//! # Ok::<(), hera::HeraError>(())
//! ```
//!
//! Long-running sessions can be checkpointed to disk and restored later
//! (bit-identical continuation — see `DESIGN.md`, Persistence):
//!
//! ```no_run
//! use hera::{HeraConfig, HeraSession};
//!
//! let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
//! // … add schemas/records, resolve …
//! session.checkpoint("run.hera")?;
//! // later, possibly in another process:
//! let resumed = HeraSession::builder(HeraConfig::new(0.5, 0.5)).restore("run.hera")?;
//! # drop(resumed);
//! # Ok::<(), hera::HeraError>(())
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/hera-bench`
//! for the experiment reproductions (Tables I–II, Figs. 9–12).

#![forbid(unsafe_code)]

pub use hera_baselines as baselines;
pub use hera_block as block;
pub use hera_core as core;
pub use hera_datagen as datagen;
pub use hera_eval as eval;
pub use hera_exchange as exchange;
pub use hera_faults as faults;
pub use hera_index as index;
pub use hera_join as join;
pub use hera_matching as matching;
pub use hera_obs as obs;
pub use hera_serve as serve;
pub use hera_sim as sim;
pub use hera_store as store;
pub use hera_types as types;

// The everyday API surface, flattened.
pub use hera_baselines::{
    CollectiveEr, CorrelationClustering, NestLoopVerifier, RSwoosh, Resolver,
};
pub use hera_block::{Blocker, BlockingScheme};
pub use hera_core::{
    check_no_torn_state, run_chaos, BoundMode, ChaosConfig, ChaosReport, ChaosVerdict, Hera,
    HeraBuilder, HeraConfig, HeraResult, HeraSession, HeraSessionBuilder, InstanceVerifier,
    MergeEvent, ProgressiveReport, ResolveBudget, ResolveStream, RunStats, SchemaVoter, SimCache,
    SimDelta, SuperRecord, Verification, VerifyScratch,
};
pub use hera_datagen::{table1_dataset, DatagenConfig, Domain, Generator};
pub use hera_eval::{adjusted_rand_index, bcubed, v_measure, PairMetrics};
pub use hera_exchange::{
    chase, exchange_large, exchange_small, fuse_entities, plan_exchange, plan_exchange_ensuring,
    ExchangePlan, Tgd,
};
pub use hera_faults::{
    io_retryable, retry, BackoffPolicy, Clock, FaultInjector, FaultKind, FaultPlan, FaultRule,
    FiredFault, ManualClock, RetryError, SystemClock,
};
pub use hera_index::{FlatIndex, UnionFind, ValuePair, ValuePairIndex};
pub use hera_join::{IncrementalJoin, JoinConfig, SimilarityJoin};
pub use hera_obs::{JournalBuffer, Recorder};
pub use hera_serve::{
    ErService, ErServiceBuilder, IngestReply, LookupReply, LookupSample, RunLog, Schedule,
    ScheduledOp, ServeClient, TcpClient,
};
pub use hera_sim::{
    CosineTf, DiceQGram, EditSimilarity, ExactMatch, Jaro, JaroWinkler, MongeElkan,
    NumericProximity, OverlapQGram, QGramJaccard, SoftTfIdf, TokenJaccard, TypeDispatch,
    ValueSimilarity,
};
pub use hera_store::Snapshot;
pub use hera_types::{
    motivating_example, CanonAttrId, CsvImporter, Dataset, DatasetBuilder, EntityId, GroundTruth,
    HeraError, Label, Record, RecordId, Result, Schema, SchemaId, SchemaRegistry, SourceAttr,
    SourceAttrId, Value, ValueKind,
};
