//! Quickstart: resolve the paper's Fig. 1 customer records in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hera::{motivating_example, Hera, HeraConfig, PairMetrics};

fn main() {
    // Six customer records under three different schemas (the paper's
    // motivating example). Ground truth: {r1, r2, r4, r6} are one person,
    // {r3, r5} another.
    let dataset = motivating_example();
    println!(
        "dataset: {} records under {} schemas",
        dataset.len(),
        dataset.registry.len()
    );
    for record in dataset.iter() {
        let schema = dataset.registry.schema(record.schema);
        println!("  {}  [{}]  {:?}", record.id, schema.name, record.values);
    }

    // Run HERA with the paper's worked-example thresholds: record
    // similarity δ = 0.5, value similarity ξ = 0.5.
    let hera = Hera::builder(HeraConfig::new(0.5, 0.5)).build();
    let result = hera.run(&dataset).expect("resolution failed");

    println!(
        "\nresolved {} entities in {} iterations:",
        result.entity_count(),
        result.stats.iterations
    );
    for cluster in result.clusters() {
        let names: Vec<String> = cluster.iter().map(|r| format!("r{}", r + 1)).collect();
        println!("  entity: {{{}}}", names.join(", "));
    }

    // Score against ground truth.
    let metrics = PairMetrics::score(&result.clusters(), &dataset.truth);
    println!("\nquality: {metrics}");

    // The schema matchings HERA discovered along the way.
    if !result.schema_matchings.is_empty() {
        println!("\ndiscovered schema matchings:");
        for m in &result.schema_matchings {
            println!(
                "  {} ≈ {} (confidence {:.2})",
                dataset.registry.attr_qualified_name(m.attr),
                dataset.registry.attr_qualified_name(m.partner),
                m.confidence
            );
        }
    }
}
