//! Customer deduplication under heterogeneous CRM exports — the paper's
//! Fig. 1 scenario, scaled up and compared against the conventional
//! schema-matching-then-ER pipeline.
//!
//! Three "CRM systems" export customers under different schemas. We run:
//!
//! 1. the conventional pipeline (Fig. 1-c): exchange everything into a
//!    target schema, then match with R-Swoosh — information outside the
//!    target schema is lost;
//! 2. HERA (Fig. 1-d): resolve directly on the heterogeneous records.
//!
//! ```sh
//! cargo run --release --example customer_dedup
//! ```

use hera::{
    exchange_small, CanonAttrId, Dataset, DatasetBuilder, EntityId, Hera, HeraConfig, PairMetrics,
    RSwoosh, Resolver, TypeDispatch, Value,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a synthetic three-CRM customer dataset: `n_entities` people,
/// each appearing in 2–4 exports. Canonical attributes: 0 name, 1 street,
/// 2 email, 3 city, 4 segment, 5 phone, 6 job title.
fn build_customers(n_entities: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("crm-customers");
    let c = CanonAttrId::new;
    let crm_a = b.add_schema(
        "CRM North",
        [
            ("full_name", c(0)),
            ("street", c(1)),
            ("email", c(2)),
            ("city", c(3)),
            ("segment", c(4)),
        ],
    );
    let crm_b = b.add_schema(
        "CRM South",
        [("customer", c(0)), ("phone", c(5)), ("role", c(6))],
    );
    let crm_c = b.add_schema(
        "Legacy Billing",
        [
            ("name", c(0)),
            ("addr", c(1)),
            ("mailbox", c(2)),
            ("tel", c(5)),
            ("segment_code", c(4)),
        ],
    );

    let firsts = [
        "John", "Mary", "Wei", "Aisha", "Carlos", "Elena", "Bush", "Priya", "Tomás", "Ingrid",
        "Kenji", "Fatima", "Viktor", "Amara", "Declan", "Yuki",
    ];
    let lasts = [
        "Smith",
        "Garcia",
        "Chen",
        "Okafor",
        "Miller",
        "Kovacs",
        "Walker",
        "Rao",
        "Ueda",
        "Novak",
        "Adeyemi",
        "Lindqvist",
        "Moreau",
        "Castillo",
        "Byrne",
        "Haddad",
    ];
    let streets = [
        "2 Norman Street",
        "14 Hill Road",
        "77 Ocean Ave",
        "5 Birch Lane",
    ];
    let cities = ["LA", "Boston", "Austin", "Seattle"];
    let segments = ["Electronics", "Sports", "Books", "Groceries"];
    let jobs = ["manager", "product manager", "engineer", "analyst"];

    for e in 0..n_entities {
        let name = format!(
            "{} {}",
            firsts[rng.gen_range(0..firsts.len())],
            lasts[rng.gen_range(0..lasts.len())]
        );
        // House numbers and mailbox digits keep identities separable even
        // when two customers share a name — like real CRM data, the
        // *combination* of fields identifies a person, not any one field.
        let street = format!(
            "{} {}",
            rng.gen_range(1..900),
            streets[rng.gen_range(0..streets.len())]
        );
        let email = format!(
            "{}{}@{}mail.com",
            name.to_lowercase().replace(' ', "."),
            rng.gen_range(10..99),
            ["g", "hot", "proton"][rng.gen_range(0..3)]
        );
        let city = cities[rng.gen_range(0..cities.len())];
        let segment = segments[rng.gen_range(0..segments.len())];
        let phone = format!(
            "{:03}-{:03}",
            rng.gen_range(100..999),
            rng.gen_range(100..999)
        );
        let job = jobs[rng.gen_range(0..jobs.len())];

        let abbreviated = {
            let mut it = name.split(' ');
            let f = it.next().unwrap();
            format!("{}. {}", &f[..1], it.next().unwrap())
        };
        for copy in 0..rng.gen_range(2..=4usize) {
            let entity = EntityId::new(e as u32);
            match rng.gen_range(0..3) {
                0 => b
                    .add_record(
                        crm_a,
                        vec![
                            Value::from(name.clone()),
                            Value::from(street.clone()),
                            Value::from(email.clone()),
                            Value::from(city),
                            Value::from(segment),
                        ],
                        entity,
                    )
                    .unwrap(),
                1 => b
                    .add_record(
                        crm_b,
                        vec![
                            Value::from(if copy % 2 == 0 {
                                name.clone()
                            } else {
                                abbreviated.clone()
                            }),
                            Value::from(phone.clone()),
                            Value::from(job),
                        ],
                        entity,
                    )
                    .unwrap(),
                _ => b
                    .add_record(
                        crm_c,
                        vec![
                            Value::from(abbreviated.clone()),
                            Value::from(street.clone()),
                            Value::from(email.clone()),
                            Value::from(phone.clone()),
                            Value::from(segment.to_lowercase()),
                        ],
                        entity,
                    )
                    .unwrap(),
            };
        }
    }
    b.build()
}

fn main() {
    let dataset = build_customers(120, 7);
    println!(
        "{}: {} records, {} entities, {} schemas",
        dataset.name,
        dataset.len(),
        dataset.truth.entity_count(),
        dataset.registry.len()
    );

    // --- Conventional pipeline: exchange to a 1/3 target schema, then
    // R-Swoosh on the homogeneous result.
    let (homogeneous, plan) = exchange_small(&dataset, 11);
    println!(
        "\nconventional pipeline: target keeps {} of 7 attributes, {} source values dropped",
        plan.target_attrs.len(),
        plan.dropped_value_count
    );
    let metric = TypeDispatch::paper_default();
    // δ = 0.7: CRM South records carry only three fields, so a chance
    // name+job collision at δ = 0.5 would already merge two strangers.
    let swoosh_clusters = RSwoosh::new(0.7, 0.5).resolve(&homogeneous, &metric);
    let swoosh_metrics = PairMetrics::score(&swoosh_clusters, &homogeneous.truth);
    println!("  R-Swoosh on exchanged data: {swoosh_metrics}");

    // --- HERA directly on the heterogeneous records.
    let result = Hera::builder(HeraConfig::new(0.7, 0.5))
        .build()
        .run(&dataset)
        .expect("resolution failed");
    let hera_metrics = PairMetrics::score(&result.clusters(), &dataset.truth);
    println!(
        "  HERA on heterogeneous data: {hera_metrics} ({} iterations, {} merges)",
        result.stats.iterations, result.stats.merges
    );

    let gain = hera_metrics.f1() - swoosh_metrics.f1();
    println!(
        "\nF1 gain from resolving before exchange: {:+.3} ({})",
        gain,
        if gain > 0.0 {
            "information loss avoided"
        } else {
            "dataset too easy to show a gap"
        }
    );
}
