//! The full evaluation pipeline on a Table-I-scale movie dataset:
//! generate heterogeneous records, build the `-S` homogeneous variant via
//! data exchange, then race HERA against all three baselines — a
//! miniature of Fig. 11.
//!
//! ```sh
//! cargo run --release --example movies_pipeline
//! ```

use hera::{
    exchange_small, table1_dataset, CollectiveEr, CorrelationClustering, Hera, HeraConfig,
    PairMetrics, RSwoosh, Resolver, TypeDispatch,
};
use std::time::Instant;

fn main() {
    let dataset = table1_dataset("dm1");
    println!(
        "{}: {} records, {} entities, {} distinct attributes, {} sources",
        dataset.name,
        dataset.len(),
        dataset.truth.entity_count(),
        dataset.truth.distinct_attr_count(),
        dataset.registry.len()
    );

    // Homogeneous variant: target schema keeps 1/3 of the attributes.
    let (homogeneous, plan) = exchange_small(&dataset, 1);
    println!(
        "exchanged to {}: {} target attributes, {} values lost\n",
        homogeneous.name,
        plan.target_attrs.len(),
        plan.dropped_value_count
    );

    let metric = TypeDispatch::paper_default();
    let (delta, xi) = (0.5, 0.5);

    println!(
        "{:<10} {:>9} {:>7} {:>7} {:>7} {:>10}",
        "system", "input", "P", "R", "F1", "time"
    );

    // HERA sees the heterogeneous originals.
    let t = Instant::now();
    let result = Hera::builder(HeraConfig::new(delta, xi))
        .build()
        .run(&dataset)
        .expect("resolution failed");
    let m = PairMetrics::score(&result.clusters(), &dataset.truth);
    println!(
        "{:<10} {:>9} {:>7.3} {:>7.3} {:>7.3} {:>9.0?}",
        "HERA",
        "hetero",
        m.precision(),
        m.recall(),
        m.f1(),
        t.elapsed()
    );

    // Baselines see the exchanged data (the conventional pipeline).
    let baselines: Vec<Box<dyn Resolver>> = vec![
        Box::new(RSwoosh::new(delta, xi)),
        Box::new(CorrelationClustering::new(delta, xi, 7)),
        Box::new(CollectiveEr::new(delta, xi, 0.25)),
    ];
    for b in baselines {
        let t = Instant::now();
        let clusters = b.resolve(&homogeneous, &metric);
        let m = PairMetrics::score(&clusters, &homogeneous.truth);
        println!(
            "{:<10} {:>9} {:>7.3} {:>7.3} {:>7.3} {:>9.0?}",
            b.name(),
            "homo -S",
            m.precision(),
            m.recall(),
            m.f1(),
            t.elapsed()
        );
    }

    println!(
        "\nHERA exploits the {} values the target schema dropped; the baselines never see them.",
        plan.dropped_value_count
    );

    // Fig. 1-d's final step: *ideal* data exchange — one fused
    // target-schema record per resolved entity.
    let fused = hera::fuse_entities(&dataset, &result.entity_of, &plan, "D_m1-fused");
    println!(
        "ideal exchange: {} heterogeneous records fused into {} target-schema entities",
        dataset.len(),
        fused.len()
    );
}
