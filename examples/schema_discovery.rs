//! Schema matching as a by-product: HERA's schema-based method discovers
//! which attributes of different sources denote the same thing, with a
//! Chernoff-bounded error probability (§IV-B) — no training data, no
//! manual mappings.
//!
//! ```sh
//! cargo run --release --example schema_discovery
//! ```

use hera::{table1_dataset, Hera, HeraConfig};

fn main() {
    let dataset = table1_dataset("dm1");
    println!(
        "{}: {} records under {} source schemas ({} distinct attributes)\n",
        dataset.name,
        dataset.len(),
        dataset.registry.len(),
        dataset.truth.distinct_attr_count()
    );

    let result = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&dataset)
        .expect("resolution failed");

    println!(
        "HERA decided {} schema matchings while resolving entities:\n",
        result.schema_matchings.len()
    );
    let mut correct = 0usize;
    for m in &result.schema_matchings {
        let truthful = dataset.truth.same_attr(m.attr, m.partner);
        if truthful {
            correct += 1;
        }
        println!(
            "  {:<32} ≈ {:<32}  conf {:.2}  {}",
            dataset.registry.attr_qualified_name(m.attr),
            dataset.registry.attr_qualified_name(m.partner),
            m.confidence,
            if truthful { "✓" } else { "✗" }
        );
    }
    if !result.schema_matchings.is_empty() {
        println!(
            "\naccuracy against ground-truth attribute identity: {}/{} ({:.1}%)",
            correct,
            result.schema_matchings.len(),
            100.0 * correct as f64 / result.schema_matchings.len() as f64
        );
    }

    println!(
        "\n(entity resolution quality meanwhile: {} entities predicted vs {} true)",
        result.entity_count(),
        dataset.truth.entity_count()
    );
}
