//! Swapping the similarity black box: the paper's `simv` is pluggable
//! ("other string similarity functions, such as Soft TF-IDF, edit
//! distance, etc, could be served as alternatives" — §II-A). This example
//! runs HERA over D_m1 under several metric stacks and compares quality.
//!
//! ```sh
//! cargo run --release --example custom_metrics
//! ```

use hera::{
    EditSimilarity, Hera, HeraConfig, MongeElkan, NumericProximity, PairMetrics, QGramJaccard,
    SoftTfIdf, TypeDispatch,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = hera::table1_dataset("dm1");
    println!(
        "{}: {} records, {} entities — same data, different simv black boxes\n",
        ds.name,
        ds.len(),
        ds.truth.entity_count()
    );

    // Train Soft TF-IDF on the dataset's own string values (its IDF table
    // needs a corpus; the value universe is the natural one).
    let corpus: Vec<String> = ds
        .iter()
        .flat_map(|r| r.values.iter())
        .filter_map(|v| v.as_str().map(str::to_owned))
        .collect();
    let soft = SoftTfIdf::train(corpus.iter().map(String::as_str), 0.9);

    // Each stack carries its own (δ, ξ): looser metrics (Monge-Elkan
    // scores any token-ish overlap highly) need stricter thresholds —
    // tuning δ/ξ per metric is exactly the knob the paper leaves to the
    // user.
    let stacks: Vec<(&str, TypeDispatch, f64, f64)> = vec![
        (
            "2-gram Jaccard (paper default)",
            TypeDispatch::paper_default(),
            0.5,
            0.5,
        ),
        (
            "3-gram Jaccard",
            TypeDispatch::paper_default().with_string_metric(Arc::new(QGramJaccard::new(3))),
            0.5,
            0.5,
        ),
        (
            "edit distance",
            TypeDispatch::paper_default().with_string_metric(Arc::new(EditSimilarity)),
            0.5,
            0.5,
        ),
        (
            "Monge-Elkan / Jaro-Winkler (strict)",
            TypeDispatch::paper_default().with_string_metric(Arc::new(MongeElkan::default())),
            0.62,
            0.72,
        ),
        (
            "Soft TF-IDF (trained on the data)",
            TypeDispatch::paper_default().with_string_metric(Arc::new(soft)),
            0.5,
            0.5,
        ),
        (
            "forgiving years (numeric scale 3)",
            TypeDispatch::paper_default().with_numeric_metric(Arc::new(NumericProximity::new(3.0))),
            0.5,
            0.5,
        ),
    ];

    println!(
        "{:<36} {:>4} {:>4} {:>7} {:>7} {:>7} {:>10}",
        "metric stack", "δ", "ξ", "P", "R", "F1", "time"
    );
    for (name, metric, delta, xi) in stacks {
        let t = Instant::now();
        let result = Hera::builder(HeraConfig::new(delta, xi))
            .metric(Arc::new(metric))
            .build()
            .run(&ds)
            .expect("resolution failed");
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        println!(
            "{:<36} {:>4.2} {:>4.2} {:>7.3} {:>7.3} {:>7.3} {:>9.1?}",
            name,
            delta,
            xi,
            m.precision(),
            m.recall(),
            m.f1(),
            t.elapsed()
        );
    }

    println!(
        "\nNote: non-Jaccard metrics cannot use the join's signature fast path\n\
         or guarantee prefix-filter completeness, so they run slower and the\n\
         candidate generation is heuristic for them (see hera-join docs)."
    );
}
