//! Streaming entity resolution: records arrive one at a time from
//! heterogeneous sources and resolve immediately against everything seen
//! so far — HERA as a long-running service rather than a batch job.
//!
//! ```sh
//! cargo run --release --example streaming_er
//! ```

use hera::core::HeraSession;
use hera::{HeraConfig, PairMetrics, SchemaId};
use std::time::Instant;

fn main() {
    let ds = hera::table1_dataset("dm1");
    println!(
        "streaming {} records from {} heterogeneous sources...\n",
        ds.len(),
        ds.registry.len()
    );

    let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    let schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();

    let t = Instant::now();
    let mut latencies = Vec::with_capacity(ds.len());
    for (i, rec) in ds.iter().enumerate() {
        let t_rec = Instant::now();
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .expect("schema-aligned record");
        session.resolve();
        latencies.push(t_rec.elapsed());

        if (i + 1) % 250 == 0 {
            println!(
                "  after {:>4} records: {:>3} entities, {:>4} merges, {:>3} schema matchings, index |V| = {}",
                i + 1,
                session.clusters().len(),
                session.merge_count(),
                session.schema_matchings().len(),
                session.index_size()
            );
        }
    }
    let total = t.elapsed();

    latencies.sort_unstable();
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[latencies.len() * 99 / 100];
    let metrics = PairMetrics::score(&session.clusters(), &ds.truth);

    println!("\ningest+resolve: {total:.2?} total, per-record p50 {p50:.1?}, p99 {p99:.1?}");
    println!(
        "final: {} entities (truth: {}), quality {}",
        session.clusters().len(),
        ds.truth.entity_count(),
        metrics
    );
    println!(
        "schema matchings discovered along the way: {}",
        session.schema_matchings().len()
    );
}
