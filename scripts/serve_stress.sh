#!/usr/bin/env bash
# Multi-client stress smoke for hera-serve: one 2-shard / 2-worker TCP
# server, four concurrent clients each streaming interleaved ingest +
# lookup requests over a single held connection, then a final stitch and
# consistency check. Any error reply, dropped response line, or lost
# record fails the script.
set -euo pipefail

BIN=${HERA_CLI:-target/release/hera-cli}
PORT=${HERA_STRESS_PORT:-17879}
ADDR=127.0.0.1:$PORT
CLIENTS=4
OPS=40 # requests per client; every odd op is an ingest, every even a lookup
DIR=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

req() { "$BIN" client --connect "$ADDR" --line "$1"; }

wait_ready() {
  for _ in $(seq 1 50); do
    if req '{"cmd":"stats"}' > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: server on $ADDR never became ready" >&2
  exit 1
}

"$BIN" serve --shards 2 --workers 2 --stitch-every 8 --listen "$ADDR" &
SERVER_PID=$!
wait_ready

req '{"cmd":"schema","name":"people","attrs":["name","email"]}' > /dev/null

# Each client's stream: ingest first (so record 0 exists globally before
# any lookup on this connection is handled), then alternate lookups of
# id 0 with further ingests. Connections are held open for the whole
# stream — all four run concurrently against the live server.
client_stream() {
  local c=$1
  local i
  for i in $(seq 1 "$OPS"); do
    if [ $((i % 2)) -eq 1 ]; then
      printf '{"cmd":"ingest","schema":0,"values":[{"Str":"user%s entry %s"},{"Str":"u%s-%s@stress.io"}]}\n' "$c" "$i" "$c" "$i"
    else
      printf '{"cmd":"lookup","id":0}\n'
    fi
  done
}

CLIENT_PIDS=()
for c in $(seq 1 "$CLIENTS"); do
  client_stream "$c" | "$BIN" client --connect "$ADDR" > "$DIR/client$c.out" &
  CLIENT_PIDS+=("$!")
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid"
done

INGESTS_PER_CLIENT=$(( (OPS + 1) / 2 ))
for c in $(seq 1 "$CLIENTS"); do
  GOT=$(wc -l < "$DIR/client$c.out")
  if [ "$GOT" -ne "$OPS" ]; then
    echo "FAIL: client $c got $GOT/$OPS responses" >&2
    exit 1
  fi
  if grep -q '"ok":false' "$DIR/client$c.out"; then
    echo "FAIL: client $c saw an error reply:" >&2
    grep '"ok":false' "$DIR/client$c.out" >&2
    exit 1
  fi
done

WANT=$((CLIENTS * INGESTS_PER_CLIENT))
STATS=$(req '{"cmd":"stats"}')
echo "stats after stress: $STATS"
case "$STATS" in
  *"\"records\":$WANT"*) ;;
  *) echo "FAIL: expected $WANT records in stats" >&2; exit 1;;
esac

req '{"cmd":"stitch"}' > /dev/null
FINAL=$(req '{"cmd":"lookup","id":0}')
echo "final lookup: $FINAL"
case "$FINAL" in
  *'"ok":true'*'"provisional":false'*) ;;
  *) echo "FAIL: post-stitch lookup not authoritative" >&2; exit 1;;
esac

req '{"cmd":"shutdown"}' > /dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "serve stress OK ($CLIENTS clients x $OPS ops, $WANT records)"
