#!/usr/bin/env bash
# Restore-after-kill smoke for hera-serve: start a TCP server, ingest,
# stitch, record a lookup answer, checkpoint, kill -9 the server, restore
# a fresh process from the checkpoint, and demand the same lookup answer
# bit for bit — then prove ingest still works on the restored service.
set -euo pipefail

BIN=${HERA_CLI:-target/release/hera-cli}
PORT=${HERA_SERVE_PORT:-17878}
ADDR=127.0.0.1:$PORT
DIR=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

req() { "$BIN" client --connect "$ADDR" --line "$1"; }

# The server accepts connections sequentially; retry until it listens.
wait_ready() {
  for _ in $(seq 1 50); do
    if req '{"cmd":"stats"}' > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: server on $ADDR never became ready" >&2
  exit 1
}

"$BIN" serve --shards 2 --stitch-every 2 --listen "$ADDR" &
SERVER_PID=$!
wait_ready

req '{"cmd":"schema","name":"people","attrs":["name","email"]}'
req '{"cmd":"batch","records":[{"schema":0,"values":[{"Str":"alice example"},{"Str":"alice@x.io"}]},{"schema":0,"values":[{"Str":"alice example"},{"Str":"alice@x.io"}]}]}'
req '{"cmd":"ingest","schema":0,"values":[{"Str":"bob other"},{"Str":"bob@y.io"}]}'
req '{"cmd":"stitch"}'
BEFORE=$(req '{"cmd":"lookup","id":0}')
echo "lookup before kill: $BEFORE"
case "$BEFORE" in *'"ok":true'*) ;; *) echo "FAIL: lookup failed pre-kill" >&2; exit 1;; esac
req "{\"cmd\":\"checkpoint\",\"path\":\"$DIR/svc.hera\"}"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

"$BIN" serve --shards 2 --stitch-every 2 --restore "$DIR/svc.hera" --listen "$ADDR" &
SERVER_PID=$!
wait_ready

AFTER=$(req '{"cmd":"lookup","id":0}')
echo "lookup after restore: $AFTER"
if [ "$BEFORE" != "$AFTER" ]; then
  echo "FAIL: lookup diverged across kill + restore" >&2
  exit 1
fi

# The restored service keeps ingesting and stitching.
req '{"cmd":"ingest","schema":0,"values":[{"Str":"bob other"},{"Str":"bob@y.io"}]}'
req '{"cmd":"stitch"}'
MERGED=$(req '{"cmd":"lookup","id":2}')
echo "post-restore merge lookup: $MERGED"
case "$MERGED" in *'"members":[2,3]'*) ;; *) echo "FAIL: post-restore ingest did not merge the duplicate" >&2; exit 1;; esac
req '{"cmd":"shutdown"}'
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "serve smoke OK"
