//! Seeded vocabularies for synthetic value generation.

/// First names for people-valued attributes.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Christopher",
    "Karen",
    "Charles",
    "Lisa",
    "Daniel",
    "Nancy",
    "Matthew",
    "Betty",
    "Anthony",
    "Sandra",
    "Mark",
    "Margaret",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Andrew",
    "Emily",
    "Paul",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Carol",
    "Kevin",
    "Amanda",
    "Brian",
    "Melissa",
    "George",
    "Deborah",
    "Timothy",
    "Stephanie",
    "Akira",
    "Hiro",
    "Sofia",
    "Luis",
    "Pedro",
    "Ingmar",
    "Federico",
    "Jean",
    "Claude",
    "Wong",
    "Ang",
    "Bong",
];

/// Last names for people-valued attributes.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Kurosawa",
    "Fellini",
    "Bergman",
    "Truffaut",
    "Kar-wai",
    "Joon-ho",
    "Villeneuve",
    "Nolan",
    "Scorsese",
    "Kubrick",
];

/// Words that movie titles are assembled from.
pub const TITLE_WORDS: &[&str] = &[
    "Shadow", "Empire", "Return", "Night", "Dawn", "Storm", "Silent", "Broken", "Golden", "Hidden",
    "Last", "First", "Dark", "Bright", "Lost", "Found", "Winter", "Summer", "Autumn", "Spring",
    "River", "Mountain", "Ocean", "Desert", "City", "Village", "Garden", "Bridge", "Tower",
    "Castle", "Dream", "Memory", "Promise", "Secret", "Whisper", "Echo", "Mirror", "Window",
    "Door", "Key", "Crown", "Sword", "Rose", "Thorn", "Ash", "Ember", "Frost", "Blood", "Stone",
    "Iron", "Glass", "Paper", "Silk", "Velvet", "Crimson", "Azure", "Jade", "Amber", "Scarlet",
    "Raven", "Falcon", "Wolf", "Lion", "Serpent", "Dragon", "Phoenix",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Thriller",
    "Action",
    "Romance",
    "Horror",
    "Science Fiction",
    "Western",
    "Documentary",
    "Animation",
    "Crime",
    "Mystery",
    "Fantasy",
    "War",
    "Musical",
    "Film Noir",
    "Adventure",
    "Biography",
    "History",
    "Sport",
];

/// Spoken languages.
pub const LANGUAGES: &[&str] = &[
    "English",
    "French",
    "Spanish",
    "German",
    "Italian",
    "Japanese",
    "Korean",
    "Mandarin",
    "Cantonese",
    "Hindi",
    "Portuguese",
    "Russian",
    "Swedish",
    "Danish",
    "Polish",
    "Turkish",
];

/// Production countries.
pub const COUNTRIES: &[&str] = &[
    "USA",
    "United Kingdom",
    "France",
    "Germany",
    "Italy",
    "Japan",
    "South Korea",
    "China",
    "India",
    "Brazil",
    "Russia",
    "Sweden",
    "Denmark",
    "Poland",
    "Canada",
    "Australia",
    "Mexico",
    "Spain",
];

/// Studios / production companies.
pub const STUDIOS: &[&str] = &[
    "Paramount Pictures",
    "Warner Bros",
    "Universal Pictures",
    "Columbia Pictures",
    "20th Century Studios",
    "Metro Goldwyn Mayer",
    "United Artists",
    "Lionsgate",
    "Focus Features",
    "A24",
    "Miramax",
    "New Line Cinema",
    "Studio Ghibli",
    "Toho",
    "Gaumont",
    "Pathe",
    "Canal Plus",
    "BBC Films",
    "Working Title",
    "Legendary Pictures",
];

/// Plot keywords.
pub const KEYWORDS: &[&str] = &[
    "revenge",
    "betrayal",
    "redemption",
    "heist",
    "conspiracy",
    "survival",
    "family",
    "friendship",
    "love triangle",
    "coming of age",
    "road trip",
    "time travel",
    "amnesia",
    "undercover",
    "courtroom",
    "haunted house",
    "small town",
    "big city",
    "post apocalyptic",
    "space exploration",
    "artificial intelligence",
    "serial killer",
    "bank robbery",
    "political intrigue",
    "war crimes",
    "underdog",
    "rivalry",
    "sacrifice",
    "identity",
];

/// MPAA-style certificates.
pub const CERTIFICATES: &[&str] = &["G", "PG", "PG-13", "R", "NC-17", "Unrated"];

/// Per-canonical-attribute display-name aliases: sources pick one at
/// random, so the same semantic attribute surfaces under different names
/// in different schemas (the crux of heterogeneity).
pub const ALIASES: &[(&str, &[&str])] = &[
    (
        "title",
        &["title", "name", "film", "movie_title", "primary_title"],
    ),
    ("year", &["year", "release_year", "yr", "date_published"]),
    ("director", &["director", "directed_by", "dir", "filmmaker"]),
    ("actor1", &["actor", "star", "lead", "cast_1", "starring"]),
    ("actor2", &["actor_2", "co_star", "supporting", "cast_2"]),
    ("genre", &["genre", "category", "type", "kind"]),
    (
        "runtime",
        &["runtime", "duration", "length_min", "running_time"],
    ),
    ("language", &["language", "lang", "spoken_language"]),
    ("country", &["country", "nation", "produced_in", "origin"]),
    ("rating", &["rating", "score", "avg_vote", "user_rating"]),
    (
        "writer",
        &["writer", "screenplay", "written_by", "scenarist"],
    ),
    (
        "studio",
        &["studio", "production_company", "produced_by", "company"],
    ),
    ("budget", &["budget", "cost", "production_budget"]),
    (
        "gross",
        &["gross", "box_office", "worldwide_gross", "revenue"],
    ),
    ("votes", &["votes", "num_votes", "vote_count"]),
    ("keyword", &["keyword", "plot_keyword", "tag", "theme"]),
    (
        "release_date",
        &["release_date", "released", "premiere", "opening_date"],
    ),
    ("composer", &["composer", "music_by", "soundtrack"]),
    ("editor", &["editor", "edited_by", "film_editor"]),
    (
        "cinematographer",
        &["cinematographer", "dop", "camera", "photography"],
    ),
    (
        "producer",
        &["producer", "produced_by_person", "exec_producer"],
    ),
    (
        "distributor",
        &["distributor", "distributed_by", "released_by"],
    ),
    ("tagline", &["tagline", "slogan", "tag_line", "catchphrase"]),
    ("imdb_id", &["imdb_id", "external_id", "ref_id"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_nonempty_and_distinct() {
        for list in [
            FIRST_NAMES,
            LAST_NAMES,
            TITLE_WORDS,
            GENRES,
            LANGUAGES,
            COUNTRIES,
            STUDIOS,
            KEYWORDS,
            CERTIFICATES,
        ] {
            assert!(!list.is_empty());
            let mut v: Vec<&str> = list.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), list.len(), "duplicate vocab entry");
        }
    }

    #[test]
    fn aliases_cover_every_catalog_attr() {
        assert_eq!(ALIASES.len(), 24);
        for (canon, aliases) in ALIASES {
            assert!(!aliases.is_empty(), "{canon} has no aliases");
        }
    }
}
