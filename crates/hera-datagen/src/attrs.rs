//! The canonical attribute catalog and per-attribute value generation.

use crate::vocab;
use hera_types::Value;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// How an attribute's canonical values are produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrKind {
    /// Multi-word title from [`vocab::TITLE_WORDS`].
    Title,
    /// `First Last` person name.
    Person,
    /// Pick from a fixed vocabulary.
    Pick(&'static [&'static str]),
    /// Pick 1..=k distinct entries and join with `", "` — models
    /// list-valued attributes (genres, spoken languages) and keeps value
    /// cardinality high enough that the value-pair index does not blow up
    /// quadratically on categorical cliques.
    PickMulti(&'static [&'static str], usize),
    /// Date string `"12 March 1994"`.
    Date,
    /// Page range `"123-145"`.
    PageRange,
    /// Integer in an inclusive range.
    IntRange(i64, i64),
    /// Float in a range with one decimal.
    FloatRange(f64, f64),
    /// Synthetic identifier `ttNNNNNNN`.
    ExternalId,
    /// `First M. Last` person name with a middle initial — ~97k distinct
    /// combinations versus ~3.7k for [`AttrKind::Person`], so value
    /// multiplicity stays O(1) at 10⁵⁺ records and the value-pair index
    /// does not blow up on name cliques.
    PersonFull,
    /// 3–5-word title from [`vocab::TITLE_WORDS`] — the scale variant of
    /// [`AttrKind::Title`], which allows 1-word titles whose huge
    /// same-value groups are quadratic poison at 10⁵⁺ records.
    TitleLong,
    /// Pick `lo..=hi` distinct entries and join with `", "` — like
    /// [`AttrKind::PickMulti`] but with a floor above 1, keeping
    /// list-valued categorical attributes high-cardinality.
    PickRange(&'static [&'static str], usize, usize),
}

/// One canonical (semantic) attribute of the movie domain.
#[derive(Debug, Clone, Copy)]
pub struct CanonAttr {
    /// Canonical name — keys into [`vocab::ALIASES`].
    pub name: &'static str,
    /// Value generator.
    pub kind: AttrKind,
}

/// The full catalog: 24 canonical attributes. Table I datasets use
/// 16–23 of them.
pub const CATALOG: &[CanonAttr] = &[
    CanonAttr {
        name: "title",
        kind: AttrKind::Title,
    },
    CanonAttr {
        name: "year",
        kind: AttrKind::IntRange(1950, 2020),
    },
    CanonAttr {
        name: "director",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "actor1",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "actor2",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "genre",
        kind: AttrKind::PickMulti(vocab::GENRES, 3),
    },
    CanonAttr {
        name: "runtime",
        kind: AttrKind::IntRange(70, 210),
    },
    CanonAttr {
        name: "language",
        kind: AttrKind::PickMulti(vocab::LANGUAGES, 2),
    },
    CanonAttr {
        name: "country",
        kind: AttrKind::PickMulti(vocab::COUNTRIES, 2),
    },
    CanonAttr {
        name: "rating",
        kind: AttrKind::FloatRange(1.0, 10.0),
    },
    CanonAttr {
        name: "writer",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "studio",
        kind: AttrKind::Pick(vocab::STUDIOS),
    },
    CanonAttr {
        name: "budget",
        kind: AttrKind::IntRange(100_000, 300_000_000),
    },
    CanonAttr {
        name: "gross",
        kind: AttrKind::IntRange(10_000, 2_000_000_000),
    },
    CanonAttr {
        name: "votes",
        kind: AttrKind::IntRange(100, 2_000_000),
    },
    CanonAttr {
        name: "keyword",
        kind: AttrKind::PickMulti(vocab::KEYWORDS, 3),
    },
    CanonAttr {
        name: "release_date",
        kind: AttrKind::Date,
    },
    CanonAttr {
        name: "composer",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "editor",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "cinematographer",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "producer",
        kind: AttrKind::Person,
    },
    CanonAttr {
        name: "distributor",
        kind: AttrKind::Pick(vocab::STUDIOS),
    },
    CanonAttr {
        name: "tagline",
        kind: AttrKind::Title,
    },
    CanonAttr {
        name: "imdb_id",
        kind: AttrKind::ExternalId,
    },
];

/// Aliases for a canonical attribute name.
pub fn aliases_of(canon_name: &str) -> &'static [&'static str] {
    vocab::ALIASES
        .iter()
        .find(|(n, _)| *n == canon_name)
        .map(|(_, a)| *a)
        .unwrap_or_else(|| panic!("no aliases for {canon_name}"))
}

impl CanonAttr {
    /// Generates one canonical value.
    pub fn generate(&self, rng: &mut ChaCha8Rng) -> Value {
        match self.kind {
            AttrKind::Title => {
                let n = rng.gen_range(1..=3);
                let words: Vec<&str> = (0..n)
                    .map(|_| vocab::TITLE_WORDS[rng.gen_range(0..vocab::TITLE_WORDS.len())])
                    .collect();
                let mut s = words.join(" ");
                if rng.gen_bool(0.3) {
                    s = format!("The {s}");
                }
                Value::from(s)
            }
            AttrKind::Person => {
                let f = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
                let l = vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())];
                Value::from(format!("{f} {l}"))
            }
            AttrKind::Pick(list) => Value::from(list[rng.gen_range(0..list.len())]),
            AttrKind::PickMulti(list, max_k) => {
                let k = rng.gen_range(1..=max_k.min(list.len()));
                let mut picks: Vec<&str> = Vec::with_capacity(k);
                while picks.len() < k {
                    let cand = list[rng.gen_range(0..list.len())];
                    if !picks.contains(&cand) {
                        picks.push(cand);
                    }
                }
                Value::from(picks.join(", "))
            }
            AttrKind::Date => {
                const MONTHS: [&str; 12] = [
                    "January",
                    "February",
                    "March",
                    "April",
                    "May",
                    "June",
                    "July",
                    "August",
                    "September",
                    "October",
                    "November",
                    "December",
                ];
                Value::from(format!(
                    "{} {} {}",
                    rng.gen_range(1..=28),
                    MONTHS[rng.gen_range(0..12)],
                    rng.gen_range(1950..=2020)
                ))
            }
            AttrKind::IntRange(lo, hi) => Value::from(rng.gen_range(lo..=hi)),
            AttrKind::FloatRange(lo, hi) => {
                let x = rng.gen_range(lo..hi);
                Value::from((x * 10.0).round() / 10.0)
            }
            AttrKind::ExternalId => Value::from(format!("tt{:07}", rng.gen_range(0..10_000_000))),
            AttrKind::PersonFull => {
                let f = vocab::FIRST_NAMES[rng.gen_range(0..vocab::FIRST_NAMES.len())];
                let m = (b'A' + rng.gen_range(0..26u8)) as char;
                let l = vocab::LAST_NAMES[rng.gen_range(0..vocab::LAST_NAMES.len())];
                Value::from(format!("{f} {m}. {l}"))
            }
            AttrKind::TitleLong => {
                let n = rng.gen_range(3..=5);
                let words: Vec<&str> = (0..n)
                    .map(|_| vocab::TITLE_WORDS[rng.gen_range(0..vocab::TITLE_WORDS.len())])
                    .collect();
                let mut s = words.join(" ");
                if rng.gen_bool(0.2) {
                    s = format!("The {s}");
                }
                Value::from(s)
            }
            AttrKind::PickRange(list, lo, hi) => {
                let k = rng.gen_range(lo.min(list.len())..=hi.min(list.len()));
                let mut picks: Vec<&str> = Vec::with_capacity(k);
                while picks.len() < k {
                    let cand = list[rng.gen_range(0..list.len())];
                    if !picks.contains(&cand) {
                        picks.push(cand);
                    }
                }
                Value::from(picks.join(", "))
            }
            AttrKind::PageRange => {
                let start = rng.gen_range(1..1400);
                let len = rng.gen_range(4..30);
                Value::from(format!("{start}-{}", start + len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn catalog_has_24_unique_names() {
        assert_eq!(CATALOG.len(), 24);
        let mut names: Vec<&str> = CATALOG.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn every_catalog_attr_has_aliases() {
        for a in CATALOG {
            assert!(!aliases_of(a.name).is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        for a in CATALOG {
            assert_eq!(a.generate(&mut r1), a.generate(&mut r2));
        }
    }

    #[test]
    fn kinds_produce_expected_value_types() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            match CATALOG[1].generate(&mut rng) {
                // year
                Value::Int(y) => assert!((1950..=2020).contains(&y)),
                other => panic!("year produced {other:?}"),
            }
            match CATALOG[9].generate(&mut rng) {
                // rating
                Value::Float(r) => assert!((1.0..=10.0).contains(&r)),
                other => panic!("rating produced {other:?}"),
            }
            assert!(matches!(CATALOG[0].generate(&mut rng), Value::Str(_)));
        }
    }

    #[test]
    fn external_ids_look_like_imdb() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = CATALOG[23].generate(&mut rng);
        let s = v.as_str().unwrap();
        assert!(s.starts_with("tt"));
        assert_eq!(s.len(), 9);
    }
}
