//! The dataset generator.

use crate::attrs::{aliases_of, CanonAttr, CATALOG};
use crate::corrupt::CorruptionConfig;
use crate::pubs;
use hera_types::{CanonAttrId, Dataset, DatasetBuilder, EntityId, SchemaId, Value};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// Which synthetic domain to draw entities from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Domain {
    /// Movie profiles (the paper's D_movies substitute).
    #[default]
    Movies,
    /// Bibliographic records (DBLP/Cora-style).
    Publications,
}

impl Domain {
    /// The domain's canonical attribute catalog.
    pub fn catalog(self) -> &'static [CanonAttr] {
        match self {
            Domain::Movies => CATALOG,
            Domain::Publications => pubs::pub_catalog(),
        }
    }

    /// Display-name aliases for one canonical attribute.
    pub fn aliases_of(self, name: &str) -> &'static [&'static str] {
        match self {
            Domain::Movies => aliases_of(name),
            Domain::Publications => pubs::PUB_ALIASES
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, a)| *a)
                .unwrap_or_else(|| panic!("no aliases for {name}")),
        }
    }
}

/// Generator configuration. See [`crate::presets`] for the Table I
/// calibrations.
#[derive(Debug, Clone)]
pub struct DatagenConfig {
    /// Dataset name (`"D_m1"` …).
    pub name: String,
    /// RNG seed; equal seeds give byte-identical datasets.
    pub seed: u64,
    /// Number of records `n`.
    pub n_records: usize,
    /// Number of entities.
    pub n_entities: usize,
    /// Number of distinct canonical attributes (≤ 24).
    pub n_attrs: usize,
    /// Number of heterogeneous sources (schemas).
    pub n_sources: usize,
    /// Minimum attributes per source schema.
    pub min_source_attrs: usize,
    /// Maximum attributes per source schema.
    pub max_source_attrs: usize,
    /// Value corruption profile.
    pub corruption: CorruptionConfig,
    /// Synthetic domain (movies by default).
    pub domain: Domain,
}

impl DatagenConfig {
    /// Switches the domain.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }
}

impl DatagenConfig {
    fn validate(&self) {
        assert!(self.n_entities >= 1 && self.n_entities <= self.n_records);
        assert!(
            (4..=self.domain.catalog().len()).contains(&self.n_attrs),
            "n_attrs must be in [4, {}]",
            self.domain.catalog().len()
        );
        assert!(self.n_sources >= 2, "heterogeneity needs >= 2 sources");
        assert!(self.min_source_attrs >= 2 && self.min_source_attrs <= self.max_source_attrs);
    }
}

/// One source schema: which catalog attributes it exposes, under which
/// display names.
struct Source {
    schema: SchemaId,
    /// Positions into the dataset's attribute list, in schema order.
    attr_positions: Vec<usize>,
}

/// Deterministic heterogeneous dataset generator.
pub struct Generator {
    cfg: DatagenConfig,
}

impl Generator {
    /// Creates a generator.
    pub fn new(cfg: DatagenConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.cfg;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut builder = DatasetBuilder::new(cfg.name.clone());

        // ---- 1. Select the dataset's canonical attributes: the core
        // (title, year, director) plus a random sample of the catalog.
        let catalog = cfg.domain.catalog();
        let mut attr_idx: Vec<usize> = vec![0, 1, 2];
        let mut rest: Vec<usize> = (3..catalog.len()).collect();
        rest.shuffle(&mut rng);
        attr_idx.extend(rest.into_iter().take(cfg.n_attrs - 3));
        let ds_attrs: Vec<CanonAttr> = attr_idx.iter().map(|&i| catalog[i]).collect();

        // ---- 2. Build sources. Round-robin distribution guarantees the
        // union of source schemas covers every dataset attribute (so the
        // "distinct attribute" count of Table I is exactly n_attrs); each
        // source then grows to its target size with random extras. The
        // core trio title/year/director is in every source — mirroring
        // real movie profiles (IMDB and DBPedia both carry them), and
        // giving cross-source record pairs the anchor overlap the paper's
        // bootstrap implicitly relies on.
        let mut per_source: Vec<Vec<usize>> = vec![vec![0, 1, 2]; cfg.n_sources];
        let mut shuffled: Vec<usize> = (3..ds_attrs.len()).collect();
        shuffled.shuffle(&mut rng);
        for (i, &pos) in shuffled.iter().enumerate() {
            per_source[i % cfg.n_sources].push(pos);
        }
        for attrs in per_source.iter_mut() {
            let target = rng
                .gen_range(cfg.min_source_attrs..=cfg.max_source_attrs)
                .min(ds_attrs.len());
            while attrs.len() < target {
                let extra = rng.gen_range(0..ds_attrs.len());
                if !attrs.contains(&extra) {
                    attrs.push(extra);
                }
            }
            // Schema order: shuffled so field positions differ per source.
            attrs.shuffle(&mut rng);
        }

        let sources: Vec<Source> = per_source
            .iter()
            .enumerate()
            .map(|(s, positions)| {
                let schema_attrs: Vec<(String, CanonAttrId)> = positions
                    .iter()
                    .map(|&pos| {
                        let canon = &ds_attrs[pos];
                        let alias_list = cfg.domain.aliases_of(canon.name);
                        let alias = alias_list[rng.gen_range(0..alias_list.len())];
                        (alias.to_owned(), CanonAttrId::from(attr_idx[pos]))
                    })
                    .collect();
                let schema = builder.add_schema(format!("source_{s}"), schema_attrs);
                Source {
                    schema,
                    attr_positions: positions.clone(),
                }
            })
            .collect();

        // ---- 3. Canonical entity profiles. ~10% of entities are
        // "sequels": they copy an earlier entity's title plus a suffix and
        // share its director — the confusable-but-distinct structure
        // behind the paper's false-positive example (r7 vs r8).
        const SEQUEL_SUFFIXES: [&str; 5] = [" 2", " II", ": Part Two", " Returns", " Rises"];
        let mut entities: Vec<FxHashMap<usize, Value>> = Vec::with_capacity(cfg.n_entities);
        for e in 0..cfg.n_entities {
            let mut profile: FxHashMap<usize, Value> = ds_attrs
                .iter()
                .enumerate()
                .map(|(pos, a)| (pos, a.generate(&mut rng)))
                .collect();
            if e > 0 && rng.gen_bool(0.10) {
                let parent = rng.gen_range(0..e);
                let parent_title = entities[parent][&0].to_text();
                let suffix = SEQUEL_SUFFIXES[rng.gen_range(0..SEQUEL_SUFFIXES.len())];
                profile.insert(0, Value::from(format!("{parent_title}{suffix}")));
                // Sequels keep the director (position 2 is always in the
                // dataset attribute list).
                profile.insert(2, entities[parent][&2].clone());
            }
            entities.push(profile);
        }

        // ---- 4. Record plan: every entity appears at least once; the
        // remaining records go to random entities. Shuffled so records of
        // one entity are scattered through the id space.
        let mut plan: Vec<usize> = (0..cfg.n_entities).collect();
        for _ in cfg.n_entities..cfg.n_records {
            plan.push(rng.gen_range(0..cfg.n_entities));
        }
        plan.shuffle(&mut rng);

        // ---- 5. Render records through sources with corruption.
        for &entity in &plan {
            let source = &sources[rng.gen_range(0..sources.len())];
            let profile = &entities[entity];
            let values: Vec<Value> = source
                .attr_positions
                .iter()
                .map(|&pos| {
                    // Wrong-value channel: sometimes a source simply has
                    // bad data — a fresh value of the right kind that
                    // belongs to no entity in particular.
                    let raw = if rng.gen_bool(cfg.corruption.wrong_value) {
                        ds_attrs[pos].generate(&mut rng)
                    } else {
                        profile[&pos].clone()
                    };
                    cfg.corruption.apply(&raw, &mut rng)
                })
                .collect();
            builder
                .add_record(source.schema, values, EntityId::from(entity))
                .expect("generator emits schema-aligned records");
        }

        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn small() -> DatagenConfig {
        DatagenConfig {
            name: "test".into(),
            seed: 1,
            n_records: 120,
            n_entities: 20,
            n_attrs: 10,
            n_sources: 4,
            min_source_attrs: 4,
            max_source_attrs: 7,
            corruption: CorruptionConfig::moderate(),
            domain: Default::default(),
        }
    }

    #[test]
    fn shape_matches_config() {
        let ds = Generator::new(small()).generate();
        assert_eq!(ds.len(), 120);
        assert_eq!(ds.truth.entity_count(), 20);
        assert_eq!(ds.truth.distinct_attr_count(), 10);
        assert_eq!(ds.registry.len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Generator::new(small()).generate();
        let b = Generator::new(small()).generate();
        assert_eq!(a.records, b.records);
        let mut cfg = small();
        cfg.seed = 2;
        let c = Generator::new(cfg).generate();
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn every_source_contributes() {
        let ds = Generator::new(small()).generate();
        let mut seen = vec![false; ds.registry.len()];
        for r in ds.iter() {
            seen[r.schema.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "a source emitted no records");
    }

    #[test]
    fn schemas_are_heterogeneous() {
        let ds = Generator::new(small()).generate();
        // At least two schemas must differ in arity or attribute canon.
        let arities: Vec<usize> = ds.registry.schemas().map(|s| s.arity()).collect();
        let canon_sets: Vec<Vec<u32>> = ds
            .registry
            .schemas()
            .map(|s| {
                let mut cs: Vec<u32> = s
                    .attrs
                    .iter()
                    .map(|a| ds.truth.canon_of(a.id).raw())
                    .collect();
                cs.sort_unstable();
                cs
            })
            .collect();
        let all_same = canon_sets.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same || arities.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn title_is_in_every_schema() {
        let ds = Generator::new(small()).generate();
        for s in ds.registry.schemas() {
            let has_title = s
                .attrs
                .iter()
                .any(|a| ds.truth.canon_of(a.id) == CanonAttrId::new(0));
            assert!(has_title, "schema {} lacks title", s.name);
        }
    }

    #[test]
    fn entities_have_multiple_records_on_average() {
        let ds = Generator::new(small()).generate();
        let clusters = ds.truth.clusters();
        let multi = clusters.iter().filter(|c| c.len() >= 2).count();
        assert!(multi * 2 >= clusters.len(), "too many singleton entities");
    }

    #[test]
    fn table1_presets_match_paper_shape() {
        for (name, n, entities, attrs) in [
            ("dm1", 1000usize, 121usize, 16usize),
            ("dm2", 2000, 277, 22),
            ("dm3", 3000, 361, 23),
            ("dm4", 4000, 533, 21),
        ] {
            let cfg = match name {
                "dm1" => presets::dm1(),
                "dm2" => presets::dm2(),
                "dm3" => presets::dm3(),
                _ => presets::dm4(),
            };
            let ds = Generator::new(cfg).generate();
            assert_eq!(ds.len(), n, "{name} n");
            assert_eq!(ds.truth.entity_count(), entities, "{name} entities");
            assert_eq!(ds.truth.distinct_attr_count(), attrs, "{name} attrs");
        }
    }

    #[test]
    #[should_panic(expected = "n_attrs")]
    fn too_many_attrs_rejected() {
        let mut cfg = small();
        cfg.n_attrs = 99;
        Generator::new(cfg);
    }
}
