//! Table I calibrations: `D_m1` … `D_m4`.
//!
//! | | D_m1 | D_m2 | D_m3 | D_m4 |
//! |---|---|---|---|---|
//! | n | 1000 | 2000 | 3000 | 4000 |
//! | # of entity | 121 | 277 | 361 | 533 |
//! | # of distinct attribute | 16 | 22 | 23 | 21 |
//!
//! The canonical seed is 42 + the dataset number, so the four datasets are
//! mutually independent but individually reproducible.

use crate::corrupt::CorruptionConfig;
use crate::gen::DatagenConfig;

fn base(
    name: &str,
    seed: u64,
    n: usize,
    entities: usize,
    attrs: usize,
    sources: usize,
) -> DatagenConfig {
    DatagenConfig {
        name: name.into(),
        seed,
        n_records: n,
        n_entities: entities,
        n_attrs: attrs,
        n_sources: sources,
        // Dense sources, like the paper's IMDB/DBPedia profiles: each
        // source exposes ~60–90% of the dataset's attributes. This is
        // what makes the -S/-L exchanged variants behave like the
        // paper's (dense target records), while heterogeneity still
        // comes from differing schemas, names, and field orders.
        min_source_attrs: attrs * 3 / 5,
        max_source_attrs: attrs * 9 / 10,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    }
}

/// `D_m1`: 1000 records, 121 entities, 16 distinct attributes.
pub fn dm1() -> DatagenConfig {
    base("D_m1", 43, 1000, 121, 16, 5)
}

/// `D_m2`: 2000 records, 277 entities, 22 distinct attributes.
pub fn dm2() -> DatagenConfig {
    base("D_m2", 44, 2000, 277, 22, 7)
}

/// `D_m3`: 3000 records, 361 entities, 23 distinct attributes.
pub fn dm3() -> DatagenConfig {
    base("D_m3", 45, 3000, 361, 23, 8)
}

/// `D_m4`: 4000 records, 533 entities, 21 distinct attributes.
pub fn dm4() -> DatagenConfig {
    base("D_m4", 46, 4000, 533, 21, 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_seeds() {
        let seeds = [dm1().seed, dm2().seed, dm3().seed, dm4().seed];
        let mut s = seeds.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn preset_names() {
        assert_eq!(dm1().name, "D_m1");
        assert_eq!(dm4().name, "D_m4");
    }
}
