//! Synthetic heterogeneous movie records — the workspace's stand-in for
//! the paper's `D_movies` (IMDB ⋈ DBPedia profiles).
//!
//! The real `D_movies` is not redistributable, so this crate generates the
//! closest synthetic equivalent that exercises the same code paths (see
//! DESIGN.md §Substitutions):
//!
//! * **entities** — movies with up to two dozen canonical attributes
//!   (title, year, director, cast, genre, …), values drawn from seeded
//!   vocabularies;
//! * **sources** — each with its own schema: a subset of the dataset's
//!   canonical attributes under source-specific display names
//!   (`"title"` vs `"name"` vs `"film"`), so records are genuinely
//!   heterogeneous and exhibit *description difference*;
//! * **corruption** — typos, token drops, abbreviations, case noise,
//!   numeric jitter and missing values, so string similarity actually has
//!   work to do;
//! * **ground truth** — exact by construction: entity labels per record,
//!   canonical class per source attribute.
//!
//! [`presets`] calibrates four configurations to Table I
//! (`D_m1` … `D_m4`: n = 1000–4000, 121–533 entities, 16–23 distinct
//! attributes). Generation is deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrs;
mod corrupt;
mod gen;
pub mod presets;
pub mod pubs;
pub mod scale;
pub mod vocab;

pub use attrs::{AttrKind, CanonAttr, CATALOG};
pub use corrupt::CorruptionConfig;
pub use gen::{DatagenConfig, Domain, Generator};
pub use scale::{scale_100k, scale_10k, scale_1m, scale_preset, ScaleConfig, ScaleGenerator};

/// Convenience: generate one of the Table I datasets by name
/// (`"dm1"`…`"dm4"`), with the canonical seed.
pub fn table1_dataset(name: &str) -> hera_types::Dataset {
    let cfg = match name {
        "dm1" => presets::dm1(),
        "dm2" => presets::dm2(),
        "dm3" => presets::dm3(),
        "dm4" => presets::dm4(),
        other => panic!("unknown preset {other:?} (expected dm1..dm4)"),
    };
    Generator::new(cfg).generate()
}
