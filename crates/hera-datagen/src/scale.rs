//! Large-dataset generation: 10⁵–10⁶ heterogeneous records with bounded
//! peak RSS.
//!
//! The Table I generator ([`crate::Generator`]) materializes a canonical
//! profile table — one `FxHashMap` per entity — before rendering records,
//! which is fine at n = 4000 and hopeless at n = 10⁶. This module
//! replaces the table with **derive-on-demand profiles**: every entity's
//! profile is a pure function of `(seed, entity)` (a splitmix-derived
//! ChaCha8 stream), recomputed in O(#attrs) whenever a record needs it.
//! [`ScaleGenerator::stream`] therefore yields records one at a time with
//! O(#sources · #attrs) resident state, independent of `n_records`.
//!
//! Two other departures from the toy generator keep *resolution* of the
//! output tractable at scale:
//!
//! * the attribute catalog ([`scale_catalog`]) uses only high-cardinality
//!   generators (`PersonFull`, `TitleLong`, `PickRange`, wide numeric
//!   ranges) — a low-cardinality categorical like `studio`
//!   (20 values) would put ~n/20 records in one same-value group and the
//!   value-pair index's within-group expansion is quadratic in group
//!   size;
//! * duplicate structure is controlled directly by
//!   [`ScaleConfig::duplicate_ratio`] instead of an entity count, which
//!   is the knob the scale experiments sweep.

use crate::attrs::{aliases_of, AttrKind, CanonAttr};
use crate::corrupt::CorruptionConfig;
use crate::vocab;
use hera_types::{CanonAttrId, Dataset, DatasetBuilder, EntityId, SchemaId, Value};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The scale domain's catalog: movie attributes restricted to
/// high-cardinality generators (see the module docs for why). The first
/// three entries — title, imdb_id, director — are the anchor trio present
/// in every source schema.
pub fn scale_catalog() -> &'static [CanonAttr] {
    const SCALE_CATALOG: &[CanonAttr] = &[
        CanonAttr {
            name: "title",
            kind: AttrKind::TitleLong,
        },
        CanonAttr {
            name: "imdb_id",
            kind: AttrKind::ExternalId,
        },
        CanonAttr {
            name: "director",
            kind: AttrKind::PersonFull,
        },
        CanonAttr {
            name: "actor1",
            kind: AttrKind::PersonFull,
        },
        CanonAttr {
            name: "actor2",
            kind: AttrKind::PersonFull,
        },
        CanonAttr {
            name: "producer",
            kind: AttrKind::PersonFull,
        },
        CanonAttr {
            name: "release_date",
            kind: AttrKind::Date,
        },
        CanonAttr {
            name: "budget",
            kind: AttrKind::IntRange(100_000, 300_000_000),
        },
        CanonAttr {
            name: "gross",
            kind: AttrKind::IntRange(10_000, 2_000_000_000),
        },
        CanonAttr {
            name: "votes",
            kind: AttrKind::IntRange(100, 2_000_000),
        },
        CanonAttr {
            name: "keyword",
            kind: AttrKind::PickRange(vocab::KEYWORDS, 3, 4),
        },
        CanonAttr {
            name: "genre",
            kind: AttrKind::PickRange(vocab::GENRES, 3, 4),
        },
        CanonAttr {
            name: "writer",
            kind: AttrKind::PersonFull,
        },
        CanonAttr {
            name: "composer",
            kind: AttrKind::PersonFull,
        },
        CanonAttr {
            name: "tagline",
            kind: AttrKind::TitleLong,
        },
        CanonAttr {
            name: "language",
            kind: AttrKind::PickRange(vocab::LANGUAGES, 3, 4),
        },
    ];
    SCALE_CATALOG
}

/// Configuration for the streaming scale generator.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Dataset name.
    pub name: String,
    /// RNG seed; equal seeds give byte-identical datasets.
    pub seed: u64,
    /// Number of records `n`.
    pub n_records: usize,
    /// Fraction of records that re-describe an already-introduced entity
    /// (in `[0, 1)`). The entity count is exactly
    /// `n − round(duplicate_ratio · n)` (min 1), so the realized ratio is
    /// within `1/n` of the request.
    pub duplicate_ratio: f64,
    /// Cluster-size skew of the duplicate stream, ≥ 1. At 1 a duplicate
    /// re-describes a uniformly random earlier entity, so cluster sizes
    /// concentrate near the mean. Above 1, duplicates prefer low-index
    /// entities via inverse-power sampling (`entity = ⌊n_e · u^skew⌋`),
    /// giving the heavy-tailed cluster sizes of real ER workloads — a
    /// few hub entities described by many sources plus a long tail of
    /// near-singletons. Most ground-truth record pairs then sit inside
    /// the hub clusters, which is the regime where anytime resolution
    /// pays off (see `exp_progressive`).
    pub duplicate_skew: f64,
    /// Number of canonical attributes (4 ..= [`scale_catalog`] length).
    pub n_attrs: usize,
    /// Number of heterogeneous sources (schemas), ≥ 2.
    pub n_sources: usize,
    /// Value corruption profile.
    pub corruption: CorruptionConfig,
}

impl ScaleConfig {
    /// Checks the configuration's invariants, returning the first
    /// violation as a message naming the offending field. Callers with
    /// user-supplied input (the CLI's `generate --size`) surface the
    /// message; [`ScaleGenerator::new`] panics on it (programmer error).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.n_records < 1 {
            return Err("n_records must be >= 1".into());
        }
        if !(0.0..1.0).contains(&self.duplicate_ratio) {
            return Err(format!(
                "duplicate_ratio must be in [0, 1), got {}",
                self.duplicate_ratio
            ));
        }
        if self.duplicate_skew < 1.0 || self.duplicate_skew.is_nan() {
            return Err(format!(
                "duplicate_skew must be >= 1, got {}",
                self.duplicate_skew
            ));
        }
        if !(4..=scale_catalog().len()).contains(&self.n_attrs) {
            return Err(format!(
                "n_attrs must be in [4, {}], got {}",
                scale_catalog().len(),
                self.n_attrs
            ));
        }
        if self.n_sources < 2 {
            return Err(format!(
                "heterogeneity needs >= 2 sources, got {}",
                self.n_sources
            ));
        }
        Ok(())
    }

    /// The entity count implied by `n_records` and `duplicate_ratio`.
    pub fn n_entities(&self) -> usize {
        let dups = (self.duplicate_ratio * self.n_records as f64).round() as usize;
        self.n_records.saturating_sub(dups).max(1)
    }
}

/// A scale preset: `duplicate_ratio` 0.3, 12 attributes, 6 sources,
/// moderate corruption. `n_records` and `seed` select the tier.
pub fn scale_preset(n_records: usize, seed: u64) -> ScaleConfig {
    ScaleConfig {
        name: format!("scale_{n_records}"),
        seed,
        n_records,
        duplicate_ratio: 0.3,
        duplicate_skew: 1.0,
        n_attrs: 12,
        n_sources: 6,
        corruption: CorruptionConfig::moderate(),
    }
}

/// 10⁴-record tier (the CI smoke tier).
pub fn scale_10k() -> ScaleConfig {
    scale_preset(10_000, 51)
}

/// 10⁵-record tier (the committed full-sweep ceiling).
pub fn scale_100k() -> ScaleConfig {
    scale_preset(100_000, 52)
}

/// 10⁶-record tier (generation-only in the benchmarks: resolving it
/// end to end awaits blocking on the streaming path — ROADMAP item 2).
pub fn scale_1m() -> ScaleConfig {
    scale_preset(1_000_000, 53)
}

/// One streamed record: which source renders it, its schema-aligned
/// values, and its ground-truth entity.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSpec {
    /// Index of the rendering source (< `n_sources`).
    pub source: usize,
    /// Values aligned to the source schema's field order.
    pub values: Vec<Value>,
    /// Ground-truth entity id.
    pub entity: usize,
}

/// One source schema of the scale dataset.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Schema name (`"source_0"` …).
    pub name: String,
    /// Field display names with their canonical attribute ids, in schema
    /// order. Canonical ids index into [`scale_catalog`].
    pub fields: Vec<(String, CanonAttrId)>,
    /// For each field, the position of its attribute in the generator's
    /// selected attribute list.
    attr_positions: Vec<usize>,
}

// Domain-separation tags for the per-purpose RNG streams.
const TAG_SETUP: u64 = 1;
const TAG_ENTITY: u64 = 2;
const TAG_RECORD: u64 = 3;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent ChaCha8 seed for stream `(tag, i)` of `seed`.
fn derive_seed(seed: u64, tag: u64, i: u64) -> u64 {
    splitmix64(splitmix64(seed ^ tag.wrapping_mul(0xA24B_AED4_963E_E407)) ^ i)
}

/// The streaming scale generator. Construction derives the source
/// schemas (cheap, O(sources · attrs)); records are produced on demand.
pub struct ScaleGenerator {
    cfg: ScaleConfig,
    ds_attrs: Vec<CanonAttr>,
    sources: Vec<SourceSpec>,
    n_entities: usize,
}

impl ScaleGenerator {
    /// Creates the generator and derives its source schemas.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ScaleConfig::validate`]; validate first
    /// when the configuration comes from user input.
    pub fn new(cfg: ScaleConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid ScaleConfig: {e}"));
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(cfg.seed, TAG_SETUP, 0));
        let catalog = scale_catalog();

        // Selected attributes: the anchor trio plus a random sample.
        let mut attr_idx: Vec<usize> = vec![0, 1, 2];
        let mut rest: Vec<usize> = (3..catalog.len()).collect();
        rest.shuffle(&mut rng);
        attr_idx.extend(rest.into_iter().take(cfg.n_attrs - 3));
        let ds_attrs: Vec<CanonAttr> = attr_idx.iter().map(|&i| catalog[i]).collect();

        // Sources: every source carries the anchor trio; round-robin
        // distribution covers every selected attribute; random extras
        // grow each source to a target arity, then the field order is
        // shuffled so positions differ per source.
        let min_arity = (cfg.n_attrs * 3 / 5).max(4).min(cfg.n_attrs);
        let max_arity = (cfg.n_attrs * 9 / 10).max(min_arity);
        let mut per_source: Vec<Vec<usize>> = vec![vec![0, 1, 2]; cfg.n_sources];
        let mut shuffled: Vec<usize> = (3..ds_attrs.len()).collect();
        shuffled.shuffle(&mut rng);
        for (i, &pos) in shuffled.iter().enumerate() {
            let slot = &mut per_source[i % cfg.n_sources];
            if !slot.contains(&pos) {
                slot.push(pos);
            }
        }
        for attrs in per_source.iter_mut() {
            let target = rng.gen_range(min_arity..=max_arity).min(ds_attrs.len());
            while attrs.len() < target {
                let extra = rng.gen_range(0..ds_attrs.len());
                if !attrs.contains(&extra) {
                    attrs.push(extra);
                }
            }
            attrs.shuffle(&mut rng);
        }

        let sources: Vec<SourceSpec> = per_source
            .into_iter()
            .enumerate()
            .map(|(s, positions)| {
                let fields: Vec<(String, CanonAttrId)> = positions
                    .iter()
                    .map(|&pos| {
                        let canon = &ds_attrs[pos];
                        let alias_list = aliases_of(canon.name);
                        let alias = alias_list[rng.gen_range(0..alias_list.len())];
                        (alias.to_owned(), CanonAttrId::from(attr_idx[pos]))
                    })
                    .collect();
                SourceSpec {
                    name: format!("source_{s}"),
                    fields,
                    attr_positions: positions,
                }
            })
            .collect();

        let n_entities = cfg.n_entities();
        Self {
            cfg,
            ds_attrs,
            sources,
            n_entities,
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// Number of distinct entities the record stream describes.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// The derived source schemas.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// Canonical profile of one entity, derived on demand: a pure
    /// function of `(seed, entity)`, one value per selected attribute.
    pub fn profile(&self, entity: usize) -> Vec<Value> {
        let mut rng =
            ChaCha8Rng::seed_from_u64(derive_seed(self.cfg.seed, TAG_ENTITY, entity as u64));
        self.ds_attrs.iter().map(|a| a.generate(&mut rng)).collect()
    }

    /// Picks the entity a duplicate record re-describes, honoring
    /// [`ScaleConfig::duplicate_skew`]. The uniform case keeps drawing
    /// through `gen_range` so existing seeds' streams stay
    /// byte-identical.
    fn dup_entity(&self, rng: &mut ChaCha8Rng) -> usize {
        if self.cfg.duplicate_skew == 1.0 {
            rng.gen_range(0..self.n_entities)
        } else {
            let u: f64 = rng.gen_range(0.0..1.0);
            ((self.n_entities as f64 * u.powf(self.cfg.duplicate_skew)) as usize)
                .min(self.n_entities - 1)
        }
    }

    /// Derives record `i` (0-based). Records `0..n_entities` introduce
    /// their entity (so every entity appears at least once); later
    /// records re-describe an earlier entity drawn by `dup_entity`.
    pub fn record(&self, i: usize) -> RecordSpec {
        let cfg = &self.cfg;
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(cfg.seed, TAG_RECORD, i as u64));
        let entity = if i < self.n_entities {
            i
        } else {
            self.dup_entity(&mut rng)
        };
        let source_id = rng.gen_range(0..self.sources.len());
        let profile = self.profile(entity);
        let values = self.render(source_id, &profile, &mut rng);
        RecordSpec {
            source: source_id,
            values,
            entity,
        }
    }

    /// Renders one record's values through a source with corruption; the
    /// record's own RNG drives every noise decision.
    fn render(&self, source_id: usize, profile: &[Value], rng: &mut ChaCha8Rng) -> Vec<Value> {
        let cfg = &self.cfg;
        self.sources[source_id]
            .attr_positions
            .iter()
            .map(|&pos| {
                // Wrong-value channel: sometimes a source simply has bad
                // data — a fresh value of the right kind that belongs to
                // no entity in particular.
                let raw = if rng.gen_bool(cfg.corruption.wrong_value) {
                    self.ds_attrs[pos].generate(rng)
                } else {
                    profile[pos].clone()
                };
                cfg.corruption.apply(&raw, rng)
            })
            .collect()
    }

    /// Streams all records in id order. Resident state is O(sources ·
    /// attrs) — nothing about the stream grows with `n_records`, which is
    /// what keeps peak RSS bounded for 10⁶-record generation.
    pub fn stream(&self) -> impl Iterator<Item = RecordSpec> + '_ {
        (0..self.cfg.n_records).map(|i| self.record(i))
    }

    /// Registers this generator's schemas on a dataset builder, returning
    /// the schema id for each source.
    pub fn register_schemas(&self, builder: &mut DatasetBuilder) -> Vec<SchemaId> {
        self.sources
            .iter()
            .map(|s| builder.add_schema(s.name.clone(), s.fields.clone()))
            .collect()
    }

    /// Generates the full materialized [`Dataset`] by driving
    /// [`Self::stream`] through a [`DatasetBuilder`].
    pub fn generate(&self) -> Dataset {
        let mut builder = DatasetBuilder::new(self.cfg.name.clone());
        let schemas = self.register_schemas(&mut builder);
        for spec in self.stream() {
            builder
                .add_record(
                    schemas[spec.source],
                    spec.values,
                    EntityId::from(spec.entity),
                )
                .expect("scale generator emits schema-aligned records");
        }
        builder.build()
    }

    /// Reference implementation of [`Self::generate`] that materializes
    /// the whole entity-profile table up front (the toy generator's
    /// strategy). Exists to pin the derive-on-demand contract: both paths
    /// must produce identical datasets. O(n_entities · n_attrs) memory —
    /// do not use at the 10⁶ tier.
    pub fn generate_materialized(&self) -> Dataset {
        let profiles: Vec<Vec<Value>> = (0..self.n_entities).map(|e| self.profile(e)).collect();
        let mut builder = DatasetBuilder::new(self.cfg.name.clone());
        let schemas = self.register_schemas(&mut builder);
        for i in 0..self.cfg.n_records {
            let mut rng =
                ChaCha8Rng::seed_from_u64(derive_seed(self.cfg.seed, TAG_RECORD, i as u64));
            let entity = if i < self.n_entities {
                i
            } else {
                self.dup_entity(&mut rng)
            };
            let source_id = rng.gen_range(0..self.sources.len());
            let values = self.render(source_id, &profiles[entity], &mut rng);
            builder
                .add_record(schemas[source_id], values, EntityId::from(entity))
                .expect("scale generator emits schema-aligned records");
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small(seed: u64, n: usize, dup: f64) -> ScaleConfig {
        ScaleConfig {
            name: "scale_test".into(),
            seed,
            n_records: n,
            duplicate_ratio: dup,
            duplicate_skew: 1.0,
            n_attrs: 10,
            n_sources: 4,
            corruption: CorruptionConfig::moderate(),
        }
    }

    #[test]
    fn shape_matches_config() {
        let g = ScaleGenerator::new(small(9, 300, 0.3));
        let ds = g.generate();
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.truth.entity_count(), 300 - 90);
        assert_eq!(ds.truth.distinct_attr_count(), 10);
        assert_eq!(ds.registry.len(), 4);
    }

    #[test]
    fn every_entity_appears_at_least_once() {
        let g = ScaleGenerator::new(small(10, 200, 0.4));
        let clusters = g.generate().truth.clusters();
        assert_eq!(clusters.len(), g.n_entities());
        assert!(clusters.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn duplicate_skew_concentrates_clusters() {
        let uniform = ScaleGenerator::new(small(12, 2_000, 0.4));
        let mut skewed_cfg = small(12, 2_000, 0.4);
        skewed_cfg.duplicate_skew = 4.0;
        let skewed = ScaleGenerator::new(skewed_cfg);
        let max_cluster = |g: &ScaleGenerator| {
            g.generate()
                .truth
                .clusters()
                .iter()
                .map(|c| c.len())
                .max()
                .unwrap()
        };
        let (u, s) = (max_cluster(&uniform), max_cluster(&skewed));
        // Same entity count either way; skew only reshapes cluster sizes.
        assert_eq!(uniform.n_entities(), skewed.n_entities());
        assert!(
            s >= 4 * u,
            "skew 4 should grow the largest cluster well past uniform's ({u} -> {s})"
        );
    }

    #[test]
    fn duplicate_skew_below_one_is_rejected() {
        let mut cfg = small(13, 100, 0.3);
        cfg.duplicate_skew = 0.5;
        assert!(cfg.validate().unwrap_err().contains("duplicate_skew"));
    }

    #[test]
    fn anchor_trio_is_in_every_schema() {
        let g = ScaleGenerator::new(small(11, 50, 0.2));
        for s in g.sources() {
            for anchor in [0u32, 1, 2] {
                assert!(
                    s.fields.iter().any(|(_, c)| c.raw() == anchor),
                    "{} lacks anchor attr {anchor}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn stream_matches_indexed_access() {
        let g = ScaleGenerator::new(small(12, 80, 0.3));
        let streamed: Vec<RecordSpec> = g.stream().collect();
        assert_eq!(streamed.len(), 80);
        for (i, spec) in streamed.iter().enumerate() {
            assert_eq!(spec, &g.record(i), "record {i}");
        }
    }

    #[test]
    fn presets_have_documented_shape() {
        for (cfg, n) in [
            (scale_10k(), 10_000),
            (scale_100k(), 100_000),
            (scale_1m(), 1_000_000),
        ] {
            assert_eq!(cfg.n_records, n);
            assert_eq!(cfg.n_attrs, 12);
            assert_eq!(cfg.n_sources, 6);
            // 30% duplicates ⇒ 70% entities.
            assert_eq!(cfg.n_entities(), n * 7 / 10);
        }
    }

    #[test]
    fn preset_generator_is_cheap_to_construct() {
        // Construction must not scale with n_records (streaming claim).
        let g = ScaleGenerator::new(scale_1m());
        assert_eq!(g.n_entities(), 700_000);
        assert_eq!(g.sources().len(), 6);
        // Deriving a single record does not require the other 10⁶ − 1.
        let r = g.record(999_999);
        assert!(!r.values.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generation is a pure function of the seed.
        #[test]
        fn deterministic_per_seed(seed in any::<u64>()) {
            let a = ScaleGenerator::new(small(seed, 60, 0.3)).generate();
            let b = ScaleGenerator::new(small(seed, 60, 0.3)).generate();
            prop_assert_eq!(&a.records, &b.records);
            let c = ScaleGenerator::new(small(seed ^ 1, 60, 0.3)).generate();
            prop_assert_ne!(&a.records, &c.records);
        }

        /// The realized duplicate ratio is within 1/n of the request.
        #[test]
        fn duplicate_ratio_within_tolerance(
            seed in any::<u64>(),
            dup in 0.0f64..0.9,
            n in 20usize..200,
        ) {
            let g = ScaleGenerator::new(small(seed, n, dup));
            let ds = g.generate();
            let realized = 1.0 - ds.truth.entity_count() as f64 / n as f64;
            prop_assert!(
                (realized - dup).abs() <= 1.0 / n as f64 + 1e-9,
                "requested {dup}, realized {realized} at n={n}"
            );
        }

        /// Streaming (derive-on-demand) and materialized (profile-table)
        /// generation produce identical datasets.
        #[test]
        fn streaming_equals_materialized(seed in any::<u64>()) {
            let g = ScaleGenerator::new(small(seed, 90, 0.35));
            let streamed = g.generate();
            let materialized = g.generate_materialized();
            prop_assert_eq!(&streamed.records, &materialized.records);
            prop_assert_eq!(
                streamed.truth.entity_count(),
                materialized.truth.entity_count()
            );
        }
    }
}
