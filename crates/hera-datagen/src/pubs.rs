//! A second synthetic domain: bibliographic records (the DBLP/Cora
//! setting classic ER evaluations use). Exercises the same machinery as
//! the movie domain with a different attribute mix — more person-valued
//! fields, page ranges, identifiers — demonstrating that nothing in the
//! pipeline is movie-specific.

use crate::attrs::{AttrKind, CanonAttr};
use crate::corrupt::CorruptionConfig;
use crate::gen::DatagenConfig;
use crate::vocab;

/// Publication venues.
pub const VENUES: &[&str] = &[
    "SIGMOD",
    "VLDB",
    "ICDE",
    "EDBT",
    "CIDR",
    "PODS",
    "KDD",
    "WSDM",
    "WWW",
    "ICML",
    "NeurIPS",
    "AAAI",
    "IJCAI",
    "ACL",
    "EMNLP",
    "SOSP",
    "OSDI",
    "NSDI",
    "EuroSys",
    "USENIX ATC",
];

/// Publishers.
pub const PUBLISHERS: &[&str] = &[
    "ACM",
    "IEEE",
    "Springer",
    "Elsevier",
    "Morgan Kaufmann",
    "VLDB Endowment",
    "USENIX",
    "MIT Press",
    "Cambridge University Press",
    "Oxford University Press",
];

/// Research keywords.
pub const TOPICS: &[&str] = &[
    "entity resolution",
    "data integration",
    "query optimization",
    "stream processing",
    "transaction processing",
    "distributed systems",
    "machine learning",
    "graph processing",
    "data cleaning",
    "schema matching",
    "similarity join",
    "record linkage",
    "deduplication",
    "crowdsourcing",
    "provenance",
    "indexing",
    "approximate query processing",
    "concurrency control",
    "consensus",
    "storage engines",
];

/// Display-name aliases per canonical attribute of the publication
/// domain (position-aligned with [`pub_catalog`]).
pub const PUB_ALIASES: &[(&str, &[&str])] = &[
    ("p_title", &["title", "paper_title", "name", "article"]),
    ("p_year", &["year", "pub_year", "date", "published"]),
    (
        "p_author1",
        &["author", "first_author", "lead_author", "creator"],
    ),
    ("p_author2", &["author_2", "second_author", "coauthor"]),
    ("p_author3", &["author_3", "third_author", "coauthor_2"]),
    (
        "p_venue",
        &["venue", "conference", "booktitle", "published_in"],
    ),
    ("p_volume", &["volume", "vol"]),
    ("p_pages", &["pages", "page_range", "pp"]),
    ("p_publisher", &["publisher", "published_by", "press"]),
    ("p_topic", &["topic", "keywords", "subject", "area"]),
    ("p_citations", &["citations", "cited_by", "num_citations"]),
    ("p_doi", &["doi", "identifier", "ref"]),
    (
        "p_institution",
        &["institution", "affiliation", "organization"],
    ),
    ("p_abstract_tag", &["abstract_tag", "summary_tag", "tldr"]),
];

/// The publication-domain catalog: 14 canonical attributes.
pub fn pub_catalog() -> &'static [CanonAttr] {
    const CATALOG: &[CanonAttr] = &[
        CanonAttr {
            name: "p_title",
            kind: AttrKind::Title,
        },
        CanonAttr {
            name: "p_year",
            kind: AttrKind::IntRange(1980, 2020),
        },
        CanonAttr {
            name: "p_author1",
            kind: AttrKind::Person,
        },
        CanonAttr {
            name: "p_author2",
            kind: AttrKind::Person,
        },
        CanonAttr {
            name: "p_author3",
            kind: AttrKind::Person,
        },
        CanonAttr {
            name: "p_venue",
            kind: AttrKind::Pick(VENUES),
        },
        CanonAttr {
            name: "p_volume",
            kind: AttrKind::IntRange(1, 45),
        },
        CanonAttr {
            name: "p_pages",
            kind: AttrKind::PageRange,
        },
        CanonAttr {
            name: "p_publisher",
            kind: AttrKind::Pick(PUBLISHERS),
        },
        CanonAttr {
            name: "p_topic",
            kind: AttrKind::PickMulti(TOPICS, 3),
        },
        CanonAttr {
            name: "p_citations",
            kind: AttrKind::IntRange(0, 5000),
        },
        CanonAttr {
            name: "p_doi",
            kind: AttrKind::ExternalId,
        },
        CanonAttr {
            name: "p_institution",
            kind: AttrKind::Pick(vocab::STUDIOS),
        },
        CanonAttr {
            name: "p_abstract_tag",
            kind: AttrKind::Title,
        },
    ];
    CATALOG
}

/// A publications dataset config mirroring the movie presets' shape.
pub fn publications(n_records: usize, n_entities: usize, seed: u64) -> DatagenConfig {
    DatagenConfig {
        name: format!("pubs-{n_records}"),
        seed,
        n_records,
        n_entities,
        n_attrs: pub_catalog().len(),
        n_sources: 4,
        min_source_attrs: pub_catalog().len() * 3 / 5,
        max_source_attrs: pub_catalog().len() * 9 / 10,
        corruption: CorruptionConfig::moderate(),
        domain: crate::gen::Domain::Publications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Generator;

    #[test]
    fn catalog_names_match_aliases() {
        let catalog = pub_catalog();
        assert_eq!(catalog.len(), PUB_ALIASES.len());
        for (a, (name, aliases)) in catalog.iter().zip(PUB_ALIASES) {
            assert_eq!(a.name, *name);
            assert!(!aliases.is_empty());
        }
    }

    #[test]
    fn generates_publication_datasets() {
        let ds = Generator::new(publications(300, 50, 9)).generate();
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.truth.entity_count(), 50);
        assert_eq!(ds.truth.distinct_attr_count(), 14);
        // Attribute display names come from the publication alias pool.
        let names: Vec<String> = ds
            .registry
            .schemas()
            .flat_map(|s| s.attrs.iter().map(|a| a.name.clone()))
            .collect();
        assert!(
            names.iter().any(|n| n == "venue"
                || n == "conference"
                || n == "booktitle"
                || n == "published_in"),
            "{names:?}"
        );
    }

    #[test]
    fn page_ranges_look_right() {
        let ds = Generator::new(publications(100, 20, 3)).generate();
        // Find a pages value somewhere.
        let mut found = false;
        for rec in ds.iter() {
            for (fid, v) in rec.values.iter().enumerate() {
                let attr = ds.attr_of_field(rec.id, fid);
                let canon = ds.truth.canon_of(attr);
                if canon.raw() == 7 {
                    // p_pages position in catalog
                    if let Some(s) = v.as_str() {
                        // uncorrupted shape: "123-145" (corruption may
                        // typo it, so only check the common case)
                        if s.contains('-') {
                            found = true;
                        }
                    }
                }
            }
        }
        assert!(found, "no page-range values observed");
    }
}
