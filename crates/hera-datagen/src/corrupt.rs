//! Corruption model: how a source mangles canonical values.

use hera_types::Value;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Probabilities of each corruption applied when a source renders a
/// canonical value. All in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionConfig {
    /// Single-character typo (swap / delete / replace / insert).
    pub typo: f64,
    /// Drop one token of a multi-word string (`"2 Norman Street"` →
    /// `"Norman Street"`).
    pub drop_token: f64,
    /// Abbreviate a leading token (`"John Smith"` → `"J. Smith"`).
    pub abbreviate: f64,
    /// Case noise (lowercase or uppercase the whole string).
    pub case_noise: f64,
    /// Numeric jitter: ±1 on integers, ±0.1 on floats.
    pub numeric_jitter: f64,
    /// Replace the value with null (missing data).
    pub missing: f64,
    /// Replace the value with a freshly generated one of the same kind
    /// (transcription error / wrong movie looked up) — the main source of
    /// false evidence between entities. Applied by the generator, which
    /// owns the value generators.
    pub wrong_value: f64,
}

impl CorruptionConfig {
    /// Moderate noise: enough that exact matching fails routinely but
    /// 2-gram Jaccard at ξ = 0.5 still connects most duplicates.
    pub fn moderate() -> Self {
        Self {
            typo: 0.22,
            drop_token: 0.10,
            abbreviate: 0.12,
            case_noise: 0.14,
            numeric_jitter: 0.20,
            missing: 0.08,
            wrong_value: 0.04,
        }
    }

    /// Light noise (sanity runs).
    pub fn light() -> Self {
        Self {
            typo: 0.05,
            drop_token: 0.02,
            abbreviate: 0.03,
            case_noise: 0.05,
            numeric_jitter: 0.05,
            missing: 0.02,
            wrong_value: 0.01,
        }
    }

    /// Heavy noise (stress tests).
    pub fn heavy() -> Self {
        Self {
            typo: 0.40,
            drop_token: 0.18,
            abbreviate: 0.22,
            case_noise: 0.28,
            numeric_jitter: 0.35,
            missing: 0.16,
            wrong_value: 0.10,
        }
    }

    /// Applies the configured corruptions to one canonical value.
    /// Returns `Value::Null` for missing data.
    pub fn apply(&self, v: &Value, rng: &mut ChaCha8Rng) -> Value {
        if rng.gen_bool(self.missing) {
            return Value::Null;
        }
        match v {
            Value::Str(s) => {
                let mut s = s.clone();
                if rng.gen_bool(self.abbreviate) {
                    s = abbreviate(&s);
                }
                if rng.gen_bool(self.drop_token) {
                    s = drop_token(&s, rng);
                }
                if rng.gen_bool(self.typo) {
                    s = typo(&s, rng);
                }
                if rng.gen_bool(self.case_noise) {
                    s = if rng.gen_bool(0.5) {
                        s.to_lowercase()
                    } else {
                        s.to_uppercase()
                    };
                }
                Value::Str(s)
            }
            Value::Int(i) => {
                if rng.gen_bool(self.numeric_jitter) {
                    Value::Int(i + if rng.gen_bool(0.5) { 1 } else { -1 })
                } else {
                    Value::Int(*i)
                }
            }
            Value::Float(f) => {
                if rng.gen_bool(self.numeric_jitter) {
                    let jitter = if rng.gen_bool(0.5) { 0.1 } else { -0.1 };
                    Value::Float(((f + jitter) * 10.0).round() / 10.0)
                } else {
                    Value::Float(*f)
                }
            }
            Value::Null => Value::Null,
        }
    }
}

/// `"John Smith"` → `"J. Smith"`; single-token strings are untouched.
fn abbreviate(s: &str) -> String {
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return s.to_owned();
    }
    let first = tokens[0];
    let initial: String = first.chars().take(1).collect();
    let abbreviated = format!("{initial}.");
    tokens[0] = &abbreviated;
    tokens.join(" ")
}

/// Removes one random token from a multi-word string.
fn drop_token(s: &str, rng: &mut ChaCha8Rng) -> String {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    if tokens.len() < 2 {
        return s.to_owned();
    }
    let victim = rng.gen_range(0..tokens.len());
    tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// One random character edit.
fn typo(s: &str, rng: &mut ChaCha8Rng) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_owned();
    }
    let pos = rng.gen_range(0..chars.len());
    match rng.gen_range(0..4) {
        0 if chars.len() >= 2 => {
            // swap with neighbor
            let other = if pos + 1 < chars.len() {
                pos + 1
            } else {
                pos - 1
            };
            chars.swap(pos, other);
        }
        1 if chars.len() >= 2 => {
            chars.remove(pos);
        }
        2 => {
            chars[pos] = random_letter(rng);
        }
        _ => {
            chars.insert(pos, random_letter(rng));
        }
    }
    chars.into_iter().collect()
}

fn random_letter(rng: &mut ChaCha8Rng) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn abbreviate_multiword() {
        assert_eq!(abbreviate("John Smith"), "J. Smith");
        assert_eq!(abbreviate("Smith"), "Smith");
        assert_eq!(abbreviate("Jean Claude Van Damme"), "J. Claude Van Damme");
    }

    #[test]
    fn drop_token_shrinks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = drop_token("a b c", &mut rng);
        assert_eq!(out.split_whitespace().count(), 2);
        assert_eq!(drop_token("single", &mut rng), "single");
    }

    #[test]
    fn typo_changes_string() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut changed = 0;
        for _ in 0..20 {
            if typo("hello world", &mut rng) != "hello world" {
                changed += 1;
            }
        }
        // Swap of equal chars can no-op, but most edits change the string.
        assert!(changed >= 15);
    }

    #[test]
    fn zero_config_is_identity() {
        let cfg = CorruptionConfig {
            typo: 0.0,
            drop_token: 0.0,
            abbreviate: 0.0,
            case_noise: 0.0,
            numeric_jitter: 0.0,
            missing: 0.0,
            wrong_value: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for v in [Value::from("abc def"), Value::from(42i64), Value::from(1.5)] {
            assert_eq!(cfg.apply(&v, &mut rng), v);
        }
    }

    #[test]
    fn missing_one_always_nulls() {
        let cfg = CorruptionConfig {
            missing: 1.0,
            ..CorruptionConfig::light()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!(cfg.apply(&Value::from("x"), &mut rng).is_null());
    }

    #[test]
    fn numeric_jitter_stays_close() {
        let cfg = CorruptionConfig {
            typo: 0.0,
            drop_token: 0.0,
            abbreviate: 0.0,
            case_noise: 0.0,
            numeric_jitter: 1.0,
            missing: 0.0,
            wrong_value: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        match cfg.apply(&Value::from(2000i64), &mut rng) {
            Value::Int(i) => assert!((i - 2000).abs() == 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let cfg = CorruptionConfig::moderate();
        let mut r1 = ChaCha8Rng::seed_from_u64(8);
        let mut r2 = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..50 {
            let v = Value::from("The Golden Shadow");
            assert_eq!(cfg.apply(&v, &mut r1), cfg.apply(&v, &mut r2));
        }
    }
}
