//! Developer smoke run: end-to-end HERA over the Table I presets with
//! timing and quality, for quick regressions while hacking on the
//! generator or the driver.
//!
//! ```sh
//! cargo run --release -p hera-datagen --example sanity
//! ```

use hera_core::{Hera, HeraConfig};
use hera_eval::PairMetrics;

fn main() {
    for name in ["dm1", "dm4"] {
        let ds = hera_datagen::table1_dataset(name);
        let result = Hera::builder(HeraConfig::new(0.5, 0.5))
            .build()
            .run(&ds)
            .unwrap();
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        let s = &result.stats;
        println!("{name}: build={:?} resolve={:?} iters={} |V|={} pruned={} direct={} cmp={} merges={} | {m}",
            s.index_build_time, s.resolve_time, s.iterations, s.index_size,
            s.pruned, s.direct_decisions, s.comparisons, s.merges);
    }
}
