//! Union–find over record ids (§III-B2, citing CLRS [14]).

use hera_types::json::Json;
use hera_types::{HeraError, Result};

/// Disjoint-set forest with path halving.
///
/// HERA's narration always keeps the *smaller* rid as the representative
/// (`1 = union(1, 6)` in Example 5), so `union` here is deterministic:
/// the smaller root wins. Rank-based union would be asymptotically nicer,
/// but the determinism is worth more — entity labels, index keys, and test
/// expectations all reference the surviving rid — and path halving alone
/// keeps `find` effectively constant at this workload's scale.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Appends a fresh singleton element and returns its id (streaming
    /// ER grows the universe one record at a time).
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Representative without path compression (for `&self` contexts).
    pub fn find_const(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; the **smaller root** becomes the
    /// representative and is returned (the paper's `k = union(i, j)`).
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (keep, fold) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[fold as usize] = keep;
        keep
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&x| self.find_const(x) == x)
            .count()
    }

    /// Encodes the forest as a JSON array of parent pointers, verbatim.
    ///
    /// The parent array is serialized without canonicalization so a
    /// restored forest is *bit-identical* to the live one — `find`'s
    /// path-halving history is part of the state, and replaying it exactly
    /// keeps checkpointed sessions continuation-equivalent.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.parent
                .iter()
                .map(|&p| Json::Int(i64::from(p)))
                .collect(),
        )
    }

    /// Decodes a forest from [`UnionFind::to_json`] output, validating
    /// that every parent pointer stays in bounds.
    pub fn from_json(json: &Json) -> Result<Self> {
        let arr = json.as_arr()?;
        let mut parent = Vec::with_capacity(arr.len());
        for p in arr {
            parent.push(p.as_u32()?);
        }
        let n = parent.len() as u32;
        if let Some(&bad) = parent.iter().find(|&&p| p >= n) {
            return Err(HeraError::Corrupt(format!(
                "union-find parent pointer {bad} out of bounds (len {n})"
            )));
        }
        Ok(Self { parent })
    }

    /// Groups every element by representative; clusters sorted by root id.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len() as u32;
        let mut by_root: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(3), 3);
    }

    #[test]
    fn smaller_root_wins() {
        let mut uf = UnionFind::new(8);
        assert_eq!(uf.union(5, 2), 2);
        assert_eq!(uf.union(2, 7), 2);
        assert_eq!(uf.union(0, 5), 0); // 5's root is 2; 0 < 2
        assert_eq!(uf.find(7), 0);
    }

    #[test]
    fn paper_example5() {
        // 1 = union(1, 6) — with the paper's 1-based rids.
        let mut uf = UnionFind::new(7);
        assert_eq!(uf.union(1, 6), 1);
        assert!(uf.connected(1, 6));
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert_eq!(uf.union(0, 1), 0);
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn clusters_grouping() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 3);
        uf.union(1, 4);
        let cs = uf.clusters();
        assert_eq!(cs, vec![vec![0, 3], vec![1, 4], vec![2]]);
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        uf.union(0, 4);
        let _ = uf.find(3); // path halving mutates parents
        let json = uf.to_json().to_string_compact();
        let back = UnionFind::from_json(&hera_types::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.parent, uf.parent, "parents restored verbatim");
    }

    #[test]
    fn json_rejects_out_of_bounds_parent() {
        let err = UnionFind::from_json(&hera_types::json::parse("[0,5,2]").unwrap()).unwrap_err();
        assert!(matches!(err, hera_types::HeraError::Corrupt(_)), "{err}");
    }

    proptest! {
        /// After arbitrary unions: find is a congruence (same root ⇔
        /// connected), roots are minimal members, and set count is
        /// n − (number of effective unions).
        #[test]
        fn invariants(ops in proptest::collection::vec((0u32..20, 0u32..20), 0..40)) {
            let mut uf = UnionFind::new(20);
            let mut effective = 0;
            for (a, b) in ops {
                if !uf.connected(a, b) {
                    effective += 1;
                }
                let root = uf.union(a, b);
                prop_assert_eq!(uf.find(a), root);
                prop_assert_eq!(uf.find(b), root);
                prop_assert!(root <= a && root <= b || uf.connected(root, a));
            }
            prop_assert_eq!(uf.set_count(), 20 - effective);
            // Every root is the minimum of its cluster.
            for cluster in uf.clusters() {
                let root = uf.find(cluster[0]);
                prop_assert_eq!(root, *cluster.iter().min().unwrap());
            }
        }
    }
}
