//! The paper-literal flat index: one sorted array, probed by two nested
//! binary searches (Definition 6 / Algorithm 1 lines 4–5).
//!
//! Kept alongside [`ValuePairIndex`](crate::ValuePairIndex) for
//! differential testing and for benchmarking the paper's exact memory
//! layout. Queries match the production index entry-for-entry; merge
//! maintenance is the naive relabel-and-resort (`O(|𝒱| log |𝒱|)`), which
//! is the cost the grouped index's re-homing avoids.

use hera_join::ValuePair;
use hera_types::Label;

/// Flat sorted value-pair index.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    /// Sorted by `(rid₁, rid₂, sim desc, labels)`. Each position is the
    /// entry's `pid` (the paper numbers them from 1; we are 0-based).
    entries: Vec<ValuePair>,
}

impl FlatIndex {
    /// Builds from a similarity-join result.
    pub fn build(pairs: impl IntoIterator<Item = ValuePair>) -> Self {
        let mut entries: Vec<ValuePair> = pairs.into_iter().collect();
        for p in &entries {
            assert!(p.a.rid < p.b.rid, "value pair must be rid-normalized");
        }
        sort_entries(&mut entries);
        Self { entries }
    }

    /// `|𝒱|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry at `pid` (0-based).
    pub fn entry(&self, pid: usize) -> &ValuePair {
        &self.entries[pid]
    }

    /// `binary_search_l(1, |V|, i)` of Algorithm 1: the half-open range of
    /// entries whose `rid₁ == i`.
    pub fn rid1_range(&self, i: u32) -> std::ops::Range<usize> {
        let lo = self.entries.partition_point(|e| e.a.rid < i);
        let hi = self.entries.partition_point(|e| e.a.rid <= i);
        lo..hi
    }

    /// `binary_search_r(k, l, j)`: within a `rid₁` range, the sub-range
    /// with `rid₂ == j`.
    pub fn rid2_range(&self, within: std::ops::Range<usize>, j: u32) -> std::ops::Range<usize> {
        let slice = &self.entries[within.clone()];
        let lo = within.start + slice.partition_point(|e| e.b.rid < j);
        let hi = within.start + slice.partition_point(|e| e.b.rid <= j);
        lo..hi
    }

    /// `𝒱ᵢⱼ` via the two nested binary searches, similarity-descending.
    pub fn group(&self, i: u32, j: u32) -> &[ValuePair] {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let r1 = self.rid1_range(i);
        let r2 = self.rid2_range(r1, j);
        &self.entries[r2]
    }

    /// Merge maintenance, paper-naive: delete intra `(i, j)` pairs,
    /// rewrite labels of both rids through `remap`, resort the whole
    /// array.
    pub fn merge(&mut self, i: u32, j: u32, k: u32, remap: impl Fn(Label) -> Label) {
        assert!(
            k == i || k == j,
            "merge target must be one of the merged rids"
        );
        self.entries
            .retain(|e| !((e.a.rid == i && e.b.rid == j) || (e.a.rid == j && e.b.rid == i)));
        for e in &mut self.entries {
            if e.a.rid == i || e.a.rid == j {
                e.a = remap(e.a);
            }
            if e.b.rid == i || e.b.rid == j {
                e.b = remap(e.b);
            }
            if e.a.rid > e.b.rid {
                std::mem::swap(&mut e.a, &mut e.b);
            }
        }
        sort_entries(&mut self.entries);
        // Same duplicate-collapse as the grouped index (see its `merge`).
        let mut seen: std::collections::HashSet<(Label, Label)> = Default::default();
        self.entries.retain(|e| seen.insert((e.a, e.b)));
    }

    /// All entries (pid order).
    pub fn entries(&self) -> &[ValuePair] {
        &self.entries
    }
}

fn sort_entries(entries: &mut [ValuePair]) {
    entries.sort_unstable_by(|x, y| {
        (x.a.rid, x.b.rid)
            .cmp(&(y.a.rid, y.b.rid))
            .then_with(|| {
                y.sim
                    .partial_cmp(&x.sim)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValuePairIndex;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn vp(r1: u32, f1: u32, r2: u32, f2: u32, sim: f64) -> ValuePair {
        ValuePair {
            a: Label::new(r1, f1, 0),
            b: Label::new(r2, f2, 0),
            sim,
        }
    }

    #[test]
    fn nested_binary_search() {
        let idx = FlatIndex::build(vec![
            vp(1, 0, 2, 0, 0.9),
            vp(1, 0, 3, 0, 0.8),
            vp(1, 1, 3, 1, 0.7),
            vp(2, 0, 3, 0, 0.6),
        ]);
        assert_eq!(idx.rid1_range(1), 0..3);
        assert_eq!(idx.rid1_range(2), 3..4);
        assert_eq!(idx.rid1_range(9), 4..4);
        let g = idx.group(1, 3);
        assert_eq!(g.len(), 2);
        assert!(g[0].sim >= g[1].sim);
        assert!(idx.group(2, 9).is_empty());
    }

    #[test]
    fn example4_probe() {
        // Fig 4: rid₁ = 4 appears in pids 13..17 (1-based); finding
        // rid₂ = 6 within yields exactly three pairs.
        let idx = FlatIndex::build(vec![
            vp(1, 3, 4, 3, 1.0),
            vp(1, 1, 6, 1, 1.0),
            vp(2, 2, 6, 4, 1.0),
            vp(3, 1, 5, 1, 1.0),
            vp(4, 1, 5, 2, 0.83),
            vp(4, 2, 5, 2, 0.4),
            vp(4, 3, 6, 3, 1.0),
            vp(4, 4, 6, 4, 1.0),
            vp(4, 5, 6, 5, 0.9),
        ]);
        assert_eq!(idx.group(4, 6).len(), 3);
        // Range endpoints match the sorted layout.
        let r = idx.rid1_range(4);
        assert_eq!(r.len(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Flat and grouped indexes agree on every group, before and after
        /// a merge.
        #[test]
        fn differential_with_grouped(seed in any::<u64>(), n in 0usize..40) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut pairs = Vec::new();
            let mut used = std::collections::HashSet::new();
            for _ in 0..n {
                let r1 = rng.gen_range(0..6u32);
                let r2 = rng.gen_range(0..6u32);
                if r1 == r2 { continue; }
                let (r1, r2) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
                let p = vp(r1, rng.gen_range(0..4), r2, rng.gen_range(0..4),
                           rng.gen_range(1..=10) as f64 / 10.0);
                // Distinct labels, as a real join (one entry per value
                // pair) guarantees.
                if used.insert((p.a, p.b)) {
                    pairs.push(p);
                }
            }
            let flat = FlatIndex::build(pairs.clone());
            let grouped = ValuePairIndex::build(pairs.clone());
            prop_assert_eq!(flat.len(), grouped.len());
            for i in 0..6u32 {
                for j in (i + 1)..6u32 {
                    prop_assert_eq!(flat.group(i, j), grouped.group(i, j),
                        "group ({}, {})", i, j);
                }
            }

            // Merge 0 and 1 into 0 with an fid-shifting remap.
            let remap = |l: Label| Label::new(0, l.fid + 4 * u32::from(l.rid == 1), l.vid);
            let mut flat = flat;
            let mut grouped = grouped;
            flat.merge(0, 1, 0, remap);
            grouped.merge(0, 1, 0, remap);
            grouped.check_invariants().unwrap();
            prop_assert_eq!(flat.len(), grouped.len());
            for i in 0..6u32 {
                for j in (i + 1)..6u32 {
                    prop_assert_eq!(flat.group(i, j), grouped.group(i, j),
                        "post-merge group ({}, {})", i, j);
                }
            }
        }
    }
}
