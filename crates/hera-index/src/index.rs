//! The production value-pair index: grouped, ordered, and maintainable.

use crate::bounds::{
    compute_bounds, refined_field_set, refined_field_set_into, BoundMode, Bounds, FieldPairSim,
};
use hera_join::ValuePair;
use hera_types::json::Json;
use hera_types::{HeraError, Label, Result};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

/// The value-pair index of Definition 6.
///
/// Logically a single sequence sorted by `(rid₁, rid₂, sim desc)`;
/// physically a `BTreeMap` keyed by the `(rid₁, rid₂)` prefix with each
/// group kept similarity-descending. Lookups match the paper's two nested
/// binary searches (`O(log |𝒱| + |𝒱ᵢⱼ|)`), and merge maintenance re-homes
/// only the `O(|𝒱̂ᵢⱼ|)` affected entries instead of splicing a flat array.
#[derive(Debug, Clone, Default)]
pub struct ValuePairIndex {
    groups: BTreeMap<(u32, u32), Vec<ValuePair>>,
    /// rid → set of partner rids with at least one indexed pair.
    partners: FxHashMap<u32, FxHashSet<u32>>,
    /// Total entry count `|𝒱|`.
    total: usize,
}

impl ValuePairIndex {
    /// Builds the index from a similarity-join result. The iterator may
    /// yield pairs in any order (they are sorted here), but each pair
    /// itself must be rid-normalized (`a.rid < b.rid`) — a non-normalized
    /// pair panics, exactly as it does on the incremental path.
    ///
    /// Bulk path: pairs are sorted by group key (a no-op pass when the
    /// input is already in join output order) and consumed as sorted
    /// runs, so the tree, partner-map, and set operations happen once per
    /// **group** instead of once per pair. [`Self::build_incremental`] is
    /// the per-pair reference path with identical results.
    pub fn build(pairs: impl IntoIterator<Item = ValuePair>) -> Self {
        let mut pairs: Vec<ValuePair> = pairs.into_iter().collect();
        pairs.sort_unstable_by_key(|p| (p.a.rid, p.b.rid));
        let mut idx = Self {
            total: pairs.len(),
            ..Self::default()
        };
        let mut i = 0;
        while i < pairs.len() {
            let key = (pairs[i].a.rid, pairs[i].b.rid);
            assert!(key.0 < key.1, "value pair must be rid-normalized");
            let mut j = i + 1;
            while j < pairs.len() && (pairs[j].a.rid, pairs[j].b.rid) == key {
                j += 1;
            }
            let mut group = pairs[i..j].to_vec();
            sort_group(&mut group);
            idx.groups.insert(key, group);
            idx.partners.entry(key.0).or_default().insert(key.1);
            idx.partners.entry(key.1).or_default().insert(key.0);
            i = j;
        }
        idx
    }

    /// Reference build: one tree/partner insertion per pair — the
    /// pre-optimization path, kept for A/B benchmarks and differential
    /// tests against the bulk [`Self::build`].
    pub fn build_incremental(pairs: impl IntoIterator<Item = ValuePair>) -> Self {
        let mut idx = Self::default();
        for p in pairs {
            idx.insert(p);
        }
        idx.restore_group_order();
        idx
    }

    fn insert(&mut self, p: ValuePair) {
        assert!(p.a.rid < p.b.rid, "value pair must be rid-normalized");
        self.groups.entry((p.a.rid, p.b.rid)).or_default().push(p);
        self.partners.entry(p.a.rid).or_default().insert(p.b.rid);
        self.partners.entry(p.b.rid).or_default().insert(p.a.rid);
        self.total += 1;
    }

    fn restore_group_order(&mut self) {
        for g in self.groups.values_mut() {
            sort_group(g);
        }
    }

    /// Adds freshly joined pairs to an existing index (streaming ER: a
    /// new record's similar value pairs arrive after the initial build).
    /// Only the touched groups are re-sorted.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = ValuePair>) {
        let mut touched: FxHashSet<(u32, u32)> = FxHashSet::default();
        for p in pairs {
            touched.insert((p.a.rid, p.b.rid));
            self.insert(p);
        }
        for key in touched {
            if let Some(g) = self.groups.get_mut(&key) {
                sort_group(g);
            }
        }
    }

    /// `|𝒱|` — number of indexed value pairs (Table II's `|S|`).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no pairs are indexed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The group `𝒱ᵢⱼ` for a record pair (either argument order),
    /// similarity-descending. Empty slice if the records share no similar
    /// values.
    pub fn group(&self, i: u32, j: u32) -> &[ValuePair] {
        let key = if i < j { (i, j) } else { (j, i) };
        self.groups.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates all record pairs that share at least one similar value —
    /// the raw candidate universe, obtained in linear time (Prop. 2).
    pub fn record_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.groups.keys().copied()
    }

    /// Number of record-pair groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Partners of a record (rids it shares similar values with).
    pub fn partners(&self, rid: u32) -> impl Iterator<Item = u32> + '_ {
        self.partners
            .get(&rid)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// The refined field set `𝒱′ᵢⱼ` — all *similar field pairs* of the
    /// record pair with their field similarities (the verification step's
    /// input, §IV-A Step 1).
    pub fn similar_field_pairs(&self, i: u32, j: u32) -> Vec<FieldPairSim> {
        let mut out = Vec::new();
        self.similar_field_pairs_into(i, j, &mut out);
        out
    }

    /// [`ValuePairIndex::similar_field_pairs`] into a caller buffer: `out`
    /// is cleared and refilled, so the verifier's per-pair lookup reuses
    /// one allocation across its whole run.
    pub fn similar_field_pairs_into(&self, i: u32, j: u32, out: &mut Vec<FieldPairSim>) {
        let group = self.group(i, j);
        refined_field_set_into(group, out);
        if i > j {
            // Caller views `i` as the left record: swap sides in place.
            for p in out.iter_mut() {
                std::mem::swap(&mut p.left_fid, &mut p.right_fid);
            }
        }
    }

    /// Algorithm 1: bounds of `Sim(Rᵢ, Rⱼ)` given the two record sizes.
    pub fn bounds(&self, i: u32, j: u32, size_i: usize, size_j: usize, mode: BoundMode) -> Bounds {
        let (key_sizes, group) = if i < j {
            ((size_i, size_j), self.group(i, j))
        } else {
            ((size_j, size_i), self.group(i, j))
        };
        let refined = refined_field_set(group);
        compute_bounds(&refined, key_sizes.0, key_sizes.1, mode)
    }

    /// Bound-ordered candidate drain: computes Up/Low for each candidate
    /// root pair, prunes pairs whose upper bound cannot reach `delta`,
    /// and returns the survivors in deterministic priority order —
    /// highest expected value first (see [`RankedCandidate::priority`]).
    /// `size_of` supplies a root's informative size (the bound
    /// denominator); `members_of` its member-record count, which is
    /// summed per frontier component into the candidate gain. This is
    /// the scheduling signal progressive resolution spends its
    /// comparison budget along. Returns `(ranked survivors, pruned
    /// count)`.
    pub fn drain_ranked(
        &self,
        pairs: &[(u32, u32)],
        mut size_of: impl FnMut(u32) -> usize,
        mut members_of: impl FnMut(u32) -> u64,
        mode: BoundMode,
        delta: f64,
    ) -> (Vec<RankedCandidate>, usize) {
        // Pass 1: bounds; drop candidates whose upper bound cannot reach
        // δ. A pair is *confident* when its expected similarity (the
        // [Low, Up] midpoint) clears δ — only confident pairs carry and
        // contribute cluster gain below.
        let mut survivors: Vec<((u32, u32), Bounds, bool)> = Vec::with_capacity(pairs.len());
        let mut pruned = 0usize;
        for &(a, b) in pairs {
            let bounds = self.bounds(a, b, size_of(a), size_of(b), mode);
            if bounds.up < delta {
                pruned += 1;
                continue;
            }
            let confident = 0.5 * (bounds.up + bounds.low) >= delta;
            survivors.push(((a, b), bounds, confident));
        }

        // Pass 2: connected components of the confident frontier graph.
        // A component approximates one not-yet-coalesced cluster, and its
        // total record count is the payoff completing that cluster buys.
        // Union–find over the roots; the partition (and hence the gain)
        // is independent of edge order.
        let mut slot: FxHashMap<u32, u32> = FxHashMap::default();
        let mut parent: Vec<u32> = Vec::new();
        let mut weight: Vec<u64> = Vec::new();
        let mut slot_of = |r: u32, parent: &mut Vec<u32>, weight: &mut Vec<u64>| -> u32 {
            *slot.entry(r).or_insert_with(|| {
                let s = parent.len() as u32;
                parent.push(s);
                weight.push(members_of(r));
                s
            })
        };
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &((a, b), _, confident) in &survivors {
            if !confident {
                continue;
            }
            let (sa, sb) = (
                slot_of(a, &mut parent, &mut weight),
                slot_of(b, &mut parent, &mut weight),
            );
            let (ra, rb) = (find(&mut parent, sa), find(&mut parent, sb));
            if ra != rb {
                parent[ra as usize] = rb;
                weight[rb as usize] += weight[ra as usize];
            }
        }

        // Pass 3: gain = the candidate's component record total (1 for
        // non-confident pairs), then the deterministic priority sort.
        let mut ranked: Vec<RankedCandidate> = survivors
            .into_iter()
            .map(|((a, b), bounds, confident)| RankedCandidate {
                pair: (a, b),
                bounds,
                gain: if confident {
                    let s = slot[&a];
                    weight[find(&mut parent, s) as usize]
                } else {
                    1
                },
            })
            .collect();
        rank_candidates(&mut ranked);
        (ranked, pruned)
    }

    /// Merge maintenance (§III-B2): records `i` and `j` were merged into
    /// `k` (one of `i`/`j` per union–find). `remap` rewrites an old value
    /// label of `i` or `j` into its new label under `k` (reflecting field
    /// merges and value re-numbering); labels of other records are never
    /// passed to it.
    ///
    /// Effects, per the paper: the `(i, j)` group is **deleted** (its
    /// values are now intra-record), every other group touching `i` or `j`
    /// is relabeled and re-homed under `k`, and group order is restored.
    pub fn merge(&mut self, i: u32, j: u32, k: u32, remap: impl Fn(Label) -> Label) {
        assert!(
            k == i || k == j,
            "merge target must be one of the merged rids"
        );
        let (a, b) = if i < j { (i, j) } else { (j, i) };

        // 1. delete: intra-pairs between i and j.
        if let Some(gone) = self.groups.remove(&(a, b)) {
            self.total -= gone.len();
        }
        self.partners.entry(a).or_default().remove(&b);
        self.partners.entry(b).or_default().remove(&a);

        // 2. collect partners of both rids (excluding each other).
        let mut affected: FxHashSet<u32> = FxHashSet::default();
        for rid in [i, j] {
            if let Some(ps) = self.partners.get(&rid) {
                affected.extend(ps.iter().copied());
            }
        }
        affected.remove(&i);
        affected.remove(&j);

        // 3. update: re-home each affected group under k, relabeling.
        for p in affected {
            let mut merged: Vec<ValuePair> = Vec::new();
            for old in [i, j] {
                let key = if old < p { (old, p) } else { (p, old) };
                if let Some(entries) = self.groups.remove(&key) {
                    for e in entries {
                        // Rewrite the side that belonged to old → k.
                        let (mut x, mut y) = (e.a, e.b);
                        if x.rid == old {
                            x = remap(x);
                            debug_assert_eq!(x.rid, k, "remap must move labels to k");
                        } else {
                            y = remap(y);
                            debug_assert_eq!(y.rid, k, "remap must move labels to k");
                        }
                        let (x, y) = if x.rid < y.rid { (x, y) } else { (y, x) };
                        merged.push(ValuePair {
                            a: x,
                            b: y,
                            sim: e.sim,
                        });
                    }
                }
                self.partners.entry(old).or_default().remove(&p);
                self.partners.entry(p).or_default().remove(&old);
            }
            if merged.is_empty() {
                continue;
            }
            sort_group(&mut merged);
            // Super-record merging dedupes equal values, so two old labels
            // can remap to one new label; the resulting entries are exact
            // duplicates (equal values ⇒ equal sims). Keep the first.
            let mut seen_labels: FxHashSet<(Label, Label)> = FxHashSet::default();
            let before = merged.len();
            merged.retain(|e| seen_labels.insert((e.a, e.b)));
            self.total -= before - merged.len();
            let new_key = if k < p { (k, p) } else { (p, k) };
            // Both old groups were removed above; re-homing cannot collide
            // with an untouched group because any (k, p) group was one of
            // them (k ∈ {i, j}).
            let slot = self.groups.entry(new_key).or_default();
            debug_assert!(slot.is_empty(), "re-homed group collided");
            slot.extend(merged);
            self.partners.entry(k).or_default().insert(p);
            self.partners.entry(p).or_default().insert(k);
        }

        // Drop empty partner sets of the absorbed rid.
        let folded = if k == i { j } else { i };
        if self.partners.get(&folded).is_some_and(|s| s.is_empty()) {
            self.partners.remove(&folded);
        }
    }

    /// Encodes the index as a flat JSON array of value pairs in group
    /// order (key-ascending, each group similarity-descending). The group
    /// order is a total order — sim descending, then label pair — so
    /// rebuilding from this dump is a fixpoint: re-serializing a restored
    /// index yields byte-identical output.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.groups
                .values()
                .flatten()
                .map(|p| {
                    Json::Obj(vec![
                        ("a".into(), p.a.to_json()),
                        ("b".into(), p.b.to_json()),
                        ("sim".into(), Json::Float(p.sim)),
                    ])
                })
                .collect(),
        )
    }

    /// Decodes an index from [`ValuePairIndex::to_json`] output,
    /// rejecting non-normalized or non-finite pairs with a typed error
    /// instead of panicking.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut idx = Self::default();
        for p in json.as_arr()? {
            let pair = ValuePair {
                a: Label::from_json(p.expect("a")?)?,
                b: Label::from_json(p.expect("b")?)?,
                sim: p.expect("sim")?.as_f64()?,
            };
            if pair.a.rid >= pair.b.rid {
                return Err(HeraError::Corrupt(format!(
                    "index pair {}-{} not rid-normalized",
                    pair.a, pair.b
                )));
            }
            if !pair.sim.is_finite() {
                return Err(HeraError::Corrupt(format!(
                    "index pair {}-{} has non-finite sim",
                    pair.a, pair.b
                )));
            }
            idx.insert(pair);
        }
        idx.restore_group_order();
        Ok(idx)
    }

    /// Structural statistics for reports and tuning.
    pub fn stats(&self) -> IndexStats {
        let mut max_group = 0usize;
        for g in self.groups.values() {
            max_group = max_group.max(g.len());
        }
        IndexStats {
            entries: self.total,
            groups: self.groups.len(),
            records: self.partners.values().filter(|s| !s.is_empty()).count(),
            max_group,
        }
    }

    /// Emits a `stage` span with the index's structural statistics — all
    /// deterministic totals, so the line is part of the core journal.
    pub fn record_span(&self, recorder: &hera_obs::Recorder, stage: &str) {
        if !recorder.enabled() {
            return;
        }
        let s = self.stats();
        recorder.span(
            stage,
            None,
            &[
                ("entries", s.entries as i64),
                ("groups", s.groups as i64),
                ("records", s.records as i64),
                ("max_group", s.max_group as i64),
            ],
        );
    }

    /// The `k` partners of `rid` with the highest single-value-pair
    /// similarity — a cheap "who could this record be?" query for
    /// interactive use (each group is similarity-descending, so its head
    /// is its best pair).
    pub fn top_partners(&self, rid: u32, k: usize) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = self
            .partners(rid)
            .filter_map(|p| self.group(rid, p).first().map(|e| (p, e.sim)))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Full-index invariant check (tests/debug): normalization, ordering,
    /// partner symmetry, and count consistency.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let mut count = 0;
        for (&(i, j), g) in &self.groups {
            if i >= j {
                return Err(format!("group key ({i},{j}) not normalized"));
            }
            for w in g.windows(2) {
                if w[0].sim < w[1].sim - 1e-12 {
                    return Err(format!("group ({i},{j}) not sim-descending"));
                }
            }
            for e in g {
                if e.a.rid != i || e.b.rid != j {
                    return Err(format!("entry {}-{} filed under group ({i},{j})", e.a, e.b));
                }
            }
            count += g.len();
            let pi = self.partners.get(&i).is_some_and(|s| s.contains(&j));
            let pj = self.partners.get(&j).is_some_and(|s| s.contains(&i));
            if !pi || !pj {
                return Err(format!("partner sets miss group ({i},{j})"));
            }
        }
        if count != self.total {
            return Err(format!("total {} != counted {count}", self.total));
        }
        Ok(())
    }
}

/// A candidate root pair with its similarity bounds and merge gain,
/// ready for priority-ordered verification (the progressive scheduler's
/// unit of work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCandidate {
    /// The normalized root pair `(min, max)`.
    pub pair: (u32, u32),
    /// Up/Low similarity bounds of the pair at drain time.
    pub bounds: Bounds,
    /// The total record count of this candidate's connected component in
    /// the confident frontier graph — the size of the cluster this merge
    /// is expected to help complete. Pair capture is quadratic in cluster
    /// size while merge cost is linear, so completing components in
    /// descending gain order is the pair-optimal anytime schedule. The
    /// component total is *forward-looking*: two hub singletons carry
    /// their whole hub's weight from round one, where an immediate payoff
    /// like `|A|·|B|` would be blind (every singleton pair scores 1 and
    /// the scheduler coalesces all clusters breadth-first in lockstep).
    /// Set to 1 at drain time when the pair's expected similarity falls
    /// short of δ — an unlikely pair must not borrow priority from a
    /// cluster it probably does not belong to.
    pub gain: u64,
}

impl RankedCandidate {
    /// The expected-value priority signal: merge probability times merge
    /// payoff. Probability is proxied by the midpoint of `[Low, Up]` —
    /// `Up` alone over-ranks wide, uncertain intervals; the midpoint is
    /// the expected similarity under an uninformative prior over the
    /// interval. Payoff is [`RankedCandidate::gain`], the record total of
    /// the candidate's frontier component. Ranking by probability alone
    /// coalesces every cluster breadth-first — a maximal matching per
    /// round across the whole frontier — so all clusters complete
    /// together at the *end* of the budget; weighting by component size
    /// makes every pair of the biggest pending cluster outrank every pair
    /// of smaller ones, so the scheduler completes clusters in descending
    /// size order and anytime quality front-loads.
    pub fn priority(&self) -> f64 {
        0.5 * (self.bounds.up + self.bounds.low) * self.gain as f64
    }
}

/// Sorts candidates into the deterministic scheduling order: priority
/// descending, then `Up` descending, then pair key ascending. All f64
/// comparisons use `total_cmp`, so the order is a total order — equal
/// inputs sort identically on every host, thread count, and run.
pub fn rank_candidates(v: &mut [RankedCandidate]) {
    v.sort_unstable_by(|x, y| {
        y.priority()
            .total_cmp(&x.priority())
            .then(y.bounds.up.total_cmp(&x.bounds.up))
            .then(x.pair.cmp(&y.pair))
    });
}

/// Summary shape of a [`ValuePairIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Total value pairs `|𝒱|`.
    pub entries: usize,
    /// Record-pair groups (pairs sharing ≥ 1 similar value).
    pub groups: usize,
    /// Records participating in at least one pair.
    pub records: usize,
    /// Largest group size.
    pub max_group: usize,
}

fn sort_group(g: &mut [ValuePair]) {
    g.sort_unstable_by(|x, y| {
        y.sim
            .partial_cmp(&x.sim)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundMode;

    fn vp(r1: u32, f1: u32, v1: u32, r2: u32, f2: u32, v2: u32, sim: f64) -> ValuePair {
        ValuePair {
            a: Label::new(r1, f1, v1),
            b: Label::new(r2, f2, v2),
            sim,
        }
    }

    /// The motivating example's index (Fig. 4), 1-based rids like the
    /// paper. 17 value pairs.
    fn fig4_index() -> ValuePairIndex {
        ValuePairIndex::build(vec![
            vp(1, 3, 1, 4, 3, 1, 1.0),
            vp(1, 1, 1, 6, 1, 1, 1.0),
            vp(1, 2, 1, 6, 2, 1, 1.0),
            vp(1, 3, 1, 6, 3, 1, 1.0),
            vp(1, 5, 1, 6, 5, 1, 0.9),
            vp(2, 1, 1, 4, 1, 1, 1.0),
            vp(2, 2, 1, 4, 4, 1, 1.0),
            vp(2, 3, 1, 3, 3, 1, 0.5),
            vp(2, 2, 1, 6, 4, 1, 1.0),
            vp(3, 1, 1, 5, 1, 1, 1.0),
            vp(3, 2, 1, 5, 4, 1, 1.0),
            vp(3, 3, 1, 5, 3, 1, 0.4),
            vp(4, 1, 1, 5, 2, 1, 0.83),
            vp(4, 2, 1, 5, 2, 1, 0.4),
            vp(4, 3, 1, 6, 3, 1, 1.0),
            vp(4, 4, 1, 6, 4, 1, 1.0),
            vp(4, 5, 1, 6, 5, 1, 0.9),
        ])
    }

    #[test]
    fn build_counts() {
        let idx = fig4_index();
        assert_eq!(idx.len(), 17);
        // Keys: (1,4),(1,6),(2,3),(2,4),(2,6),(3,5),(4,5),(4,6).
        assert_eq!(idx.group_count(), 8);
        idx.check_invariants().unwrap();
    }

    #[test]
    fn group_lookup_matches_example4() {
        // Example 4: V'_{46} has three value pairs.
        let idx = fig4_index();
        let g = idx.group(4, 6);
        assert_eq!(g.len(), 3);
        // Sorted sim-descending: 1.0, 1.0, 0.9.
        assert_eq!(g[0].sim, 1.0);
        assert_eq!(g[2].sim, 0.9);
        // Symmetric lookup.
        assert_eq!(idx.group(6, 4).len(), 3);
        // Missing group.
        assert!(idx.group(1, 2).is_empty());
    }

    #[test]
    fn example4_bounds_decide_directly() {
        let idx = fig4_index();
        for mode in [BoundMode::Paper, BoundMode::Sound] {
            let b = idx.bounds(4, 6, 5, 5, mode);
            assert!((b.up - 2.9 / 5.0).abs() < 1e-9, "{mode:?}: up {}", b.up);
            assert!(b.is_exact(), "{mode:?}");
        }
    }

    #[test]
    fn group_with_same_rid_pair_sorted_sim_desc() {
        // Pairs 13/14 of Fig 4 share (4,5): 0.83 before 0.4.
        let idx = fig4_index();
        let g = idx.group(4, 5);
        assert_eq!(g.len(), 2);
        assert!(g[0].sim > g[1].sim);
    }

    #[test]
    fn merge_example5() {
        // Example 5: merge r1 and r6 into R1. Four intra pairs deleted,
        // labels of r6 values rewritten to rid 1.
        let mut idx = fig4_index();
        // r6's fields keep their fids in this toy remap (they merge into
        // matching fields of r1 at the same positions).
        let remap = |l: Label| Label::new(1, l.fid, if l.rid == 6 { 2 } else { l.vid });
        idx.merge(1, 6, 1, remap);
        idx.check_invariants().unwrap();
        // 17 - 4 intra = 13 pairs remain.
        assert_eq!(idx.len(), 13);
        // Former (2,6) pair is now filed under (1,2) with rewritten label.
        let g12 = idx.group(1, 2);
        assert_eq!(g12.len(), 1);
        assert_eq!(g12[0].a.rid, 1);
        assert_eq!(g12[0].a.vid, 2); // relabeled r6 value
        assert_eq!(g12[0].b.rid, 2);
        // Former (4,6) pairs merged into the (1,4) group: 1 existing + 3.
        assert_eq!(idx.group(1, 4).len(), 4);
        // No group mentions rid 6 anymore.
        assert!(idx.record_pairs().all(|(i, j)| i != 6 && j != 6));
    }

    #[test]
    fn merge_into_higher_rid_side() {
        // Merge where k is the *second* rid: 4 = union over (4, 6) is the
        // small side, but test k == j by merging (1, 4) → 1 then (1, 6).
        let mut idx = fig4_index();
        let remap14 = |l: Label| Label::new(1, l.fid + 10 * u32::from(l.rid == 4), l.vid);
        idx.merge(1, 4, 1, remap14);
        idx.check_invariants().unwrap();
        // (1,4) group had 1 pair → deleted. (4,5) and (4,6) re-homed.
        assert_eq!(idx.len(), 16);
        assert!(idx.group(1, 5).len() >= 2);
        assert!(!idx.group(1, 6).is_empty());
    }

    #[test]
    fn merge_twice_keeps_prop3() {
        // Prop 3: after arbitrary merges, similar value pairs of merged
        // super records remain reachable via the index.
        let mut idx = fig4_index();
        idx.merge(1, 6, 1, |l| Label::new(1, l.fid, l.vid + 1));
        idx.merge(2, 4, 2, |l| Label::new(2, l.fid, l.vid + 1));
        idx.check_invariants().unwrap();
        // All evidence between super-record 1 = {r1, r6} and super-record
        // 2 = {r2, r4} is now in group (1,2): originally (1,4): 1 pair,
        // (2,6): 1 pair, (4,6): 3 pairs — but the (1,4) pair and the
        // (4,6) fid-3 pair collapse because this remap dedupes the equal
        // bush@gmail values of r1 and r6 into one label → 4 pairs.
        assert_eq!(idx.group(1, 2).len(), 4);
    }

    #[test]
    #[should_panic(expected = "merge target")]
    fn merge_rejects_foreign_target() {
        let mut idx = fig4_index();
        idx.merge(1, 6, 3, |l| l);
    }

    #[test]
    fn stats_summarize_structure() {
        let idx = fig4_index();
        let s = idx.stats();
        assert_eq!(s.entries, 17);
        assert_eq!(s.groups, 8);
        assert_eq!(s.records, 6);
        assert_eq!(s.max_group, 4); // the (1,6) group
    }

    #[test]
    fn top_partners_ranked_by_best_pair() {
        let idx = fig4_index();
        // r4's best single-value partners: r6 and r2 tie at 1.0 (rid
        // breaks the tie), then r5 (0.83), then r1 (1.0)… recount: groups
        // of 4: (1,4)=1.0, (2,4)=1.0, (4,5)=0.83, (4,6)=1.0.
        let top = idx.top_partners(4, 3);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|&(_, s)| s >= 0.83));
        assert!((top[0].1 - 1.0).abs() < 1e-12);
        // Full list includes r5 last.
        let all = idx.top_partners(4, 10);
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (5, 0.83));
        // Unknown record: empty.
        assert!(idx.top_partners(99, 3).is_empty());
    }

    #[test]
    fn bulk_build_matches_incremental_reference() {
        // Same pairs, deliberately scrambled input order: both builds
        // must converge to the same canonical structure.
        let pairs = vec![
            vp(4, 5, 1, 6, 5, 1, 0.9),
            vp(1, 3, 1, 4, 3, 1, 1.0),
            vp(2, 1, 1, 4, 1, 1, 1.0),
            vp(1, 1, 1, 6, 1, 1, 1.0),
            vp(4, 1, 1, 5, 2, 1, 0.83),
            vp(1, 2, 1, 6, 2, 1, 1.0),
            vp(4, 2, 1, 5, 2, 1, 0.4),
            vp(2, 2, 1, 4, 4, 1, 1.0),
            vp(1, 3, 1, 6, 3, 1, 1.0),
        ];
        let bulk = ValuePairIndex::build(pairs.clone());
        let incr = ValuePairIndex::build_incremental(pairs);
        bulk.check_invariants().unwrap();
        incr.check_invariants().unwrap();
        assert_eq!(bulk.len(), incr.len());
        assert_eq!(bulk.group_count(), incr.group_count());
        assert_eq!(
            bulk.to_json().to_string_compact(),
            incr.to_json().to_string_compact()
        );
    }

    #[test]
    #[should_panic(expected = "rid-normalized")]
    fn bulk_build_rejects_unnormalized_pairs() {
        ValuePairIndex::build(vec![vp(6, 1, 1, 2, 1, 1, 0.5)]);
    }

    #[test]
    fn json_roundtrip_is_a_fixpoint() {
        let idx = fig4_index();
        let dump = idx.to_json().to_string_compact();
        let back = ValuePairIndex::from_json(&hera_types::json::parse(&dump).unwrap()).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.group_count(), idx.group_count());
        assert_eq!(back.to_json().to_string_compact(), dump, "fixpoint");
    }

    #[test]
    fn json_rejects_non_normalized_pair() {
        let json = hera_types::json::parse(
            r#"[{"a":{"rid":4,"fid":0,"vid":0},"b":{"rid":2,"fid":0,"vid":0},"sim":0.5}]"#,
        )
        .unwrap();
        let err = ValuePairIndex::from_json(&json).unwrap_err();
        assert!(matches!(err, hera_types::HeraError::Corrupt(_)), "{err}");
    }

    #[test]
    fn partners_track_groups() {
        let idx = fig4_index();
        let mut p4: Vec<u32> = idx.partners(4).collect();
        p4.sort_unstable();
        assert_eq!(p4, vec![1, 2, 5, 6]);
    }

    #[test]
    fn drain_ranked_orders_by_priority_and_prunes() {
        let idx = fig4_index();
        let pairs: Vec<(u32, u32)> = idx.record_pairs().collect();
        // δ = 0.9 prunes the weak groups (e.g. (2,3): up = 0.5/5 per
        // side pair — well under δ) and keeps the strong ones.
        let (ranked, pruned) = idx.drain_ranked(&pairs, |_| 5, |_| 1, BoundMode::Sound, 0.5);
        assert_eq!(ranked.len() + pruned, pairs.len());
        assert!(!ranked.is_empty());
        // Descending priority with the documented tie-breaks.
        for w in ranked.windows(2) {
            let (x, y) = (&w[0], &w[1]);
            assert!(
                x.priority() > y.priority()
                    || (x.priority() == y.priority() && x.bounds.up > y.bounds.up)
                    || (x.priority() == y.priority()
                        && x.bounds.up == y.bounds.up
                        && x.pair < y.pair),
                "out of order: {x:?} before {y:?}"
            );
        }
        // Every survivor clears the pruning bar.
        for c in &ranked {
            assert!(c.bounds.up >= 0.5);
        }
    }

    #[test]
    fn drain_ranked_is_input_order_independent() {
        let idx = fig4_index();
        let mut pairs: Vec<(u32, u32)> = idx.record_pairs().collect();
        let (fwd, _) = idx.drain_ranked(&pairs, |_| 5, |_| 1, BoundMode::Sound, 0.3);
        pairs.reverse();
        let (rev, _) = idx.drain_ranked(&pairs, |_| 5, |_| 1, BoundMode::Sound, 0.3);
        assert_eq!(fwd, rev, "ranking must not depend on drain input order");
    }

    #[test]
    fn rank_candidates_ties_break_on_pair_key() {
        let b = Bounds { up: 0.8, low: 0.2 };
        let mut v = vec![
            RankedCandidate {
                pair: (3, 9),
                bounds: b,
                gain: 1,
            },
            RankedCandidate {
                pair: (1, 2),
                bounds: b,
                gain: 1,
            },
            RankedCandidate {
                pair: (5, 6),
                bounds: Bounds { up: 0.9, low: 0.1 }, // same midpoint, higher up
                gain: 1,
            },
        ];
        rank_candidates(&mut v);
        assert_eq!(v[0].pair, (5, 6));
        assert_eq!(v[1].pair, (1, 2));
        assert_eq!(v[2].pair, (3, 9));
    }

    #[test]
    fn drain_ranked_gain_is_component_record_total() {
        let idx = fig4_index();
        let pairs: Vec<(u32, u32)> = idx.record_pairs().collect();
        let (ranked, _) = idx.drain_ranked(&pairs, |_| 5, |_| 2, BoundMode::Sound, 0.3);
        assert!(!ranked.is_empty());
        // Recompute components naively from the confident survivors and
        // check every candidate's gain is its component's record total
        // (every root contributes members_of = 2 here), with
        // non-confident pairs pinned to gain 1.
        let confident: Vec<(u32, u32)> = ranked
            .iter()
            .filter(|c| 0.5 * (c.bounds.up + c.bounds.low) >= 0.3)
            .map(|c| c.pair)
            .collect();
        let mut comps: Vec<std::collections::BTreeSet<u32>> = Vec::new();
        for &(a, b) in &confident {
            let ia = comps.iter().position(|s| s.contains(&a));
            let ib = comps.iter().position(|s| s.contains(&b));
            match (ia, ib) {
                (Some(x), Some(y)) if x != y => {
                    let merged = comps.swap_remove(y.max(x));
                    comps[y.min(x)].extend(merged);
                }
                (Some(_), Some(_)) => {}
                (Some(x), None) => {
                    comps[x].insert(b);
                }
                (None, Some(y)) => {
                    comps[y].insert(a);
                }
                (None, None) => {
                    comps.push([a, b].into_iter().collect());
                }
            }
        }
        for c in &ranked {
            if 0.5 * (c.bounds.up + c.bounds.low) >= 0.3 {
                let comp = comps
                    .iter()
                    .find(|s| s.contains(&c.pair.0))
                    .expect("confident pair must be in a component");
                assert_eq!(c.gain, 2 * comp.len() as u64, "pair {:?}", c.pair);
            } else {
                assert_eq!(c.gain, 1, "non-confident pair {:?}", c.pair);
            }
        }
    }

    #[test]
    fn rank_candidates_weighs_gain_over_similarity() {
        // A fragment pair resolving 6 record pairs outranks a cleaner
        // singleton pair: expected value = probability × payoff.
        let mut v = vec![
            RankedCandidate {
                pair: (1, 2),
                bounds: Bounds { up: 1.0, low: 0.9 },
                gain: 1,
            },
            RankedCandidate {
                pair: (3, 4),
                bounds: Bounds { up: 0.8, low: 0.6 },
                gain: 6,
            },
        ];
        rank_candidates(&mut v);
        assert_eq!(v[0].pair, (3, 4));
        assert!(v[0].priority() > v[1].priority());
    }
}
