//! HERA's value-pair index (§III) and everything built on it.
//!
//! The index stores every cross-record value pair with similarity `≥ ξ`,
//! logically sorted by `(rid₁, rid₂, sim desc)` exactly as Definition 6
//! prescribes, and supports the three operations the paper needs:
//!
//! * **Group lookup** (`𝒱ᵢⱼ`) — all similar value pairs of a record pair,
//!   in `O(log |𝒱| + |𝒱ᵢⱼ|)`;
//! * **Candidate generation** (Algorithm 1) — upper/lower bounds of
//!   `Sim(Rᵢ, Rⱼ)` from the *refined field set* `𝒱′ᵢⱼ`, in two flavors
//!   ([`BoundMode`]): the paper's literal Algorithm 1 and a provably sound
//!   variant (see DESIGN.md §Faithfulness);
//! * **Merge maintenance** (§III-B2) — when `Rᵢ ⊕ Rⱼ → R_k`, intra-pairs
//!   are deleted, labels are rewritten through the caller's remap, and
//!   groups are re-homed under `k`, in `O(|𝒱̂ᵢⱼ| log |𝒱|)`.
//!
//! Two physical layouts implement the same logical structure:
//! [`ValuePairIndex`] (grouped `BTreeMap`, the production structure) and
//! [`FlatIndex`] (the paper's literal flat sorted array probed by nested
//! binary search, kept for differential testing and the bench suite).
//! [`UnionFind`] tracks record → super-record identity (Prop. 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod flat;
mod index;
mod union_find;

pub use bounds::{refined_field_set_into, BoundMode, Bounds, FieldPairSim};
pub use flat::FlatIndex;
pub use index::{rank_candidates, IndexStats, RankedCandidate, ValuePairIndex};
pub use union_find::UnionFind;

pub use hera_join::ValuePair;
