//! Record-similarity bounds from the value-pair index (Algorithm 1).

use hera_join::ValuePair;
use rustc_hash::FxHashMap;

/// One *similar field pair* of the refined field set `𝒱′ᵢⱼ`: the field
/// pair's similarity is the max over its value pairs (Definition 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldPairSim {
    /// Field index in the left record `Rᵢ`.
    pub left_fid: u32,
    /// Field index in the right record `Rⱼ`.
    pub right_fid: u32,
    /// Field similarity `simf`.
    pub sim: f64,
}

/// Which bound derivation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Verbatim Algorithm 1: *multiple fields* are resolved on the `Rᵢ`
    /// side only; the upper set keeps the max-similarity pair per left
    /// field, the lower set the min. Fast, but the "lower bound" is not
    /// sound when right-side fields are contested (see DESIGN.md), so an
    /// `up == low` short-circuit can mis-estimate `Sim`.
    Paper,
    /// Sound bounds (the default): upper = min(Σ per-left-field max,
    /// Σ per-right-field max) — both dominate any one-to-one matching —
    /// and lower = weight of the greedy maximal matching, which is a
    /// feasible matching. `up == low` then *guarantees* `Sim` exactly.
    #[default]
    Sound,
}

/// Upper and lower bounds of `Sim(Rᵢ, Rⱼ)` (Equations 3–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// `Up(Rᵢ, Rⱼ)`.
    pub up: f64,
    /// `Low(Rᵢ, Rⱼ)`.
    pub low: f64,
}

impl Bounds {
    /// True when the bounds pinch: the record similarity is decided
    /// without verification (`Up = Low` case of §III-B1).
    pub fn is_exact(&self) -> bool {
        (self.up - self.low).abs() < 1e-9
    }
}

/// Reduces a `(rid₁, rid₂)` index group to the refined field set `𝒱′ᵢⱼ`:
/// for each field pair, only the value pair with maximum similarity
/// survives (Algorithm 1 lines 6–8).
///
/// `group` must be sorted by similarity descending (the index order), so
/// the first occurrence of each `(fid, fid)` key is its maximum; the
/// output preserves that descending order.
pub fn refined_field_set(group: &[ValuePair]) -> Vec<FieldPairSim> {
    let mut out: Vec<FieldPairSim> = Vec::with_capacity(group.len().min(16));
    refined_field_set_into(group, &mut out);
    out
}

/// `refined_field_set` into a caller buffer: `out` is cleared and
/// refilled, so a reused buffer makes the hottest candidate-generation
/// loop allocation-free.
pub fn refined_field_set_into(group: &[ValuePair], out: &mut Vec<FieldPairSim>) {
    out.clear();
    // Hybrid dedupe: linear scan for the common small groups (index groups
    // typically hold a handful of entries — this is the hottest loop of
    // candidate generation), hash set beyond that.
    if group.len() <= 64 {
        for p in group {
            debug_assert!(p.a.rid < p.b.rid, "group entries must be normalized");
            if !out
                .iter()
                .any(|q| q.left_fid == p.a.fid && q.right_fid == p.b.fid)
            {
                out.push(FieldPairSim {
                    left_fid: p.a.fid,
                    right_fid: p.b.fid,
                    sim: p.sim,
                });
            }
        }
    } else {
        let mut seen: FxHashMap<(u32, u32), ()> = FxHashMap::default();
        for p in group {
            debug_assert!(p.a.rid < p.b.rid, "group entries must be normalized");
            if seen.insert((p.a.fid, p.b.fid), ()).is_none() {
                out.push(FieldPairSim {
                    left_fid: p.a.fid,
                    right_fid: p.b.fid,
                    sim: p.sim,
                });
            }
        }
    }
    debug_assert!(
        out.windows(2).all(|w| w[0].sim >= w[1].sim - 1e-12),
        "refined set must stay similarity-descending"
    );
}

/// Computes `Up` / `Low` from a refined field set and the two record sizes
/// (field counts `|Rᵢ|`, `|Rⱼ|`).
pub fn compute_bounds(
    refined: &[FieldPairSim],
    size_i: usize,
    size_j: usize,
    mode: BoundMode,
) -> Bounds {
    let denom = size_i.min(size_j).max(1) as f64;
    match mode {
        BoundMode::Paper => {
            // Upper set: max-sim pair per left field; lower set: min-sim
            // pair per left field. `refined` is sim-descending, so first
            // hit = max, last hit = min.
            let mut max_of: FxHashMap<u32, f64> = FxHashMap::default();
            let mut min_of: FxHashMap<u32, f64> = FxHashMap::default();
            for p in refined {
                max_of.entry(p.left_fid).or_insert(p.sim);
                min_of.insert(p.left_fid, p.sim);
            }
            let up: f64 = max_of.values().sum();
            let low: f64 = min_of.values().sum();
            Bounds {
                up: up / denom,
                low: low / denom,
            }
        }
        BoundMode::Sound => {
            // Single allocation-light pass. `refined` is sim-descending,
            // so the *first* occurrence of a fid is its per-field max, and
            // greedily taking conflict-free pairs in this order is a valid
            // maximal matching (the sound lower bound).
            let mut seen_l: Vec<u32> = Vec::with_capacity(refined.len());
            let mut seen_r: Vec<u32> = Vec::with_capacity(refined.len());
            let mut used_l: Vec<u32> = Vec::with_capacity(refined.len());
            let mut used_r: Vec<u32> = Vec::with_capacity(refined.len());
            let (mut up_left, mut up_right, mut low) = (0.0f64, 0.0f64, 0.0f64);
            for p in refined {
                if !seen_l.contains(&p.left_fid) {
                    seen_l.push(p.left_fid);
                    up_left += p.sim;
                }
                if !seen_r.contains(&p.right_fid) {
                    seen_r.push(p.right_fid);
                    up_right += p.sim;
                }
                if p.sim > 0.0 && !used_l.contains(&p.left_fid) && !used_r.contains(&p.right_fid) {
                    used_l.push(p.left_fid);
                    used_r.push(p.right_fid);
                    low += p.sim;
                }
            }
            Bounds {
                up: up_left.min(up_right) / denom,
                low: low / denom,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_matching::{brute_force_matching, BipartiteGraph};
    use hera_types::Label;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn vp(r1: u32, f1: u32, r2: u32, f2: u32, sim: f64) -> ValuePair {
        ValuePair {
            a: Label::new(r1, f1, 0),
            b: Label::new(r2, f2, 0),
            sim,
        }
    }

    #[test]
    fn refined_keeps_max_per_field_pair() {
        // Two value pairs for field pair (5,5): 1.0 and 0.8.
        let group = vec![
            vp(1, 5, 2, 5, 1.0),
            vp(1, 3, 2, 2, 0.9),
            vp(1, 5, 2, 5, 0.8),
        ];
        let refined = refined_field_set(&group);
        assert_eq!(refined.len(), 2);
        assert_eq!(refined[0].sim, 1.0);
        assert_eq!(refined[1].sim, 0.9);
    }

    #[test]
    fn paper_example_bounds() {
        // §III-B1 example: R1=r1⊕r6 (6 fields), R2=r2⊕r4 (6 fields),
        // refined pairs: (f2,f4,0.37), (f3,f1,0.33), (f3,f2,1.0),
        // (f4,f3,1.0), (f5,f5,1.0). f3 is the only multiple field.
        let group = vec![
            vp(1, 3, 2, 2, 1.0),
            vp(1, 4, 2, 3, 1.0),
            vp(1, 5, 2, 5, 1.0),
            vp(1, 2, 2, 4, 0.37),
            vp(1, 3, 2, 1, 0.33),
        ];
        let refined = refined_field_set(&group);
        let b = compute_bounds(&refined, 6, 6, BoundMode::Paper);
        // Up = (0.37+1+1+1)/6 = 0.561..., Low = (0.37+0.33+1+1)/6 = 0.45
        assert!((b.up - 3.37 / 6.0).abs() < 1e-9, "up {}", b.up);
        assert!((b.low - 2.70 / 6.0).abs() < 1e-9, "low {}", b.low);
        assert!(!b.is_exact());
        // Sound mode agrees here (right side uncontested):
        let s = compute_bounds(&refined, 6, 6, BoundMode::Sound);
        assert!((s.up - 3.37 / 6.0).abs() < 1e-9);
        // Greedy matching picks f3→f2 (1.0), leaving f3→f1 unmatched:
        // low = (1+1+1+0.37)/6 = up → exact!
        assert!((s.low - 3.37 / 6.0).abs() < 1e-9);
        assert!(s.is_exact());
    }

    #[test]
    fn example4_no_multiple_fields() {
        // (r4, r6): three uncontested pairs, sims 1, 1, 0.9; |r4|=|r6|=5.
        let group = vec![
            vp(4, 2, 6, 2, 1.0),
            vp(4, 3, 6, 3, 1.0),
            vp(4, 4, 6, 4, 0.9),
        ];
        let refined = refined_field_set(&group);
        for mode in [BoundMode::Paper, BoundMode::Sound] {
            let b = compute_bounds(&refined, 5, 5, mode);
            assert!((b.up - 2.9 / 5.0).abs() < 1e-9);
            assert!(b.is_exact(), "{mode:?}");
        }
    }

    #[test]
    fn paper_lower_bound_unsound_case() {
        // Two left fields contending for one right field: a matching can
        // take only one (best = 0.9), but the paper's lower set keeps both
        // pairs (min per LEFT field) → low = 1.7/2 > true Sim.
        let group = vec![vp(1, 0, 2, 0, 0.9), vp(1, 1, 2, 0, 0.8)];
        let refined = refined_field_set(&group);
        let paper = compute_bounds(&refined, 2, 2, BoundMode::Paper);
        assert!(paper.is_exact()); // claims exactness...
        assert!((paper.up - 1.7 / 2.0).abs() < 1e-9); // ...at the wrong value
        let sound = compute_bounds(&refined, 2, 2, BoundMode::Sound);
        assert!((sound.up - 0.9 / 2.0).abs() < 1e-9); // right-side cap
        assert!((sound.low - 0.9 / 2.0).abs() < 1e-9);
        assert!(sound.is_exact()); // exact at the *correct* value
    }

    #[test]
    fn refined_hybrid_paths_agree() {
        // Group larger than the 64-entry linear-scan cutoff must produce
        // the same refined set through the hash-based path as a small
        // group does through the linear path.
        let mut big: Vec<ValuePair> = Vec::new();
        for k in 0..90u32 {
            // 30 distinct field pairs, 3 value pairs each, sims desc.
            let fid = k % 30;
            let sim = 1.0 - (k / 30) as f64 * 0.1;
            big.push(vp(1, fid, 2, fid, sim));
        }
        big.sort_by(|a, b| b.sim.partial_cmp(&a.sim).unwrap());
        let refined_big = refined_field_set(&big);
        assert_eq!(refined_big.len(), 30);
        assert!(refined_big.iter().all(|p| (p.sim - 1.0).abs() < 1e-12));

        // The same logical content trimmed under the cutoff.
        let small: Vec<ValuePair> = big.iter().take(60).copied().collect();
        let refined_small = refined_field_set(&small);
        assert_eq!(refined_small.len(), 30);
        assert_eq!(refined_big, refined_small);
    }

    #[test]
    fn empty_group() {
        let b = compute_bounds(&[], 3, 4, BoundMode::Sound);
        assert_eq!(b.up, 0.0);
        assert_eq!(b.low, 0.0);
        assert!(b.is_exact());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]
        /// Sound bounds must bracket the true maximum-matching similarity,
        /// and the paper's upper bound must dominate it too.
        #[test]
        fn sound_bounds_bracket_truth(seed in any::<u64>(), n in 0usize..10) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut group = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n {
                let f1 = rng.gen_range(0..4u32);
                let f2 = rng.gen_range(0..4u32);
                if seen.insert((f1, f2)) {
                    group.push(vp(1, f1, 2, f2, rng.gen_range(1..=100) as f64 / 100.0));
                }
            }
            group.sort_by(|a, b| b.sim.partial_cmp(&a.sim).unwrap());
            let refined = refined_field_set(&group);
            let (si, sj) = (4usize, 4usize);

            // Ground truth: maximum weight matching over refined pairs.
            let mut g = BipartiteGraph::new();
            for p in &refined {
                g.add_edge(p.left_fid, p.right_fid, p.sim);
            }
            let truth = brute_force_matching(&g).weight / si.min(sj) as f64;

            let sound = compute_bounds(&refined, si, sj, BoundMode::Sound);
            prop_assert!(sound.up + 1e-9 >= truth, "up {} < truth {}", sound.up, truth);
            prop_assert!(sound.low <= truth + 1e-9, "low {} > truth {}", sound.low, truth);
            if sound.is_exact() {
                prop_assert!((sound.up - truth).abs() < 1e-9);
            }

            let paper = compute_bounds(&refined, si, sj, BoundMode::Paper);
            prop_assert!(paper.up + 1e-9 >= truth, "paper up unsound");
        }
    }
}
