//! Inverted q-gram index with prefix filtering.

use rustc_hash::FxHashMap;

/// An inverted index from gram tokens to the distinct values containing
/// them. Exposed publicly so benches can measure candidate generation in
/// isolation.
#[derive(Debug, Default)]
pub struct GramIndex {
    /// token → list of (distinct value index, signature length, token's
    /// position in the value's canonically-ordered signature).
    postings: FxHashMap<u64, Vec<(usize, usize, usize)>>,
}

impl GramIndex {
    /// Inserts a value's (possibly prefix-truncated) signature; `tokens`
    /// are in canonical (rare-first) order starting at position 0.
    pub fn insert(&mut self, value_idx: usize, sig_len: usize, tokens: &[u64]) {
        for (pos, &t) in tokens.iter().enumerate() {
            self.postings
                .entry(t)
                .or_default()
                .push((value_idx, sig_len, pos));
        }
    }

    /// Posting list for a token.
    pub fn postings(&self, token: u64) -> Option<&[(usize, usize, usize)]> {
        self.postings.get(&token).map(|v| v.as_slice())
    }

    /// Number of distinct tokens indexed.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }
}

/// Generates candidate distinct-value index pairs `(i, j)` with `i < j`
/// whose gram signatures could reach Jaccard ≥ ξ.
///
/// With `prefix_filter` on, this is PPJoin-style candidate generation
/// (Xiao et al.): signatures are reordered by ascending global document
/// frequency; only the first `|x| − ⌈ξ·|x|⌉ + 1` tokens are
/// probed/indexed; collisions pass a **length filter**
/// (`ξ·max(|x|,|y|) ≤ min(|x|,|y|)`) and a **positional filter** — at a
/// collision on positions `(i, j)` of the canonical orders, the overlap
/// can reach at most `matched + 1 + min(remaining_x, remaining_y)`, which
/// must meet the Jaccard-equivalent overlap requirement
/// `α = ⌈ξ/(1+ξ)·(|x|+|y|)⌉`. Without `prefix_filter`, any shared gram
/// produces a candidate.
pub fn gram_candidates(sigs: &[Vec<u64>], xi: f64, prefix_filter: bool) -> Vec<(usize, usize)> {
    // Global document frequency per token, for the rare-first canonical
    // order that makes prefixes selective.
    let mut df: FxHashMap<u64, u32> = FxHashMap::default();
    for sig in sigs {
        for &t in sig {
            *df.entry(t).or_insert(0) += 1;
        }
    }

    let mut index = GramIndex::default();
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    // Per-probe accumulator: candidate j → (collisions so far, alive).
    let mut acc: FxHashMap<usize, (u32, bool)> = FxHashMap::default();

    for (x, sig) in sigs.iter().enumerate() {
        if sig.is_empty() {
            continue;
        }
        let x_len = sig.len();
        let probe: Vec<u64> = if prefix_filter {
            // Rare-first order; ties by token for determinism.
            let mut ordered = sig.clone();
            ordered.sort_unstable_by_key(|t| (df[t], *t));
            // Epsilon guards against fp rounding inflating ⌈ξ·|x|⌉ and
            // illegally shrinking the prefix.
            let required = ((xi * x_len as f64) - 1e-9).ceil().max(0.0) as usize;
            let keep = x_len.saturating_sub(required) + 1;
            ordered.truncate(keep.max(1));
            ordered
        } else {
            sig.clone()
        };

        acc.clear();
        for (x_pos, &t) in probe.iter().enumerate() {
            if let Some(list) = index.postings(t) {
                for &(y, y_len, y_pos) in list {
                    if !prefix_filter {
                        acc.entry(y).or_insert((0, true)).0 += 1;
                        continue;
                    }
                    // Length filter.
                    let (lo, hi) = if x_len < y_len {
                        (x_len, y_len)
                    } else {
                        (y_len, x_len)
                    };
                    if (lo as f64) + 1e-9 < xi * hi as f64 {
                        continue;
                    }
                    let slot = acc.entry(y).or_insert((0, true));
                    if !slot.1 {
                        continue;
                    }
                    // Positional filter: best possible total overlap.
                    let alpha = ((xi / (1.0 + xi)) * (x_len + y_len) as f64 - 1e-9)
                        .ceil()
                        .max(1.0) as u32;
                    let remaining = (x_len - x_pos - 1).min(y_len - y_pos - 1) as u32;
                    if slot.0 + 1 + remaining < alpha {
                        slot.1 = false; // dead: can never reach α
                        continue;
                    }
                    slot.0 += 1;
                }
            }
        }
        for (&y, &(hits, alive)) in &acc {
            if hits > 0 && alive {
                candidates.push((y, x));
            }
        }
        index.insert(x, x_len, &probe);
    }
    candidates.sort_unstable();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::text::folded_qgram_set;

    fn run(vals: &[&str], xi: f64, pf: bool) -> Vec<(usize, usize)> {
        let sigs: Vec<Vec<u64>> = vals.iter().map(|s| folded_qgram_set(s, 2)).collect();
        let mut c = gram_candidates(&sigs, xi, pf);
        c.sort_unstable();
        c
    }

    #[test]
    fn identical_values_collide() {
        // distinct list never contains duplicates in practice, but near
        // duplicates must collide.
        let c = run(&["electronic", "electronics"], 0.5, true);
        assert_eq!(c, vec![(0, 1)]);
    }

    #[test]
    fn disjoint_values_do_not_collide() {
        let c = run(&["aaaa", "bbbb"], 0.3, true);
        assert!(c.is_empty());
    }

    #[test]
    fn prefix_filter_reduces_candidates() {
        let vals = ["abcdefgh", "abzzzzzz", "ab", "qrstuvwx"];
        let without = run(&vals, 0.8, false);
        let with = run(&vals, 0.8, true);
        assert!(with.len() <= without.len());
        // Share-a-gram finds (0,1) and (0,2) and (1,2) via "ab"; at ξ=0.8
        // the length filter alone kills (0,2)/(1,2) (len 1 vs 7).
        assert!(without.contains(&(0, 1)));
    }

    #[test]
    fn prefix_filter_is_complete_for_jaccard() {
        use hera_sim::text::{folded_qgram_set, jaccard_of_sets};
        let vals = [
            "2 norman street",
            "2 west norman",
            "bush@gmail",
            "john@gmail",
            "electronic",
            "electronics",
            "manager",
            "product manager",
        ];
        for xi in [0.2, 0.35, 0.5, 0.75, 0.9] {
            let cands = run(&vals, xi, true);
            // Every truly-similar pair must be a candidate.
            for i in 0..vals.len() {
                for j in i + 1..vals.len() {
                    let s = jaccard_of_sets(
                        &folded_qgram_set(vals[i], 2),
                        &folded_qgram_set(vals[j], 2),
                    );
                    if s >= xi {
                        assert!(
                            cands.contains(&(i, j)),
                            "missing candidate ({i},{j}) sim {s} at xi {xi}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_values_are_skipped() {
        let c = run(&["", ""], 0.1, true);
        assert!(c.is_empty());
    }
}
