//! Inverted q-gram index with prefix filtering.

use rustc_hash::FxHashMap;

/// An inverted index from gram tokens to the distinct values containing
/// them. Exposed publicly so benches can measure candidate generation in
/// isolation.
#[derive(Debug, Default)]
pub struct GramIndex {
    /// token → list of (distinct value index, signature length, token's
    /// position in the value's canonically-ordered signature).
    postings: FxHashMap<u64, Vec<(usize, usize, usize)>>,
}

impl GramIndex {
    /// Inserts a value's (possibly prefix-truncated) signature; `tokens`
    /// are in canonical (rare-first) order starting at position 0.
    pub fn insert(&mut self, value_idx: usize, sig_len: usize, tokens: &[u64]) {
        for (pos, &t) in tokens.iter().enumerate() {
            self.postings
                .entry(t)
                .or_default()
                .push((value_idx, sig_len, pos));
        }
    }

    /// Posting list for a token.
    pub fn postings(&self, token: u64) -> Option<&[(usize, usize, usize)]> {
        self.postings.get(&token).map(|v| v.as_slice())
    }

    /// Number of distinct tokens indexed.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }
}

/// Per-probe collision accumulator: maps a previously indexed value `y`
/// to `(collisions so far, alive)`. Two interchangeable implementations;
/// both produce the same candidate **set** (the caller sorts).
trait Accumulator {
    fn begin_probe(&mut self);
    /// The mutable `(hits, alive)` slot for candidate `y`.
    fn slot(&mut self, y: usize) -> &mut (u32, bool);
    /// Pushes every `(y, x)` with `hits > 0 && alive` into `out`.
    fn drain_into(&mut self, x: usize, out: &mut Vec<(usize, usize)>);
}

/// Reference accumulator: a hash map keyed by candidate index (the
/// pre-optimization path, kept for A/B benchmarks and differential
/// tests).
#[derive(Default)]
struct MapAccumulator {
    acc: FxHashMap<usize, (u32, bool)>,
}

impl Accumulator for MapAccumulator {
    fn begin_probe(&mut self) {
        self.acc.clear();
    }

    fn slot(&mut self, y: usize) -> &mut (u32, bool) {
        self.acc.entry(y).or_insert((0, true))
    }

    fn drain_into(&mut self, x: usize, out: &mut Vec<(usize, usize)>) {
        for (&y, &(hits, alive)) in &self.acc {
            if hits > 0 && alive {
                out.push((y, x));
            }
        }
    }
}

/// Dense epoch-stamped accumulator: per-candidate state lives in a flat
/// array indexed by value id and is invalidated in O(1) per probe by
/// bumping the epoch, so the hot posting-list loop does plain array
/// indexing instead of hashing. A touched-list makes draining
/// proportional to the candidates actually hit.
struct DenseAccumulator {
    epoch: Vec<u32>,
    state: Vec<(u32, bool)>,
    touched: Vec<usize>,
    current: u32,
}

impl DenseAccumulator {
    fn new(n: usize) -> Self {
        Self {
            epoch: vec![0; n],
            state: vec![(0, true); n],
            touched: Vec::new(),
            current: 0,
        }
    }
}

impl Accumulator for DenseAccumulator {
    fn begin_probe(&mut self) {
        self.current += 1;
        self.touched.clear();
    }

    fn slot(&mut self, y: usize) -> &mut (u32, bool) {
        if self.epoch[y] != self.current {
            self.epoch[y] = self.current;
            self.state[y] = (0, true);
            self.touched.push(y);
        }
        &mut self.state[y]
    }

    fn drain_into(&mut self, x: usize, out: &mut Vec<(usize, usize)>) {
        for &y in &self.touched {
            let (hits, alive) = self.state[y];
            if hits > 0 && alive {
                out.push((y, x));
            }
        }
    }
}

/// Generates candidate distinct-value index pairs `(i, j)` with `i < j`
/// whose gram signatures could reach Jaccard ≥ ξ.
///
/// With `prefix_filter` on, this is PPJoin-style candidate generation
/// (Xiao et al.): signatures are reordered by ascending global document
/// frequency; only the first `|x| − ⌈ξ·|x|⌉ + 1` tokens are
/// probed/indexed; collisions pass a **length filter**
/// (`ξ·max(|x|,|y|) ≤ min(|x|,|y|)`) and a **positional filter** — at a
/// collision on positions `(i, j)` of the canonical orders, the overlap
/// can reach at most `matched + 1 + min(remaining_x, remaining_y)`, which
/// must meet the Jaccard-equivalent overlap requirement
/// `α = ⌈ξ/(1+ξ)·(|x|+|y|)⌉`. Without `prefix_filter`, any shared gram
/// produces a candidate.
///
/// Uses the dense epoch-array accumulator; [`gram_candidates_ref`] is the
/// hash-map reference path with identical output.
pub fn gram_candidates(sigs: &[Vec<u64>], xi: f64, prefix_filter: bool) -> Vec<(usize, usize)> {
    gram_candidates_impl(
        sigs,
        xi,
        prefix_filter,
        &mut DenseAccumulator::new(sigs.len()),
    )
}

/// [`gram_candidates`] through the hash-map reference accumulator — the
/// pre-optimization path, kept so benches can measure the dense
/// accumulator's effect and tests can assert output equality.
pub fn gram_candidates_ref(sigs: &[Vec<u64>], xi: f64, prefix_filter: bool) -> Vec<(usize, usize)> {
    gram_candidates_impl(sigs, xi, prefix_filter, &mut MapAccumulator::default())
}

fn gram_candidates_impl(
    sigs: &[Vec<u64>],
    xi: f64,
    prefix_filter: bool,
    acc: &mut impl Accumulator,
) -> Vec<(usize, usize)> {
    // Global document frequency per token, for the rare-first canonical
    // order that makes prefixes selective.
    let mut df: FxHashMap<u64, u32> = FxHashMap::default();
    for sig in sigs {
        for &t in sig {
            *df.entry(t).or_insert(0) += 1;
        }
    }

    let mut index = GramIndex::default();
    let mut candidates: Vec<(usize, usize)> = Vec::new();

    for (x, sig) in sigs.iter().enumerate() {
        if sig.is_empty() {
            continue;
        }
        let x_len = sig.len();
        let probe: Vec<u64> = if prefix_filter {
            // Rare-first order; ties by token for determinism.
            let mut ordered = sig.clone();
            ordered.sort_unstable_by_key(|t| (df[t], *t));
            // Epsilon guards against fp rounding inflating ⌈ξ·|x|⌉ and
            // illegally shrinking the prefix.
            let required = ((xi * x_len as f64) - 1e-9).ceil().max(0.0) as usize;
            let keep = x_len.saturating_sub(required) + 1;
            ordered.truncate(keep.max(1));
            ordered
        } else {
            sig.clone()
        };

        acc.begin_probe();
        for (x_pos, &t) in probe.iter().enumerate() {
            if let Some(list) = index.postings(t) {
                for &(y, y_len, y_pos) in list {
                    if !prefix_filter {
                        acc.slot(y).0 += 1;
                        continue;
                    }
                    // Length filter.
                    let (lo, hi) = if x_len < y_len {
                        (x_len, y_len)
                    } else {
                        (y_len, x_len)
                    };
                    if (lo as f64) + 1e-9 < xi * hi as f64 {
                        continue;
                    }
                    let slot = acc.slot(y);
                    if !slot.1 {
                        continue;
                    }
                    // Positional filter: best possible total overlap.
                    let alpha = ((xi / (1.0 + xi)) * (x_len + y_len) as f64 - 1e-9)
                        .ceil()
                        .max(1.0) as u32;
                    let remaining = (x_len - x_pos - 1).min(y_len - y_pos - 1) as u32;
                    if slot.0 + 1 + remaining < alpha {
                        slot.1 = false; // dead: can never reach α
                        continue;
                    }
                    slot.0 += 1;
                }
            }
        }
        acc.drain_into(x, &mut candidates);
        index.insert(x, x_len, &probe);
    }
    candidates.sort_unstable();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::text::folded_qgram_set;

    fn run(vals: &[&str], xi: f64, pf: bool) -> Vec<(usize, usize)> {
        let sigs: Vec<Vec<u64>> = vals.iter().map(|s| folded_qgram_set(s, 2)).collect();
        let mut c = gram_candidates(&sigs, xi, pf);
        c.sort_unstable();
        c
    }

    #[test]
    fn identical_values_collide() {
        // distinct list never contains duplicates in practice, but near
        // duplicates must collide.
        let c = run(&["electronic", "electronics"], 0.5, true);
        assert_eq!(c, vec![(0, 1)]);
    }

    #[test]
    fn disjoint_values_do_not_collide() {
        let c = run(&["aaaa", "bbbb"], 0.3, true);
        assert!(c.is_empty());
    }

    #[test]
    fn prefix_filter_reduces_candidates() {
        let vals = ["abcdefgh", "abzzzzzz", "ab", "qrstuvwx"];
        let without = run(&vals, 0.8, false);
        let with = run(&vals, 0.8, true);
        assert!(with.len() <= without.len());
        // Share-a-gram finds (0,1) and (0,2) and (1,2) via "ab"; at ξ=0.8
        // the length filter alone kills (0,2)/(1,2) (len 1 vs 7).
        assert!(without.contains(&(0, 1)));
    }

    #[test]
    fn prefix_filter_is_complete_for_jaccard() {
        use hera_sim::text::{folded_qgram_set, jaccard_of_sets};
        let vals = [
            "2 norman street",
            "2 west norman",
            "bush@gmail",
            "john@gmail",
            "electronic",
            "electronics",
            "manager",
            "product manager",
        ];
        for xi in [0.2, 0.35, 0.5, 0.75, 0.9] {
            let cands = run(&vals, xi, true);
            // Every truly-similar pair must be a candidate.
            for i in 0..vals.len() {
                for j in i + 1..vals.len() {
                    let s = jaccard_of_sets(
                        &folded_qgram_set(vals[i], 2),
                        &folded_qgram_set(vals[j], 2),
                    );
                    if s >= xi {
                        assert!(
                            cands.contains(&(i, j)),
                            "missing candidate ({i},{j}) sim {s} at xi {xi}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_values_are_skipped() {
        let c = run(&["", ""], 0.1, true);
        assert!(c.is_empty());
    }

    #[test]
    fn dense_accumulator_matches_reference() {
        let vals = [
            "2 norman street",
            "2 west norman",
            "electronic",
            "electronics",
            "manager",
            "product manager",
            "bush@gmail",
            "john@gmail",
            "",
            "la",
        ];
        let sigs: Vec<Vec<u64>> = vals.iter().map(|s| folded_qgram_set(s, 2)).collect();
        for xi in [0.1, 0.3, 0.5, 0.75, 0.9] {
            for pf in [true, false] {
                assert_eq!(
                    gram_candidates(&sigs, xi, pf),
                    gram_candidates_ref(&sigs, xi, pf),
                    "xi={xi} pf={pf}"
                );
            }
        }
    }

    proptest::proptest! {
        /// The dense epoch-array accumulator is a pure layout change: its
        /// candidate list must equal the hash-map reference on arbitrary
        /// inputs.
        #[test]
        fn dense_matches_reference_on_random_inputs(
            words in proptest::collection::vec("[a-d ]{0,8}", 0..24),
            xi in 0.05f64..0.95,
            pf_bit in 0usize..2,
        ) {
            let pf = pf_bit == 1;
            let sigs: Vec<Vec<u64>> =
                words.iter().map(|s| folded_qgram_set(s, 2)).collect();
            proptest::prop_assert_eq!(
                gram_candidates(&sigs, xi, pf),
                gram_candidates_ref(&sigs, xi, pf)
            );
        }
    }
}
