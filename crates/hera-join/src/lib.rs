//! Similarity self-join over a dataset's value universe (Definition 7).
//!
//! Given the multiset of values appearing in a record set, the join finds
//! every cross-record pair `(v₁, v₂)` with `simv(v₁, v₂) ≥ ξ`. The result
//! feeds the value-pair index of `hera-index`, and by Proposition 1 it only
//! has to run **once**, offline, before HERA starts iterating.
//!
//! # Strategy
//!
//! A naive self-join is quadratic in the number of values. This crate cuts
//! that down with the standard filter-verify architecture of the
//! similarity-join literature the paper cites \[13\]:
//!
//! 1. **Distinct-value grouping.** Real datasets repeat values constantly
//!    (every record of a movie shares its title). The join runs over
//!    *distinct* values only and expands matches to label pairs afterwards.
//! 2. **Inverted q-gram index with prefix filtering.** Distinct string
//!    renderings are gram-tokenized; tokens are ordered by ascending
//!    document frequency, and only each value's *prefix* (its
//!    `|x| − ⌈ξ·|x|⌉ + 1` rarest tokens) is indexed — any pair with Jaccard
//!    `≥ ξ` must collide on at least one prefix token. A length filter
//!    (`ξ·|x| ≤ |y|`) prunes further.
//! 3. **Numeric sweep.** Numeric values are sorted and paired by a bounded
//!    forward sweep, sound for any metric that is non-increasing in
//!    `|a − b|` (all built-in numeric metrics are).
//! 4. **Verification.** Every surviving candidate is scored with the real
//!    black-box [`ValueSimilarity`]; only `sim ≥ ξ` pairs are emitted.
//!
//! Prefix filtering is **complete** when the verifying string metric is
//! q-gram Jaccard with the same `q` and folding as the index (HERA's
//! default). For other metrics, disable it ([`JoinConfig::prefix_filter`])
//! to fall back to share-a-gram candidate generation, or use
//! [`JoinConfig::all_pairs`] for metric-agnostic exactness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod incremental;
mod inverted;
mod numeric;
mod source;

pub use incremental::IncrementalJoin;
pub use inverted::{gram_candidates, gram_candidates_ref, GramIndex};
pub use source::{CandidateSource, RecordPairSet};

use hera_sim::ValueSimilarity;
use hera_types::{Dataset, Label, Value};
use rustc_hash::FxHashMap;

/// One emitted similar value pair. `a.rid < b.rid` always holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValuePair {
    /// Label of the first value (smaller rid).
    pub a: Label,
    /// Label of the second value (larger rid).
    pub b: Label,
    /// Black-box similarity, `≥ ξ`.
    pub sim: f64,
}

/// Similarity-join configuration.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// Value-similarity threshold ξ (Definition 7).
    pub xi: f64,
    /// Gram length for the inverted index (match the verifying metric's
    /// `q`; the paper uses 2).
    pub q: usize,
    /// Apply Jaccard prefix filtering (exact iff verifying with q-gram
    /// Jaccard at the same `q`; otherwise a recall-lossy speedup).
    pub prefix_filter: bool,
    /// Skip all filtering and verify every distinct-value pair —
    /// metric-agnostic ground truth, quadratic cost.
    pub all_pairs: bool,
    /// Worker threads for candidate verification: `0` auto-detects from
    /// the machine, `1` forces the sequential path. The output is
    /// bit-identical for every setting (candidates are sharded in order
    /// and the final sort's total tie-break fixes the order).
    pub num_threads: usize,
    /// Reject candidates whose 128-bit gram-sketch Jaccard upper bound is
    /// below ξ before running the exact merge-intersection (gram-verified
    /// pairs only). The bound is sound, so the output is bit-identical
    /// with the flag on or off; off is the reference path for A/B
    /// benchmarks.
    pub sketch_prefilter: bool,
    /// Use the dense epoch-array collision accumulator for candidate
    /// generation (identical output; off falls back to the hash-map
    /// reference path for A/B benchmarks).
    pub dense_candidates: bool,
}

impl JoinConfig {
    /// Paper defaults: ξ = 0.5, q = 2, prefix filtering on.
    pub fn new(xi: f64) -> Self {
        assert!((0.0..=1.0).contains(&xi), "xi must be in [0,1]");
        Self {
            xi,
            q: 2,
            prefix_filter: true,
            all_pairs: false,
            num_threads: 0,
            sketch_prefilter: true,
            dense_candidates: true,
        }
    }

    /// Switches to exhaustive verification.
    pub fn exhaustive(mut self) -> Self {
        self.all_pairs = true;
        self
    }

    /// Disables the prefix filter but keeps share-a-gram candidates.
    pub fn without_prefix_filter(mut self) -> Self {
        self.prefix_filter = false;
        self
    }

    /// Sets the verification worker count (`0` = auto-detect).
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Disables the gram-sketch verification prefilter (reference path;
    /// output is identical either way).
    pub fn without_sketch_prefilter(mut self) -> Self {
        self.sketch_prefilter = false;
        self
    }

    /// Uses the hash-map reference accumulator for candidate generation
    /// (output is identical either way).
    pub fn with_reference_candidates(mut self) -> Self {
        self.dense_candidates = false;
        self
    }
}

/// The similarity self-join operator.
pub struct SimilarityJoin<'m> {
    config: JoinConfig,
    metric: &'m dyn ValueSimilarity,
    recorder: hera_obs::Recorder,
}

impl<'m> SimilarityJoin<'m> {
    /// Creates a join with the given config and verifying metric.
    pub fn new(config: JoinConfig, metric: &'m dyn ValueSimilarity) -> Self {
        Self {
            config,
            metric,
            recorder: hera_obs::Recorder::disabled(),
        }
    }

    /// Attaches a journal recorder; the join emits a `join` span with its
    /// funnel counters (values → distinct → candidates → pairs).
    pub fn with_recorder(mut self, recorder: hera_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Joins all values of a dataset: every field of every record
    /// contributes one labeled value (`vid = 0`, base records).
    pub fn join_dataset(&self, ds: &Dataset) -> Vec<ValuePair> {
        let mut values: Vec<(Label, Value)> = Vec::new();
        for rec in ds.iter() {
            for (fid, v) in rec.values.iter().enumerate() {
                if !v.is_null() {
                    values.push((Label::new(rec.id.raw(), fid as u32, 0), v.clone()));
                }
            }
        }
        self.join(&values)
    }

    /// Joins a dataset through an explicit [`CandidateSource`]:
    /// [`CandidateSource::AllPairs`] is exactly [`Self::join_dataset`];
    /// [`CandidateSource::Blocked`] restricts the output to value pairs
    /// whose records are in the allowed set, with bit-identical
    /// similarities and the same output order (the blocked stream is a
    /// subsequence of the all-pairs stream).
    pub fn join_dataset_with(&self, ds: &Dataset, source: &CandidateSource) -> Vec<ValuePair> {
        match source {
            CandidateSource::AllPairs => self.join_dataset(ds),
            CandidateSource::Blocked(allowed) => self.join_blocked(ds, allowed),
        }
    }

    /// Record-pair-driven join: compares the field values of each allowed
    /// record pair directly instead of generating candidates from the
    /// value universe. For the sub-quadratic pair sets a blocker emits
    /// this skips the (quadratic-prone) gram candidate generation
    /// entirely, which is where the all-pairs join spends most of its
    /// time at scale.
    ///
    /// Scoring replicates the all-pairs verification exactly — numeric
    /// pairs go through the metric, gram-compatible string pairs through
    /// the shared gram signatures (with the sound sketch prefilter), and
    /// everything else through the black-box metric — so every emitted
    /// pair carries the same similarity the all-pairs join would have
    /// produced for it.
    fn join_blocked(&self, ds: &Dataset, allowed: &RecordPairSet) -> Vec<ValuePair> {
        let t0 = std::time::Instant::now();
        // 1. Intern distinct values; remember each record's labeled slots.
        let mut index_of: FxHashMap<&Value, u32> = FxHashMap::default();
        let mut distinct: Vec<&Value> = Vec::new();
        let mut slots: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ds.len()]; // (fid, value index)
        let mut total_values = 0usize;
        for rec in ds.iter() {
            for (fid, v) in rec.values.iter().enumerate() {
                if v.is_null() {
                    continue;
                }
                total_values += 1;
                let vi = *index_of.entry(v).or_insert_with(|| {
                    distinct.push(v);
                    (distinct.len() - 1) as u32
                });
                slots[rec.id.raw() as usize].push((fid as u32, vi));
            }
        }

        // 2. Shared signatures, exactly as the all-pairs verifier uses.
        let fast_grams = self.metric.qgram_compatible() == Some(self.config.q);
        let sketch_prefilter = fast_grams && self.config.sketch_prefilter;
        let (sigs, sketches): (Vec<Vec<u64>>, Vec<hera_sim::text::GramSketch>) = if fast_grams {
            let sigs: Vec<Vec<u64>> = distinct
                .iter()
                .map(|v| hera_sim::text::folded_qgram_set(&v.to_text(), self.config.q))
                .collect();
            let sketches = sigs
                .iter()
                .map(|s| hera_sim::text::GramSketch::of(s))
                .collect();
            (sigs, sketches)
        } else {
            (Vec::new(), Vec::new())
        };
        let numeric: Vec<bool> = distinct.iter().map(|v| v.as_number().is_some()).collect();

        // 3. Verify the field cross-product of every allowed record pair.
        // Each (label, label) pair is visited at most once, so no dedup is
        // needed; the final sort fixes the global order.
        let verify_chunk = |chunk: &[(u32, u32)],
                            out: &mut Vec<ValuePair>,
                            comparisons: &mut u64| {
            for &(ra, rb) in chunk {
                if ra as usize >= slots.len() || rb as usize >= slots.len() {
                    continue; // foreign rid in the pair set: nothing to compare
                }
                for &(fa, ia) in &slots[ra as usize] {
                    for &(fb, ib) in &slots[rb as usize] {
                        *comparisons += 1;
                        let (va, vb) = (distinct[ia as usize], distinct[ib as usize]);
                        let s = if fast_grams && !(numeric[ia as usize] && numeric[ib as usize]) {
                            let (sa, sb) = (&sigs[ia as usize], &sigs[ib as usize]);
                            if sketch_prefilter
                                && sketches[ia as usize].jaccard_upper_bound(
                                    sa.len(),
                                    sketches[ib as usize],
                                    sb.len(),
                                ) < self.config.xi
                            {
                                continue;
                            }
                            hera_sim::text::jaccard_of_sets(sa, sb)
                        } else {
                            self.metric.sim(va, vb)
                        };
                        if s >= self.config.xi {
                            push_pair(out, Label::new(ra, fa, 0), Label::new(rb, fb, 0), s);
                        }
                    }
                }
            }
        };
        let mut out: Vec<ValuePair> = Vec::new();
        let mut comparisons = 0u64;
        let threads = effective_threads(self.config.num_threads);
        let pairs = allowed.as_slice();
        if pairs.len() >= MIN_PARALLEL_CANDIDATES && threads > 1 {
            let chunk_size = pairs.len().div_ceil(threads);
            let results: Vec<(Vec<ValuePair>, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            let mut n = 0u64;
                            verify_chunk(chunk, &mut local, &mut n);
                            (local, n)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("blocked join thread panicked"))
                    .collect()
            });
            for (mut part, n) in results {
                out.append(&mut part);
                comparisons += n;
            }
        } else {
            verify_chunk(pairs, &mut out, &mut comparisons);
        }

        // Same deterministic order as the all-pairs join.
        out.sort_unstable_by(|x, y| {
            (x.a.rid, x.b.rid)
                .cmp(&(y.a.rid, y.b.rid))
                .then_with(|| {
                    y.sim
                        .partial_cmp(&x.sim)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        // Same span name and counter set as the all-pairs path, so the
        // funnel reads uniformly: `candidates` is the number of value
        // comparisons attempted (all totals are order-independent, hence
        // part of the deterministic core journal).
        self.recorder.span(
            "join",
            None,
            &[
                ("values", total_values as i64),
                ("distinct", distinct.len() as i64),
                ("candidates", comparisons as i64),
                ("pairs", out.len() as i64),
            ],
        );
        self.recorder.timing("join", None, t0.elapsed());
        out
    }

    /// Joins an explicit labeled value collection.
    pub fn join(&self, values: &[(Label, Value)]) -> Vec<ValuePair> {
        let t0 = std::time::Instant::now();
        // 1. Group labels by distinct value.
        let mut groups: FxHashMap<&Value, Vec<Label>> = FxHashMap::default();
        for (label, v) in values {
            if !v.is_null() {
                groups.entry(v).or_default().push(*label);
            }
        }
        let mut distinct: Vec<(&Value, Vec<Label>)> = groups.into_iter().collect();
        // Deterministic order.
        distinct.sort_unstable_by(|a, b| a.0.cmp(b.0));

        let mut out: Vec<ValuePair> = Vec::new();

        // 2. Pairs *within* one distinct-value group: sim(v, v).
        for (v, labels) in &distinct {
            let s = self.metric.sim(v, v);
            if s >= self.config.xi {
                for (i, &la) in labels.iter().enumerate() {
                    for &lb in &labels[i + 1..] {
                        push_pair(&mut out, la, lb, s);
                    }
                }
            }
        }

        // 3. Candidate pairs *across* distinct values. Gram signatures are
        // computed once and reused for candidate generation *and* (when
        // the metric declares gram compatibility) verification.
        let mut sigs: Vec<Vec<u64>> = Vec::new();
        let mut sketches: Vec<hera_sim::text::GramSketch> = Vec::new();
        let candidates = if self.config.all_pairs {
            let n = distinct.len();
            let mut c = Vec::with_capacity(n * n / 2);
            for i in 0..n {
                for j in i + 1..n {
                    c.push((i, j));
                }
            }
            c
        } else {
            sigs = distinct
                .iter()
                .map(|(v, _)| hera_sim::text::folded_qgram_set(&v.to_text(), self.config.q))
                .collect();
            sketches = sigs
                .iter()
                .map(|s| hera_sim::text::GramSketch::of(s))
                .collect();
            let gram_cands = if self.config.dense_candidates {
                inverted::gram_candidates
            } else {
                inverted::gram_candidates_ref
            };
            let mut c = gram_cands(&sigs, self.config.xi, self.config.prefix_filter);
            c.extend(numeric::numeric_candidates(
                &distinct,
                self.metric,
                self.config.xi,
            ));
            c.sort_unstable();
            c.dedup();
            c
        };

        // Signature-based fast verification applies to non-numeric pairs
        // when the metric's string leg is q-gram Jaccard at our q.
        let fast_grams =
            !self.config.all_pairs && self.metric.qgram_compatible() == Some(self.config.q);
        let sketch_prefilter = fast_grams && self.config.sketch_prefilter;

        // 4. Verify with the black box and expand to label pairs. Large
        // candidate sets fan out across threads (verification is pure:
        // each candidate reads shared immutable state and emits pairs
        // into a thread-local buffer; the final global sort makes output
        // order independent of the split).
        let verify_chunk = |chunk: &[(usize, usize)], out: &mut Vec<ValuePair>| {
            for &(i, j) in chunk {
                let (va, la) = (&distinct[i].0, &distinct[i].1);
                let (vb, lb) = (&distinct[j].0, &distinct[j].1);
                let both_numeric = va.as_number().is_some() && vb.as_number().is_some();
                let s = if fast_grams && !both_numeric {
                    // Sound sketch upper bound: a reject here can never
                    // drop a pair the exact intersection would keep.
                    if sketch_prefilter
                        && sketches[i].jaccard_upper_bound(
                            sigs[i].len(),
                            sketches[j],
                            sigs[j].len(),
                        ) < self.config.xi
                    {
                        continue;
                    }
                    hera_sim::text::jaccard_of_sets(&sigs[i], &sigs[j])
                } else {
                    self.metric.sim(va, vb)
                };
                if s >= self.config.xi {
                    for &a in la.iter() {
                        for &b in lb.iter() {
                            push_pair(out, a, b, s);
                        }
                    }
                }
            }
        };
        let threads = effective_threads(self.config.num_threads);
        if candidates.len() >= MIN_PARALLEL_CANDIDATES && threads > 1 {
            let chunk_size = candidates.len().div_ceil(threads);
            let results: Vec<Vec<ValuePair>> = std::thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            verify_chunk(chunk, &mut local);
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("join verification thread panicked"))
                    .collect()
            });
            // Shards are appended in candidate order; the sort below then
            // makes the output independent of the shard boundaries.
            for mut part in results {
                out.append(&mut part);
            }
        } else {
            verify_chunk(&candidates, &mut out);
        }

        // Deterministic output order: (rid1, rid2, sim desc, labels).
        out.sort_unstable_by(|x, y| {
            (x.a.rid, x.b.rid)
                .cmp(&(y.a.rid, y.b.rid))
                .then_with(|| {
                    y.sim
                        .partial_cmp(&x.sim)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
        });
        // The funnel counters are all order-independent totals, so this
        // span is part of the deterministic core journal; wall-clock is a
        // separate diagnostic line.
        self.recorder.span(
            "join",
            None,
            &[
                ("values", values.len() as i64),
                ("distinct", distinct.len() as i64),
                ("candidates", candidates.len() as i64),
                ("pairs", out.len() as i64),
            ],
        );
        self.recorder.timing("join", None, t0.elapsed());
        out
    }
}

/// Below this many candidates the sequential path wins (thread spawn and
/// shard merge overhead dominate sub-millisecond verification work).
const MIN_PARALLEL_CANDIDATES: usize = 1024;

/// Resolves a requested worker count: `0` auto-detects from the machine.
fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Normalizes (smaller rid first) and drops intra-record pairs.
fn push_pair(out: &mut Vec<ValuePair>, a: Label, b: Label, sim: f64) {
    match a.rid.cmp(&b.rid) {
        std::cmp::Ordering::Equal => {} // same record: excluded by Def. 6
        std::cmp::Ordering::Less => out.push(ValuePair { a, b, sim }),
        std::cmp::Ordering::Greater => out.push(ValuePair { a: b, b: a, sim }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::TypeDispatch;
    use hera_types::motivating_example;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn labeled(vals: &[(u32, u32, Value)]) -> Vec<(Label, Value)> {
        vals.iter()
            .map(|(rid, fid, v)| (Label::new(*rid, *fid, 0), v.clone()))
            .collect()
    }

    #[test]
    fn identical_strings_pair_up() {
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(0.5), &metric);
        let vals = labeled(&[
            (0, 0, Value::from("bush@gmail")),
            (1, 0, Value::from("bush@gmail")),
            (2, 0, Value::from("unrelated")),
        ]);
        let pairs = join.join(&vals);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].a.rid, 0);
        assert_eq!(pairs[0].b.rid, 1);
        assert_eq!(pairs[0].sim, 1.0);
    }

    #[test]
    fn intra_record_pairs_excluded() {
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(0.5), &metric);
        let vals = labeled(&[
            (0, 0, Value::from("same")),
            (0, 1, Value::from("same")), // same record!
        ]);
        assert!(join.join(&vals).is_empty());
    }

    #[test]
    fn threshold_respected() {
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(0.95), &metric);
        let vals = labeled(&[
            (0, 0, Value::from("Electronic")),
            (1, 0, Value::from("electronics")), // sim 0.9 < 0.95
        ]);
        assert!(join.join(&vals).is_empty());
        let join = SimilarityJoin::new(JoinConfig::new(0.9), &metric);
        let pairs = join.join(&vals);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].sim - 0.9).abs() < 1e-9);
    }

    #[test]
    fn prefix_filter_matches_exhaustive_on_motivating_example() {
        let metric = TypeDispatch::paper_default();
        let ds = motivating_example();
        for xi in [0.3, 0.5, 0.7, 0.9] {
            let fast = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
            let slow =
                SimilarityJoin::new(JoinConfig::new(xi).exhaustive(), &metric).join_dataset(&ds);
            assert_eq!(fast.len(), slow.len(), "xi={xi}");
            assert_eq!(fast, slow, "xi={xi}");
        }
    }

    #[test]
    fn numeric_values_join() {
        let metric = TypeDispatch::paper_default()
            .with_numeric_metric(std::sync::Arc::new(hera_sim::NumericProximity::new(5.0)));
        let join = SimilarityJoin::new(JoinConfig::new(0.5), &metric);
        let vals = labeled(&[
            (0, 0, Value::from(1984i64)),
            (1, 0, Value::from(1985i64)), // sim 0.8
            (2, 0, Value::from(1999i64)), // too far
        ]);
        let pairs = join.join(&vals);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].sim - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mixed_string_number_pair() {
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(0.9), &metric);
        let vals = labeled(&[(0, 0, Value::from("1984")), (1, 0, Value::from(1984i64))]);
        let pairs = join.join(&vals);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].sim, 1.0);
    }

    #[test]
    fn output_order_is_rid_then_sim_desc() {
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(0.3), &metric);
        let vals = labeled(&[
            (0, 0, Value::from("abcdef")),
            (1, 0, Value::from("abcdef")),
            (1, 1, Value::from("abcdxx")),
            (2, 0, Value::from("abcdef")),
        ]);
        let pairs = join.join(&vals);
        // Groups: (0,1) then (0,2) then (1,2); within (0,1) sim desc.
        let rids: Vec<(u32, u32)> = pairs.iter().map(|p| (p.a.rid, p.b.rid)).collect();
        let mut sorted = rids.clone();
        sorted.sort_unstable();
        assert_eq!(rids, sorted);
        for w in pairs.windows(2) {
            if (w[0].a.rid, w[0].b.rid) == (w[1].a.rid, w[1].b.rid) {
                assert!(w[0].sim >= w[1].sim);
            }
        }
    }

    #[test]
    fn nulls_never_join() {
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(0.0), &metric);
        let vals = labeled(&[(0, 0, Value::Null), (1, 0, Value::Null)]);
        assert!(join.join(&vals).is_empty());
    }

    #[test]
    fn optimization_flags_do_not_change_output() {
        let metric = TypeDispatch::paper_default();
        let ds = motivating_example();
        for xi in [0.3, 0.5, 0.7, 0.9] {
            let default = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
            let no_sketch =
                SimilarityJoin::new(JoinConfig::new(xi).without_sketch_prefilter(), &metric)
                    .join_dataset(&ds);
            let ref_cands =
                SimilarityJoin::new(JoinConfig::new(xi).with_reference_candidates(), &metric)
                    .join_dataset(&ds);
            let both_off = SimilarityJoin::new(
                JoinConfig::new(xi)
                    .without_sketch_prefilter()
                    .with_reference_candidates(),
                &metric,
            )
            .join_dataset(&ds);
            assert_eq!(default, no_sketch, "xi={xi}");
            assert_eq!(default, ref_cands, "xi={xi}");
            assert_eq!(default, both_off, "xi={xi}");
        }
    }

    #[test]
    fn blocked_join_is_allpairs_restriction() {
        let metric = TypeDispatch::paper_default();
        let ds = motivating_example();
        let n = ds.len() as u32;
        for xi in [0.3, 0.5, 0.7] {
            let join = SimilarityJoin::new(JoinConfig::new(xi), &metric);
            let full = join.join_dataset(&ds);
            // Full pair set: blocked output must equal the all-pairs output.
            let mut everything = Vec::new();
            for a in 0..n {
                for b in a + 1..n {
                    everything.push((a, b));
                }
            }
            let all = join.join_dataset_with(
                &ds,
                &CandidateSource::Blocked(RecordPairSet::from_pairs(everything)),
            );
            assert_eq!(all, full, "xi={xi}");
            // Partial pair set: exactly the restriction, sims bit-equal.
            let some = RecordPairSet::from_pairs(vec![(0, 1), (2, 3)]);
            let blocked = join.join_dataset_with(&ds, &CandidateSource::Blocked(some.clone()));
            let expected: Vec<ValuePair> = full
                .iter()
                .copied()
                .filter(|p| some.contains(p.a.rid, p.b.rid))
                .collect();
            assert_eq!(blocked, expected, "xi={xi}");
        }
    }

    #[test]
    fn blocked_join_empty_set_yields_nothing() {
        let metric = TypeDispatch::paper_default();
        let ds = motivating_example();
        let join = SimilarityJoin::new(JoinConfig::new(0.3), &metric);
        let out = join.join_dataset_with(&ds, &CandidateSource::Blocked(RecordPairSet::default()));
        assert!(out.is_empty());
    }

    #[test]
    fn allpairs_source_is_join_dataset() {
        let metric = TypeDispatch::paper_default();
        let ds = motivating_example();
        let join = SimilarityJoin::new(JoinConfig::new(0.5), &metric);
        assert_eq!(
            join.join_dataset_with(&ds, &CandidateSource::AllPairs),
            join.join_dataset(&ds)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The filtered join must equal the exhaustive join when verifying
        /// with the default metric (prefix filter completeness).
        #[test]
        fn filtered_equals_exhaustive(seed in any::<u64>(), xi in 0.1f64..0.95) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let words = ["electronic", "electronics", "manager", "managr",
                         "2 norman street", "2 west norman", "bush@gmail",
                         "john@gmail", "831-432", "247-326", "la"];
            let mut vals = Vec::new();
            for rid in 0..8u32 {
                for fid in 0..3u32 {
                    let w = words[rng.gen_range(0..words.len())];
                    vals.push((Label::new(rid, fid, 0), Value::from(w)));
                }
            }
            let metric = TypeDispatch::paper_default();
            let fast = SimilarityJoin::new(JoinConfig::new(xi), &metric).join(&vals);
            let slow = SimilarityJoin::new(JoinConfig::new(xi).exhaustive(), &metric).join(&vals);
            prop_assert_eq!(fast, slow);
        }

        /// Every emitted pair satisfies the contract.
        #[test]
        fn emitted_pairs_satisfy_contract(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let words = ["aa", "ab", "abc", "abcd", "xyz", "xyzw"];
            let mut vals = Vec::new();
            for rid in 0..6u32 {
                for fid in 0..2u32 {
                    vals.push((Label::new(rid, fid, 0),
                               Value::from(words[rng.gen_range(0..words.len())])));
                }
            }
            let metric = TypeDispatch::paper_default();
            let xi = 0.4;
            for p in SimilarityJoin::new(JoinConfig::new(xi), &metric).join(&vals) {
                prop_assert!(p.a.rid < p.b.rid);
                prop_assert!(p.sim >= xi);
                prop_assert!(p.sim <= 1.0);
            }
        }
    }
}
