//! Incremental similarity join: values arrive one at a time.
//!
//! The batch join (Definition 7) runs once, offline. Streaming entity
//! resolution needs the same result maintained under insertions: when a
//! new record's values arrive, find every existing value within ξ and
//! emit the new index entries. [`IncrementalJoin`] does that with the
//! same gram machinery as the batch join:
//!
//! * string-ish values are probed through an inverted gram index using
//!   the *share-a-gram* rule (complete for q-gram Jaccard at any ξ > 0 —
//!   prefix filtering needs a global frequency order, which shifts as the
//!   stream grows, so it is deliberately not used here);
//! * numeric values are probed through a sorted sweep, sound for metrics
//!   non-increasing in `|a − b|`;
//! * every candidate is verified with the black-box metric — except when
//!   the metric declares [`ValueSimilarity::qgram_compatible`], in which
//!   case non-numeric pairs are scored from gram signatures stored at
//!   registration time, behind the same sound [`GramSketch`] upper-bound
//!   prefilter the batch join uses (bit-identical scores, no
//!   re-tokenization in the verify loop).
//!
//! Labels mutate when records merge (the index relabels its entries);
//! [`IncrementalJoin::relabel`] applies the same remap here so future
//! insertions emit pairs against *current* labels.

use crate::ValuePair;
use hera_sim::text::{folded_qgram_set, jaccard_of_sets, GramSketch};
use hera_sim::ValueSimilarity;
use hera_types::json::Json;
use hera_types::{HeraError, Label, Result, Value};
use rustc_hash::FxHashMap;

struct Entry {
    label: Label,
    value: Value,
    /// Folded gram signature, kept so verification never re-tokenizes.
    sig: Vec<u64>,
    sketch: GramSketch,
    is_num: bool,
}

/// Insert-only similarity join state. Owns its metric (`Arc`) so it can
/// live inside long-running session state.
pub struct IncrementalJoin {
    xi: f64,
    q: usize,
    metric: std::sync::Arc<dyn ValueSimilarity>,
    /// True iff the metric's string leg is exactly q-gram Jaccard at our
    /// gram length — enables signature scoring + the sketch prefilter.
    fast_grams: bool,
    entries: Vec<Entry>,
    /// gram token → entry indices containing it.
    postings: FxHashMap<u64, Vec<usize>>,
    /// entry indices of numeric values, kept sorted by numeric value.
    numeric: Vec<(f64, usize)>,
    /// rid → entry indices (for relabeling after merges).
    by_rid: FxHashMap<u32, Vec<usize>>,
}

impl IncrementalJoin {
    /// Creates an empty incremental join.
    ///
    /// # Panics
    /// Panics unless `0 < xi ≤ 1` (share-a-gram completeness needs a
    /// strictly positive threshold) or `q == 0`.
    pub fn new(xi: f64, q: usize, metric: std::sync::Arc<dyn ValueSimilarity>) -> Self {
        assert!(xi > 0.0 && xi <= 1.0, "xi must be in (0, 1]");
        assert!(q >= 1, "q must be at least 1");
        let fast_grams = metric.qgram_compatible() == Some(q);
        Self {
            xi,
            q,
            metric,
            fast_grams,
            entries: Vec::new(),
            postings: FxHashMap::default(),
            numeric: Vec::new(),
            by_rid: FxHashMap::default(),
        }
    }

    /// Number of values inserted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was inserted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts one labeled value and returns all new similar pairs
    /// against previously inserted values of *other* records, normalized
    /// (`a.rid < b.rid`) and ordered by partner label.
    pub fn insert(&mut self, label: Label, value: Value) -> Vec<ValuePair> {
        self.insert_filtered(label, value, |_| true)
    }

    /// [`IncrementalJoin::insert`] restricted to a candidate-record
    /// filter: only pairs whose partner rid passes `allowed` are scored
    /// and emitted — the hook a blocking stage uses to keep the
    /// incremental join from enumerating the full value universe. The
    /// value is registered either way (it must be probe-able by future
    /// insertions), and an always-true filter is bit-identical to
    /// [`IncrementalJoin::insert`] — same candidates, same scores, same
    /// order.
    pub fn insert_filtered(
        &mut self,
        label: Label,
        value: Value,
        allowed: impl Fn(u32) -> bool,
    ) -> Vec<ValuePair> {
        if value.is_null() {
            return Vec::new();
        }
        let sig = folded_qgram_set(&value.to_text(), self.q);

        // Candidates: share a gram, or numeric neighbor.
        let mut cand: Vec<usize> = Vec::new();
        for &t in &sig {
            if let Some(list) = self.postings.get(&t) {
                cand.extend(list.iter().copied());
            }
        }
        if let Some(x) = value.as_number() {
            // Walk outward from the insertion point while the metric
            // stays above ξ (monotone in distance).
            let pos = self.numeric.partition_point(|&(v, _)| v < x);
            for &(_, i) in self.numeric[pos..].iter() {
                if self.metric.sim(&value, &self.entries[i].value) >= self.xi {
                    cand.push(i);
                } else {
                    break;
                }
            }
            for &(_, i) in self.numeric[..pos].iter().rev() {
                if self.metric.sim(&value, &self.entries[i].value) >= self.xi {
                    cand.push(i);
                } else {
                    break;
                }
            }
        }
        cand.sort_unstable();
        cand.dedup();

        let value_num = value.as_number().is_some();
        let sketch = GramSketch::of(&sig);
        let mut out = Vec::new();
        for i in cand {
            if self.entries[i].label.rid == label.rid || !allowed(self.entries[i].label.rid) {
                continue;
            }
            if let Some(p) = self.verify(label, &value, value_num, &sig, sketch, i) {
                out.push(p);
            }
        }
        out.sort_unstable_by_key(|x| (x.a, x.b));

        self.register(label, value, &sig);
        out
    }

    /// [`IncrementalJoin::insert`] restricted to an explicit candidate
    /// *record* list: the value is verified against every stored value of
    /// the `rids` given (the blocked streaming path — candidates come
    /// from the blocker, so the inverted gram index and numeric sweep are
    /// not probed at all, making insert cost proportional to the
    /// co-blocked neighborhood instead of the live-value universe).
    ///
    /// Like the batch blocked join, this verifies the allowed cross
    /// product directly with the same dispatch as
    /// [`IncrementalJoin::insert`], so for the default gram-compatible
    /// metric it emits exactly the [`IncrementalJoin::insert_filtered`]
    /// pairs for the same record set (share-a-gram candidate generation
    /// is complete for q-gram Jaccard); an exotic metric scoring
    /// zero-gram-overlap string pairs above ξ can only gain pairs here,
    /// never lose one. Entries of `label`'s own record never pair, and
    /// the value is registered for future probes either way.
    pub fn insert_among(&mut self, label: Label, value: Value, rids: &[u32]) -> Vec<ValuePair> {
        if value.is_null() {
            return Vec::new();
        }
        let sig = folded_qgram_set(&value.to_text(), self.q);
        let value_num = value.as_number().is_some();
        let sketch = GramSketch::of(&sig);

        let mut cand: Vec<usize> = Vec::new();
        for rid in rids {
            if let Some(list) = self.by_rid.get(rid) {
                cand.extend(list.iter().copied());
            }
        }
        cand.sort_unstable();
        cand.dedup();

        let mut out = Vec::new();
        for i in cand {
            if self.entries[i].label.rid == label.rid {
                continue;
            }
            if let Some(p) = self.verify(label, &value, value_num, &sig, sketch, i) {
                out.push(p);
            }
        }
        out.sort_unstable_by_key(|x| (x.a, x.b));

        self.register(label, value, &sig);
        out
    }

    /// Scores the incoming value against stored entry `i` — mirror of the
    /// batch join's verify dispatch: gram-compatible non-numeric pairs
    /// score from stored signatures (identical values by the
    /// `qgram_compatible` contract), behind the sound sketch upper bound;
    /// everything else asks the metric. Returns the normalized pair when
    /// the score clears ξ.
    fn verify(
        &self,
        label: Label,
        value: &Value,
        value_num: bool,
        sig: &[u64],
        sketch: GramSketch,
        i: usize,
    ) -> Option<ValuePair> {
        let other = &self.entries[i];
        let s = if self.fast_grams && !(value_num && other.is_num) {
            if sketch.jaccard_upper_bound(sig.len(), other.sketch, other.sig.len()) < self.xi {
                return None;
            }
            jaccard_of_sets(sig, &other.sig)
        } else {
            self.metric.sim(value, &other.value)
        };
        if s < self.xi {
            return None;
        }
        let (a, b) = if label.rid < other.label.rid {
            (label, other.label)
        } else {
            (other.label, label)
        };
        Some(ValuePair { a, b, sim: s })
    }

    /// Registers a value in the probe structures without emitting pairs.
    /// Shared by [`IncrementalJoin::insert`] and snapshot restore, which
    /// replays registration in entry order to rebuild the postings,
    /// numeric sweep, and rid maps bit-identically.
    fn register(&mut self, label: Label, value: Value, sig: &[u64]) {
        let idx = self.entries.len();
        for &t in sig {
            self.postings.entry(t).or_default().push(idx);
        }
        let num = value.as_number();
        if let Some(x) = num {
            let pos = self.numeric.partition_point(|&(v, _)| v < x);
            self.numeric.insert(pos, (x, idx));
        }
        self.by_rid.entry(label.rid).or_default().push(idx);
        self.entries.push(Entry {
            label,
            value,
            sig: sig.to_vec(),
            sketch: GramSketch::of(sig),
            is_num: num.is_some(),
        });
    }

    /// Encodes the join state as JSON: the threshold, gram length, and
    /// the `(label, value)` entries in insertion order. The derived probe
    /// structures (postings, numeric sweep, rid map) are not serialized —
    /// [`IncrementalJoin::from_json`] rebuilds them by replaying
    /// registration, which is deterministic given the same entry order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("xi".into(), Json::Float(self.xi)),
            ("q".into(), Json::Int(self.q as i64)),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("label".into(), e.label.to_json()),
                                ("value".into(), e.value.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a join from [`IncrementalJoin::to_json`] output. The
    /// metric is not serialized (it is arbitrary user code); the caller
    /// supplies the same metric the session was built with.
    pub fn from_json(json: &Json, metric: std::sync::Arc<dyn ValueSimilarity>) -> Result<Self> {
        let xi = json.expect("xi")?.as_f64()?;
        let q = json.expect("q")?.as_i64()?;
        if !(xi > 0.0 && xi <= 1.0) {
            return Err(HeraError::Corrupt(format!(
                "join threshold xi = {xi} outside (0, 1]"
            )));
        }
        if !(1..=64).contains(&q) {
            return Err(HeraError::Corrupt(format!("join gram length q = {q}")));
        }
        let mut join = Self::new(xi, q as usize, metric);
        for e in json.expect("entries")?.as_arr()? {
            let label = Label::from_json(e.expect("label")?)?;
            let value = Value::from_json(e.expect("value")?)?;
            if value.is_null() {
                return Err(HeraError::Corrupt(format!(
                    "join entry {label} holds a null value"
                )));
            }
            let sig = folded_qgram_set(&value.to_text(), join.q);
            join.register(label, value, &sig);
        }
        Ok(join)
    }

    /// Applies a merge remap: every stored label of records `i` or `j`
    /// moves to its new label under the surviving rid (mirror of
    /// `ValuePairIndex::merge`).
    pub fn relabel(&mut self, i: u32, j: u32, remap: impl Fn(Label) -> Label) {
        let mut moved: Vec<usize> = Vec::new();
        for rid in [i, j] {
            if let Some(list) = self.by_rid.remove(&rid) {
                moved.extend(list);
            }
        }
        let mut new_rid = None;
        for &idx in &moved {
            let l = remap(self.entries[idx].label);
            self.entries[idx].label = l;
            debug_assert!(new_rid.is_none() || new_rid == Some(l.rid));
            new_rid = Some(l.rid);
        }
        if let Some(k) = new_rid {
            self.by_rid.entry(k).or_default().extend(moved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JoinConfig, SimilarityJoin};
    use hera_sim::TypeDispatch;

    fn label(rid: u32, fid: u32) -> Label {
        Label::new(rid, fid, 0)
    }

    use std::sync::Arc;

    #[test]
    fn incremental_matches_batch() {
        let metric = TypeDispatch::paper_default();
        let values: Vec<(Label, Value)> = vec![
            (label(0, 0), Value::from("electronic")),
            (label(0, 1), Value::from("831-432")),
            (label(1, 0), Value::from("electronics")),
            (label(1, 1), Value::from("831-432")),
            (label(2, 0), Value::from("unrelated stuff")),
            (label(3, 0), Value::from(1984i64)),
            (label(4, 0), Value::from(1984i64)),
        ];
        for xi in [0.3, 0.5, 0.9] {
            let batch = SimilarityJoin::new(JoinConfig::new(xi), &metric).join(&values);
            let mut inc = IncrementalJoin::new(xi, 2, Arc::new(metric.clone()));
            let mut streamed: Vec<ValuePair> = Vec::new();
            for (l, v) in &values {
                streamed.extend(inc.insert(*l, v.clone()));
            }
            streamed.sort_unstable_by(|x, y| {
                (x.a.rid, x.b.rid)
                    .cmp(&(y.a.rid, y.b.rid))
                    .then_with(|| y.sim.partial_cmp(&x.sim).unwrap())
                    .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
            });
            assert_eq!(streamed, batch, "xi = {xi}");
        }
    }

    /// Same metric values, but hidden behind a wrapper that does not
    /// declare `qgram_compatible` — forcing every candidate through
    /// `metric.sim`. The signature/sketch fast path must emit exactly the
    /// same pair stream on every insert.
    #[test]
    fn signature_fast_path_matches_metric_path() {
        #[derive(Clone)]
        struct Opaque(TypeDispatch);
        impl ValueSimilarity for Opaque {
            fn sim(&self, a: &Value, b: &Value) -> f64 {
                self.0.sim(a, b)
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }

        let metric = TypeDispatch::paper_default();
        assert_eq!(metric.qgram_compatible(), Some(2), "fast path engages");
        let values: Vec<(Label, Value)> = vec![
            (label(0, 0), Value::from("electronic")),
            (label(0, 1), Value::from("1984")),
            (label(1, 0), Value::from("electronics")),
            (label(1, 1), Value::from(1984i64)),
            (label(2, 0), Value::from("electro")),
            (label(3, 0), Value::from("unrelated stuff")),
            (label(4, 0), Value::from(1985i64)),
            (label(5, 0), Value::from("electronic")),
        ];
        for xi in [0.3, 0.7] {
            let mut fast = IncrementalJoin::new(xi, 2, Arc::new(metric.clone()));
            let mut slow = IncrementalJoin::new(xi, 2, Arc::new(Opaque(metric.clone())));
            assert!(fast.fast_grams);
            assert!(!slow.fast_grams);
            for (l, v) in &values {
                let a = fast.insert(*l, v.clone());
                let b = slow.insert(*l, v.clone());
                assert_eq!(a, b, "xi = {xi}, inserting {l}");
            }
        }
    }

    #[test]
    fn same_record_values_never_pair() {
        let metric = TypeDispatch::paper_default();
        let mut inc = IncrementalJoin::new(0.5, 2, Arc::new(metric.clone()));
        assert!(inc.insert(label(0, 0), Value::from("same")).is_empty());
        assert!(inc.insert(label(0, 1), Value::from("same")).is_empty());
        assert_eq!(inc.len(), 2);
    }

    #[test]
    fn nulls_are_ignored() {
        let metric = TypeDispatch::paper_default();
        let mut inc = IncrementalJoin::new(0.5, 2, Arc::new(metric.clone()));
        assert!(inc.insert(label(0, 0), Value::Null).is_empty());
        assert!(inc.is_empty());
    }

    #[test]
    fn relabel_redirects_future_pairs() {
        let metric = TypeDispatch::paper_default();
        let mut inc = IncrementalJoin::new(0.5, 2, Arc::new(metric.clone()));
        inc.insert(label(5, 0), Value::from("bush@gmail"));
        // Record 5 merged into record 1, field shifted to 3.
        inc.relabel(1, 5, |l| {
            if l.rid == 5 {
                Label::new(1, 3, l.vid)
            } else {
                l
            }
        });
        let pairs = inc.insert(label(9, 0), Value::from("bush@gmail"));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].a, Label::new(1, 3, 0));
        assert_eq!(pairs[0].b, label(9, 0));
    }

    #[test]
    fn numeric_sweep_finds_neighbors() {
        use hera_sim::NumericProximity;
        use std::sync::Arc;
        let metric =
            TypeDispatch::paper_default().with_numeric_metric(Arc::new(NumericProximity::new(5.0)));
        let mut inc = IncrementalJoin::new(0.5, 2, Arc::new(metric.clone()));
        inc.insert(label(0, 0), Value::from(1980i64));
        inc.insert(label(1, 0), Value::from(1990i64));
        let pairs = inc.insert(label(2, 0), Value::from(1981i64));
        // 1981 vs 1980 → sim 0.8; vs 1990 → 0. Gram overlap of "1981" and
        // "1980"/"1990" also exists but numeric dispatch scores them.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].a.rid, 0);
        assert!((pairs[0].sim - 0.8).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_emits_identical_future_pairs() {
        let metric = TypeDispatch::paper_default();
        let mut live = IncrementalJoin::new(0.5, 2, Arc::new(metric.clone()));
        live.insert(label(0, 0), Value::from("electronic"));
        live.insert(label(1, 0), Value::from("electronics"));
        live.insert(label(2, 0), Value::from(1984i64));
        live.relabel(0, 1, |l| {
            if l.rid == 1 {
                Label::new(0, 7, l.vid)
            } else {
                l
            }
        });

        let dump = live.to_json().to_string_compact();
        let mut restored = IncrementalJoin::from_json(
            &hera_types::json::parse(&dump).unwrap(),
            Arc::new(metric.clone()),
        )
        .unwrap();
        assert_eq!(restored.len(), live.len());
        assert_eq!(restored.to_json().to_string_compact(), dump, "fixpoint");

        let a = live.insert(label(9, 0), Value::from("electronic"));
        let b = restored.insert(label(9, 0), Value::from("electronic"));
        assert_eq!(a, b, "restored join emits the same pairs");
        assert!(!a.is_empty());
    }

    #[test]
    fn json_rejects_bad_threshold() {
        let metric = TypeDispatch::paper_default();
        let json = hera_types::json::parse(r#"{"xi":1.5,"q":2,"entries":[]}"#).unwrap();
        let err = match IncrementalJoin::from_json(&json, Arc::new(metric)) {
            Ok(_) => panic!("bad xi accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, hera_types::HeraError::Corrupt(_)), "{err}");
    }

    #[test]
    #[should_panic(expected = "xi")]
    fn zero_xi_rejected() {
        let metric = TypeDispatch::paper_default();
        IncrementalJoin::new(0.0, 2, Arc::new(metric));
    }

    /// `insert` is `insert_filtered` with an always-true filter, and a
    /// filtered insert emits exactly the unfiltered pairs whose partner
    /// rid passes — same pairs, same sims, same order — while still
    /// registering the value for future candidates either way.
    #[test]
    fn insert_filtered_is_a_restriction_of_insert() {
        let metric = TypeDispatch::paper_default();
        let values: Vec<(Label, Value)> = vec![
            (label(0, 0), Value::from("electronic")),
            (label(1, 0), Value::from("electronics")),
            (label(2, 0), Value::from("electronical")),
            (label(3, 0), Value::from("electronic")),
        ];
        let mut plain = IncrementalJoin::new(0.3, 2, Arc::new(metric.clone()));
        let mut open = IncrementalJoin::new(0.3, 2, Arc::new(metric.clone()));
        let mut gated = IncrementalJoin::new(0.3, 2, Arc::new(metric.clone()));
        for (l, v) in &values {
            let a = plain.insert(*l, v.clone());
            let b = open.insert_filtered(*l, v.clone(), |_| true);
            assert_eq!(a, b, "always-true filter must match insert bit for bit");
            // Gate out rid 1 as a *candidate*: pairs whose partner is
            // rid 1 vanish, the rest are untouched — including rid 1's
            // own insert against earlier values, proving the filter
            // constrains candidates, not registration.
            let c = gated.insert_filtered(*l, v.clone(), |r| r != 1);
            let expect: Vec<ValuePair> = a
                .iter()
                .filter(|p| {
                    let partner = if p.a.rid == l.rid { p.b.rid } else { p.a.rid };
                    partner != 1
                })
                .copied()
                .collect();
            assert_eq!(
                c, expect,
                "filter must only remove the gated candidate's pairs"
            );
        }
    }

    /// With the default gram-compatible metric, `insert_among(rids)` is
    /// bit-identical to `insert_filtered(set-membership)` — it verifies
    /// the allowed cross product directly instead of probing the gram
    /// index, but share-a-gram candidate generation is complete for
    /// q-gram Jaccard, so neither path can see a pair the other misses.
    #[test]
    fn insert_among_matches_insert_filtered() {
        use hera_sim::NumericProximity;
        let metric =
            TypeDispatch::paper_default().with_numeric_metric(Arc::new(NumericProximity::new(5.0)));
        let values: Vec<(Label, Value)> = vec![
            (label(0, 0), Value::from("electronic")),
            (label(0, 1), Value::from(1980i64)),
            (label(1, 0), Value::from("electronics")),
            (label(1, 1), Value::from(1981i64)),
            (label(2, 0), Value::from("unrelated stuff")),
            (label(3, 0), Value::from("electronic")),
            (label(3, 1), Value::from(1990i64)),
            (label(4, 0), Value::from("electro")),
        ];
        // Every subset of earlier records as the allowed set, at two
        // thresholds: same pairs, same sims, same order.
        for xi in [0.3, 0.7] {
            for mask in 0u32..32 {
                let mut filtered = IncrementalJoin::new(xi, 2, Arc::new(metric.clone()));
                let mut among = IncrementalJoin::new(xi, 2, Arc::new(metric.clone()));
                for (l, v) in &values {
                    let rids: Vec<u32> = (0..5).filter(|r| mask & (1 << r) != 0).collect();
                    let a = filtered.insert_filtered(*l, v.clone(), |r| rids.contains(&r));
                    let b = among.insert_among(*l, v.clone(), &rids);
                    assert_eq!(a, b, "xi = {xi}, mask = {mask:b}, inserting {l}");
                }
            }
        }
    }
}
