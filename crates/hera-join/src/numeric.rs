//! Sorted-sweep candidate generation for numeric values.

use hera_sim::ValueSimilarity;
use hera_types::{Label, Value};

/// Generates candidate pairs among numeric distinct values by a forward
/// sweep over the sorted number line.
///
/// Sound for metrics that are non-increasing in `|a − b|` (every built-in
/// numeric metric is): once `sim(vᵢ, vⱼ) < ξ` for some `j > i` in sorted
/// order, all later `j` are at least as far from `vᵢ` and score no higher,
/// so the sweep stops.
pub fn numeric_candidates(
    distinct: &[(&Value, Vec<Label>)],
    metric: &dyn ValueSimilarity,
    xi: f64,
) -> Vec<(usize, usize)> {
    let mut nums: Vec<(f64, usize)> = distinct
        .iter()
        .enumerate()
        .filter_map(|(i, (v, _))| v.as_number().map(|x| (x, i)))
        .collect();
    nums.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut out = Vec::new();
    for i in 0..nums.len() {
        for j in i + 1..nums.len() {
            let (vi, ii) = (&distinct[nums[i].1].0, nums[i].1);
            let (vj, jj) = (&distinct[nums[j].1].0, nums[j].1);
            let s = metric.sim(vi, vj);
            if s >= xi {
                out.push(if ii < jj { (ii, jj) } else { (jj, ii) });
            } else {
                break; // monotone metric: later values only further away
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::{NumericProximity, TypeDispatch};
    use std::sync::Arc;

    fn dv(vals: &[Value]) -> Vec<(Value, Vec<Label>)> {
        vals.iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), vec![Label::new(i as u32, 0, 0)]))
            .collect()
    }

    fn run(vals: &[Value], scale: f64, xi: f64) -> Vec<(usize, usize)> {
        let metric = TypeDispatch::paper_default()
            .with_numeric_metric(Arc::new(NumericProximity::new(scale)));
        let owned = dv(vals);
        let borrowed: Vec<(&Value, Vec<Label>)> =
            owned.iter().map(|(v, l)| (v, l.clone())).collect();
        let mut c = numeric_candidates(&borrowed, &metric, xi);
        c.sort_unstable();
        c.dedup();
        c
    }

    #[test]
    fn window_respects_scale() {
        let vals: Vec<Value> = [1980i64, 1981, 1985, 2000]
            .iter()
            .map(|&y| Value::from(y))
            .collect();
        // scale 5, xi 0.5 → pairs within |Δ| ≤ 2.5.
        let c = run(&vals, 5.0, 0.5);
        assert_eq!(c, vec![(0, 1)]);
        // scale 10 → |Δ| ≤ 5 adds (0,2),(1,2).
        let c = run(&vals, 10.0, 0.5);
        assert_eq!(c, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn strings_ignored() {
        let vals = vec![Value::from("1984"), Value::from(1984i64)];
        // Only one numeric value → no numeric pairs (mixed pairs come from
        // the gram index instead).
        let c = run(&vals, 5.0, 0.5);
        assert!(c.is_empty());
    }

    #[test]
    fn floats_and_ints_mix() {
        let vals = vec![Value::from(3.5), Value::from(3i64), Value::from(100i64)];
        let c = run(&vals, 2.0, 0.5);
        assert_eq!(c, vec![(0, 1)]);
    }

    #[test]
    fn exhaustive_equivalence_on_dense_cluster() {
        let vals: Vec<Value> = (0..20).map(|i| Value::from(i as f64 * 0.3)).collect();
        let metric =
            TypeDispatch::paper_default().with_numeric_metric(Arc::new(NumericProximity::new(1.0)));
        let owned = dv(&vals);
        let borrowed: Vec<(&Value, Vec<Label>)> =
            owned.iter().map(|(v, l)| (v, l.clone())).collect();
        let mut sweep = numeric_candidates(&borrowed, &metric, 0.4);
        sweep.sort_unstable();
        sweep.dedup();
        let mut oracle = Vec::new();
        for i in 0..vals.len() {
            for j in i + 1..vals.len() {
                if metric.sim(&vals[i], &vals[j]) >= 0.4 {
                    oracle.push((i, j));
                }
            }
        }
        assert_eq!(sweep, oracle);
    }
}
