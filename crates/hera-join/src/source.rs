//! Candidate sources: which record pairs the join is allowed to emit.
//!
//! The classic join enumerates candidates implicitly from the value
//! universe — every cross-record pair of similar values survives, which
//! is an *all-pairs* policy over records. A blocking stage (see the
//! `hera-block` crate) replaces that policy with an explicit, typically
//! sub-quadratic, set of record pairs; the join then only compares
//! values across allowed pairs. [`CandidateSource`] names the policy and
//! [`RecordPairSet`] is the concrete allowed-pair set.

/// A deduplicated, sorted set of normalized record pairs (`a < b`).
///
/// This is the hand-off format between a blocker and the similarity
/// join: the blocker decides *which* record pairs are worth comparing,
/// the join decides *which value pairs within them* clear ξ.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordPairSet {
    pairs: Vec<(u32, u32)>,
}

impl RecordPairSet {
    /// Builds a set from arbitrary pairs: orients each pair as
    /// `(min, max)`, drops self-pairs, sorts, and deduplicates.
    pub fn from_pairs(mut pairs: Vec<(u32, u32)>) -> Self {
        for p in pairs.iter_mut() {
            if p.0 > p.1 {
                *p = (p.1, p.0);
            }
        }
        pairs.retain(|p| p.0 != p.1);
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// Number of allowed record pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair is allowed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test (either orientation).
    pub fn contains(&self, a: u32, b: u32) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairs.binary_search(&key).is_ok()
    }

    /// The pairs, sorted ascending with `a < b` in each.
    pub fn as_slice(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Iterates pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }
}

/// Where the join's record-pair candidates come from.
#[derive(Debug, Clone)]
pub enum CandidateSource {
    /// Implicit all-pairs enumeration through the value universe — the
    /// paper's exact semantics (every similar value pair, whatever the
    /// records).
    AllPairs,
    /// Only the given record pairs may produce output — the contract of
    /// a blocking stage. The emitted value pairs are exactly the
    /// all-pairs output restricted to allowed record pairs, with
    /// bit-identical similarities.
    Blocked(RecordPairSet),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_normalizes_sorts_dedups() {
        let set = RecordPairSet::from_pairs(vec![(3, 1), (1, 3), (2, 2), (0, 5), (1, 3)]);
        assert_eq!(set.as_slice(), &[(0, 5), (1, 3)]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn contains_checks_both_orientations() {
        let set = RecordPairSet::from_pairs(vec![(4, 7)]);
        assert!(set.contains(4, 7));
        assert!(set.contains(7, 4));
        assert!(!set.contains(4, 6));
    }

    #[test]
    fn empty_set() {
        let set = RecordPairSet::from_pairs(vec![(9, 9)]);
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
    }
}
