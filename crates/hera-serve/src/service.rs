//! The sharded ER service: N per-shard [`HeraSession`]s behind a
//! blocking-key router, plus a *stitcher* session that replays the
//! global arrival stream to resolve across shard boundaries.
//!
//! # Sharding model
//!
//! Each arriving record routes to one shard by
//! [`hera_block::route_shard`] — a pure function of its values — and
//! joins only that shard's live universe, so per-record ingest cost
//! scales with the shard's value universe, not the service's. Shard
//! resolution ([`ErService::resolve`]) is budgeted, incremental, and
//! *provisional*: two duplicates routed to different shards cannot merge
//! there.
//!
//! The boundary pass ([`ErService::stitch`]) fixes that without new
//! machinery: a dedicated single-shard session (the stitcher) ingests
//! the pending suffix of the global stream — same records, same order,
//! global record ids — and resolves with the ordinary union-find +
//! schema-vote pipeline. The stitched partition is therefore *by
//! construction* the partition a single-shard session would have
//! produced on the same stream: sharding never changes answers, only
//! when they arrive. Shards answer between passes (flagged
//! `provisional`); the stitcher answers for everything it has seen.
//!
//! # Concurrency model
//!
//! The service is `&self` end to end and safe to share across threads
//! (`Arc<ErService>` behind any number of connections). Sessions live
//! on dedicated worker threads (see the crate-private `worker`
//! module for the ownership map and channel topology); the service
//! front end keeps only bookkeeping — the routing table, the pending
//! suffix, the schema list — behind one mutex, and *every channel send
//! happens while that mutex is held*. That single rule is what makes
//! the concurrent service deterministic where it matters:
//!
//! * The bookkeeping lock's acquisition order defines **the** global
//!   arrival order. Each shard's command stream and the stitcher's
//!   replay stream are projections of it, so per-shard session state
//!   and every stitched partition are pure functions of that order —
//!   independent of worker count and OS scheduling.
//! * The stitcher ingests drained suffixes in global order, so the
//!   stitched partition is bit-identical to what a sequential
//!   single-shard session produces on the same stream — at any worker
//!   count, under any interleaving. `tests/serve_concurrent.rs` holds
//!   this as a property over seeded schedules.
//!
//! Lookups are lock-light and never wait on a boundary pass: stitched
//! answers come from the last *published* stitched view (an
//! immutable generation swapped in atomically after each pass), and
//! pre-stitch answers come from the owning shard, flagged provisional.
//! A reply is always one consistent generation or one shard's coherent
//! view — bounded staleness, never a torn value.

use crate::protocol::{err, ok, Request};
use crate::worker::{
    spawn_shard_workers, spawn_stitch_worker, Published, ShardCmd, ShardMsg, StitchCmd,
    StitchedView,
};
use hera_block::route_shard;
use hera_core::{HeraConfig, HeraSession, ProgressiveReport, ResolveBudget};
use hera_faults::{io_retryable, BackoffPolicy, Clock, FaultInjector, SystemClock};
use hera_obs::Recorder;
use hera_store::Snapshot;
use hera_types::json::Json;
use hera_types::{HeraError, Result, SchemaId, Value};
use std::path::Path;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Builder for [`ErService`] — shard count, worker threads, cadence,
/// and the fault / journal plumbing threaded into every session.
pub struct ErServiceBuilder {
    config: HeraConfig,
    shards: usize,
    workers: usize,
    stitch_every: usize,
    recorder: Recorder,
    faults: FaultInjector,
    retry: BackoffPolicy,
    clock: Arc<dyn Clock>,
}

impl ErServiceBuilder {
    fn new(config: HeraConfig, shards: usize) -> Self {
        Self {
            config,
            shards,
            workers: 0,
            stitch_every: 0,
            recorder: Recorder::disabled(),
            faults: FaultInjector::disabled(),
            retry: BackoffPolicy::checkpoint_default(),
            clock: Arc::new(SystemClock),
        }
    }

    /// Runs the boundary pass automatically once this many records are
    /// pending (0, the default, stitches only on explicit request).
    /// Automatic passes are dispatched asynchronously: the triggering
    /// ingest returns as soon as the pass is queued.
    pub fn stitch_every(mut self, records: usize) -> Self {
        self.stitch_every = records;
        self
    }

    /// Shard-worker thread count. Shard `i` lives on worker
    /// `i % workers`, so workers resolve and ingest in parallel up to
    /// the shard count; the value is clamped to `[1, shards]`.
    /// 0 (the default) means one dedicated worker per shard.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches the audit journal: every protocol request and boundary
    /// pass emits through it, alongside the sessions' own events. Each
    /// shard session journals under a `shard<i>` scope and the stitcher
    /// under `stitcher`, so interleaved worker output stays
    /// per-scope-checkable (`hera trace-check`).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Threads a fault injector into every snapshot write/read.
    pub fn faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Retry policy for checkpoint IO (default
    /// [`BackoffPolicy::checkpoint_default`]).
    pub fn retry(mut self, policy: BackoffPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Delay source behind retry backoff (tests inject a manual clock).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    fn session(&self, scope: &str) -> HeraSession {
        HeraSession::builder(self.config.clone())
            .recorder(self.recorder.scoped(scope))
            .faults(self.faults.clone())
            .retry(self.retry)
            .clock(self.clock.clone())
            .build()
    }

    fn worker_count(&self) -> usize {
        let requested = if self.workers == 0 {
            self.shards
        } else {
            self.workers
        };
        requested.clamp(1, self.shards)
    }

    /// Builds an empty service and spawns its worker threads.
    pub fn build(self) -> ErService {
        let shards: Vec<HeraSession> = (0..self.shards)
            .map(|i| self.session(&format!("shard{i}")))
            .collect();
        let stitcher = self.session("stitcher");
        let local_to_global = vec![Vec::new(); self.shards];
        self.assemble(shards, stitcher, Vec::new(), local_to_global, Vec::new())
    }

    /// Builds a service whose state is loaded from a checkpoint written
    /// by [`ErService::checkpoint`] — manifest plus one snapshot per
    /// shard and one for the stitcher, all beside `path`. The builder's
    /// config and shard count must match the checkpointing service's.
    pub fn restore(self, path: impl AsRef<Path>) -> Result<ErService> {
        let path = path.as_ref();
        let manifest = Snapshot::read_with(path, &self.faults)?;
        let snap_shards = manifest.expect("service")?.expect("shards")?.as_u32()? as usize;
        if snap_shards != self.shards {
            return Err(HeraError::InvalidConfig(format!(
                "checkpoint has {snap_shards} shard(s) but the restore asked for {}; \
                 record routing is shard-count-dependent",
                self.shards
            )));
        }
        let mut schemas = Vec::new();
        for s in manifest.expect("schemas")?.as_arr()? {
            let name = s.expect("name")?.as_str()?.to_string();
            let attrs = s
                .expect("attrs")?
                .as_arr()?
                .iter()
                .map(|a| Ok(a.as_str()?.to_string()))
                .collect::<Result<Vec<_>>>()?;
            schemas.push((name, attrs));
        }
        let mut route = Vec::new();
        let mut local_to_global: Vec<Vec<u32>> = vec![Vec::new(); self.shards];
        for r in manifest.expect("route")?.as_arr()? {
            let shard = r.as_u32()? as usize;
            if shard >= self.shards {
                return Err(HeraError::Corrupt(format!(
                    "route entry names shard {shard} of {}",
                    self.shards
                )));
            }
            let global = route.len() as u32;
            route.push((shard as u32, local_to_global[shard].len() as u32));
            local_to_global[shard].push(global);
        }
        let mut pending = Vec::new();
        for p in manifest.expect("pending")?.as_arr()? {
            let schema = p.expect("schema")?.as_u32()?;
            let values = p
                .expect("values")?
                .as_arr()?
                .iter()
                .map(Value::from_json)
                .collect::<Result<Vec<_>>>()?;
            pending.push((SchemaId::new(schema), values));
        }

        let shards = (0..self.shards)
            .map(|i| self.restore_session(&shard_path(path, i), &format!("shard{i}")))
            .collect::<Result<Vec<_>>>()?;
        let stitcher = self.restore_session(&stitcher_path(path), "stitcher")?;

        for (i, shard) in shards.iter().enumerate() {
            if shard.len() != local_to_global[i].len() {
                return Err(HeraError::Corrupt(format!(
                    "shard {i} snapshot holds {} record(s), route says {}",
                    shard.len(),
                    local_to_global[i].len()
                )));
            }
        }
        if stitcher.len() + pending.len() != route.len() {
            return Err(HeraError::Corrupt(format!(
                "stitcher has {} record(s) and {} pending, route says {}",
                stitcher.len(),
                pending.len(),
                route.len()
            )));
        }

        let mut service = self.assemble(shards, stitcher, route, local_to_global, pending);
        service.replay_schemas(schemas);
        Ok(service)
    }

    /// Hands the sessions off to their worker threads and wires the
    /// front end around the channels.
    fn assemble(
        self,
        shards: Vec<HeraSession>,
        stitcher: HeraSession,
        route: Vec<(u32, u32)>,
        local_to_global: Vec<Vec<u32>>,
        pending: Vec<(SchemaId, Vec<Value>)>,
    ) -> ErService {
        let drained = route.len() - pending.len();
        let workers = self.worker_count();
        let (shard_txs, worker_txs, mut handles) = spawn_shard_workers(shards, workers);
        let (stitch_tx, published, stitch_handle) =
            spawn_stitch_worker(stitcher, self.recorder.scoped("stitcher"));
        handles.push(stitch_handle);
        ErService {
            state: Mutex::new(ServiceState {
                shard_txs,
                worker_txs,
                stitch_tx,
                schemas: Vec::new(),
                route,
                local_to_global,
                pending,
                drained,
            }),
            published,
            handles,
            workers,
            shards: self.shards,
            stitch_every: self.stitch_every,
            recorder: self.recorder,
            faults: self.faults,
            retry: self.retry,
            clock: self.clock,
        }
    }

    fn restore_session(&self, path: &std::path::PathBuf, scope: &str) -> Result<HeraSession> {
        HeraSession::builder(self.config.clone())
            .recorder(self.recorder.scoped(scope))
            .faults(self.faults.clone())
            .retry(self.retry)
            .clock(self.clock.clone())
            .restore(path)
    }
}

fn shard_path(manifest: &Path, shard: usize) -> std::path::PathBuf {
    let mut p = manifest.as_os_str().to_owned();
    p.push(format!(".shard{shard}"));
    p.into()
}

fn stitcher_path(manifest: &Path) -> std::path::PathBuf {
    let mut p = manifest.as_os_str().to_owned();
    p.push(".stitcher");
    p.into()
}

/// The error every channel operation maps a dead worker thread to: the
/// only way a worker exits early is a panic, so the service is broken,
/// not the request.
fn worker_gone<T>(_: T) -> HeraError {
    HeraError::Io("service worker thread terminated".into())
}

/// Reply to [`ErService::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReply {
    /// Global record id (dense, arrival-ordered — the protocol's `id`).
    pub id: u32,
    /// Shard the record routed to.
    pub shard: u32,
    /// Whether this ingest tripped the automatic boundary pass. The
    /// pass is dispatched, not complete: it publishes asynchronously.
    pub stitched: bool,
}

/// Reply to [`ErService::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupReply {
    /// Entity label: a global record id — the cluster representative's
    /// id when stitched, the shard-root's global id when provisional.
    pub entity: u32,
    /// True when the record was not covered by the last published
    /// boundary pass: the entity reflects one shard's view and may
    /// change (only by growing or relabeling, never splitting) at the
    /// next stitch.
    pub provisional: bool,
    /// Global ids of the entity's known members, ascending.
    pub members: Vec<u32>,
}

/// Reply to [`ErService::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveReply {
    /// Merges applied across all shards.
    pub merges: usize,
    /// Comparisons spent across all shards.
    pub comparisons: u64,
    /// True when any shard's budget ran out before its fixpoint.
    pub exhausted: bool,
    /// Per-shard progressive reports, shard-ordered.
    pub per_shard: Vec<ProgressiveReport>,
}

/// Reply to [`ErService::stitch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchReply {
    /// Records the boundary pass ingested (the pending suffix).
    pub ingested: usize,
    /// The stitcher's resolution report for the pass.
    pub report: ProgressiveReport,
}

/// An in-flight boundary pass (from [`ErService::stitch_async`]). The
/// pass runs on the stitch worker; [`StitchHandle::wait`] blocks until
/// its view is published. Dropping the handle abandons the wait, not
/// the pass.
pub struct StitchHandle {
    boundary: usize,
    rx: Receiver<StitchReply>,
}

impl StitchHandle {
    /// Global-stream prefix length this pass covers once published.
    pub fn boundary(&self) -> usize {
        self.boundary
    }

    /// Blocks until the pass has published its stitched view.
    ///
    /// # Panics
    /// When the stitch worker thread died (a service-level bug).
    pub fn wait(self) -> StitchReply {
        self.rx.recv().expect("stitch worker terminated")
    }
}

/// An in-flight cross-shard resolve (from [`ErService::resolve_async`]).
/// Shards work in parallel; [`ResolveHandle::wait`] gathers the
/// shard-ordered reports.
pub struct ResolveHandle {
    rxs: Vec<Receiver<ProgressiveReport>>,
}

impl ResolveHandle {
    /// Blocks until every shard finished its budgeted pass.
    ///
    /// # Panics
    /// When a shard worker thread died (a service-level bug).
    pub fn wait(self) -> ResolveReply {
        let per_shard: Vec<ProgressiveReport> = self
            .rxs
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker terminated"))
            .collect();
        ResolveReply {
            merges: per_shard.iter().map(|r| r.merges).sum(),
            comparisons: per_shard.iter().map(|r| r.comparisons_spent).sum(),
            exhausted: per_shard.iter().any(|r| r.exhausted),
            per_shard,
        }
    }
}

/// Front-end bookkeeping, guarded by the service's one mutex. Every
/// channel send happens under this lock — see the module docs for why
/// that ordering rule is the whole determinism argument.
struct ServiceState {
    /// One sender per shard (shards on the same worker share a channel).
    shard_txs: Vec<Sender<ShardMsg>>,
    /// One sender per worker thread, for shutdown.
    worker_txs: Vec<Sender<ShardMsg>>,
    /// The stitch worker's channel.
    stitch_tx: Sender<StitchCmd>,
    /// Registered schemas (name, attrs), id-ordered — kept for request
    /// validation and the checkpoint manifest.
    schemas: Vec<(String, Vec<String>)>,
    /// Global id → (shard, local id).
    route: Vec<(u32, u32)>,
    /// Per-shard local id → global id. Append-only, so a provisional
    /// lookup can translate a shard reply after re-acquiring the lock.
    local_to_global: Vec<Vec<u32>>,
    /// Records ingested since the last dispatched boundary pass,
    /// global-id-ordered (global id = drained + position).
    pending: Vec<(SchemaId, Vec<Value>)>,
    /// Global-stream prefix already handed to the stitch worker
    /// (`route.len() - pending.len()` at all times).
    drained: usize,
}

/// A long-lived sharded ER service — see the module docs for the model.
/// All methods take `&self`; share it as `Arc<ErService>` across
/// connection threads. Dropping the service shuts its workers down and
/// joins them.
pub struct ErService {
    state: Mutex<ServiceState>,
    /// The double-buffered stitched view (see the worker module docs).
    published: Published,
    /// Shard workers + the stitch worker, joined on drop.
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    shards: usize,
    stitch_every: usize,
    recorder: Recorder,
    faults: FaultInjector,
    retry: BackoffPolicy,
    clock: Arc<dyn Clock>,
}

impl ErService {
    /// Starts building a service with `shards` shard sessions.
    ///
    /// # Panics
    /// When `shards` is zero.
    pub fn builder(config: HeraConfig, shards: usize) -> ErServiceBuilder {
        assert!(shards > 0, "a service needs at least one shard");
        ErServiceBuilder::new(config, shards)
    }

    fn state(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().expect("service state poisoned")
    }

    /// One consistent snapshot of the published stitched view.
    fn view(&self) -> Arc<StitchedView> {
        self.published
            .read()
            .expect("published view poisoned")
            .clone()
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Shard-worker thread count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Records ingested over the service's lifetime.
    pub fn len(&self) -> usize {
        self.state().route.len()
    }

    /// True before the first ingest.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records awaiting dispatch to a boundary pass.
    pub fn pending_len(&self) -> usize {
        self.state().pending.len()
    }

    /// Boundary passes published so far.
    pub fn passes(&self) -> u64 {
        self.view().passes()
    }

    /// Records covered by the last published boundary pass.
    pub fn stitched_len(&self) -> usize {
        self.view().len()
    }

    /// Registers a schema in every shard and the stitcher; ids are
    /// assigned densely in registration order, identical across all
    /// sessions (every session sees registrations and ingests in the
    /// same lock-defined global order).
    pub fn add_schema(&self, name: &str, attrs: &[String]) -> SchemaId {
        let mut st = self.state();
        let id = SchemaId::new(st.schemas.len() as u32);
        for (shard, tx) in st.shard_txs.iter().enumerate() {
            tx.send((
                shard,
                ShardCmd::Schema {
                    name: name.to_string(),
                    attrs: attrs.to_vec(),
                },
            ))
            .expect("shard worker terminated");
        }
        st.stitch_tx
            .send(StitchCmd::Schema {
                name: name.to_string(),
                attrs: attrs.to_vec(),
            })
            .expect("stitch worker terminated");
        st.schemas.push((name.to_string(), attrs.to_vec()));
        id
    }

    /// Installs the manifest's schema list after a restore. The
    /// restored sessions persist their own registries, so nothing is
    /// re-sent to the workers — only the front-end validation list
    /// needs filling.
    fn replay_schemas(&mut self, schemas: Vec<(String, Vec<String>)>) {
        self.state().schemas = schemas;
    }

    /// Ingests one record: routes it by blocking key, dispatches it to
    /// its shard worker, and queues it for the next boundary pass.
    /// Validation (schema id, arity) happens here on the front end so
    /// the fire-and-forget shard command cannot fail. Trips an
    /// automatic stitch dispatch when the builder's `stitch_every`
    /// threshold fills.
    pub fn ingest(&self, schema: SchemaId, values: Vec<Value>) -> Result<IngestReply> {
        let shard = route_shard(&values, self.shards);
        let mut st = self.state();
        let global = st.route.len() as u32;
        match st.schemas.get(schema.index()) {
            None => return Err(HeraError::UnknownId(format!("{schema}"))),
            Some((_, attrs)) if attrs.len() != values.len() => {
                return Err(HeraError::ArityMismatch {
                    record: global,
                    expected: attrs.len(),
                    actual: values.len(),
                })
            }
            Some(_) => {}
        }
        st.shard_txs[shard]
            .send((
                shard,
                ShardCmd::Ingest {
                    schema,
                    values: values.clone(),
                },
            ))
            .map_err(worker_gone)?;
        let local = st.local_to_global[shard].len() as u32;
        st.route.push((shard as u32, local));
        st.local_to_global[shard].push(global);
        st.pending.push((schema, values));
        let mut stitched = false;
        if self.stitch_every > 0 && st.pending.len() >= self.stitch_every {
            // Fire-and-forget: dropping the handle abandons the wait,
            // not the pass.
            let _ = self.dispatch_stitch(&mut st);
            stitched = true;
        }
        Ok(IngestReply {
            id: global,
            shard: shard as u32,
            stitched,
        })
    }

    /// Drains the pending suffix to the stitch worker. Must run under
    /// the state lock so the drained batch is a contiguous prefix of
    /// the global order.
    fn dispatch_stitch(&self, st: &mut ServiceState) -> StitchHandle {
        let records = std::mem::take(&mut st.pending);
        st.drained += records.len();
        let boundary = st.drained;
        let (tx, rx) = channel();
        st.stitch_tx
            .send(StitchCmd::Stitch { records, reply: tx })
            .expect("stitch worker terminated");
        StitchHandle { boundary, rx }
    }

    /// Dispatches a budgeted incremental resolve to every shard (each
    /// shard gets the full `budget`) and returns without waiting;
    /// shards work in parallel.
    pub fn resolve_async(&self, budget: ResolveBudget) -> ResolveHandle {
        let st = self.state();
        let rxs = st
            .shard_txs
            .iter()
            .enumerate()
            .map(|(shard, tx)| {
                let (rtx, rrx) = channel();
                tx.send((shard, ShardCmd::Resolve { budget, reply: rtx }))
                    .expect("shard worker terminated");
                rrx
            })
            .collect();
        ResolveHandle { rxs }
    }

    /// Runs budgeted incremental resolution on every shard in parallel
    /// and waits for all of them.
    pub fn resolve(&self, budget: ResolveBudget) -> ResolveReply {
        self.resolve_async(budget).wait()
    }

    /// Dispatches the cross-shard boundary pass — the stitcher ingests
    /// the pending suffix of the global stream and resolves to a
    /// fixpoint on its own thread — and returns without waiting.
    /// Lookups keep answering from the previous published view until
    /// the pass swaps its generation in.
    pub fn stitch_async(&self) -> StitchHandle {
        let mut st = self.state();
        self.dispatch_stitch(&mut st)
    }

    /// Runs the boundary pass and waits for its view to publish; once
    /// this returns, every record ingested before the call is part of
    /// the authoritative partition.
    pub fn stitch(&self) -> StitchReply {
        self.stitch_async().wait()
    }

    /// Looks up the entity of a record by global id. Records covered by
    /// the last published boundary pass answer from that immutable
    /// view; records still awaiting one answer from their shard,
    /// flagged provisional, with member ids translated to global ids.
    /// Never blocks on an in-flight stitch.
    pub fn lookup(&self, id: u32) -> Result<LookupReply> {
        let (shard, local, tx) = {
            let st = self.state();
            if (id as usize) >= st.route.len() {
                return Err(HeraError::UnknownId(format!("record {id}")));
            }
            let view = self.view();
            if (id as usize) < view.len() {
                let entity = view.entity_of(id);
                let members = view
                    .members_of(entity)
                    .expect("stitched root has a member list")
                    .to_vec();
                return Ok(LookupReply {
                    entity,
                    provisional: false,
                    members,
                });
            }
            let (shard, local) = st.route[id as usize];
            (shard as usize, local, st.shard_txs[shard as usize].clone())
        };
        // Outside the lock: the shard answers from whatever coherent
        // state its own command stream has reached — at least as new as
        // our bookkeeping read, possibly newer, never torn.
        let (rtx, rrx) = channel();
        tx.send((shard, ShardCmd::Lookup { local, reply: rtx }))
            .map_err(worker_gone)?;
        let (root, local_members) = rrx.recv().map_err(worker_gone)?;
        // Re-acquire to translate: the map is append-only, so every
        // local id the shard can name already has a global mapping.
        let st = self.state();
        let map = &st.local_to_global[shard];
        let mut members: Vec<u32> = local_members.iter().map(|&l| map[l as usize]).collect();
        members.sort_unstable();
        Ok(LookupReply {
            entity: map[root as usize],
            provisional: true,
            members,
        })
    }

    /// Members of a stitched entity by label (a stitched `Lookup`'s
    /// `entity` field), from the last published view.
    pub fn entity(&self, label: u32) -> Result<Vec<u32>> {
        self.view()
            .members_of(label)
            .map(<[u32]>::to_vec)
            .ok_or_else(|| HeraError::UnknownId(format!("entity {label}")))
    }

    /// The authoritative stitched partition (one vec of global ids per
    /// entity) as of the last published boundary pass — call
    /// [`ErService::stitch`] first for full coverage.
    pub fn stitched_partition(&self) -> Vec<Vec<u32>> {
        self.view().partition()
    }

    /// Service-wide counters as a JSON object (the `stats` reply body).
    pub fn stats(&self) -> Vec<(String, Json)> {
        let (records, pending, drained, schemas, rxs) = {
            let st = self.state();
            let rxs: Vec<Receiver<(usize, usize, u64)>> = st
                .shard_txs
                .iter()
                .enumerate()
                .map(|(shard, tx)| {
                    let (rtx, rrx) = channel();
                    tx.send((shard, ShardCmd::Stats { reply: rtx }))
                        .expect("shard worker terminated");
                    rrx
                })
                .collect();
            (
                st.route.len(),
                st.pending.len(),
                st.drained,
                st.schemas.len(),
                rxs,
            )
        };
        let shard_stats: Vec<Json> = rxs
            .into_iter()
            .map(|rx| {
                let (records, merges, comparisons) = rx.recv().expect("shard worker terminated");
                Json::Obj(vec![
                    ("records".into(), Json::Int(records as i64)),
                    ("merges".into(), Json::Int(merges as i64)),
                    ("comparisons".into(), Json::Int(comparisons as i64)),
                ])
            })
            .collect();
        let view = self.view();
        vec![
            ("records".into(), Json::Int(records as i64)),
            ("stitched".into(), Json::Int(view.len() as i64)),
            ("pending".into(), Json::Int(pending as i64)),
            (
                "stitching".into(),
                Json::Int(drained.saturating_sub(view.len()) as i64),
            ),
            ("schemas".into(), Json::Int(schemas as i64)),
            ("workers".into(), Json::Int(self.workers as i64)),
            ("passes".into(), Json::Int(view.passes() as i64)),
            ("shards".into(), Json::Arr(shard_stats)),
            (
                "stitcher_merges".into(),
                Json::Int(view.stitcher_merges() as i64),
            ),
        ]
    }

    /// Checkpoints the whole service: one snapshot per shard
    /// (`<path>.shard<i>`), one for the stitcher (`<path>.stitcher`),
    /// then the manifest at `path` — all atomic, CRC-checked, and
    /// retried under the builder's policy.
    ///
    /// Safe to race with live ingest: the snapshot commands and the
    /// manifest's bookkeeping clone are taken under **one** hold of the
    /// state lock, and each worker channel is FIFO — so every session
    /// snapshot captures exactly the records the manifest's routing
    /// table says it should, no matter what other threads ingest while
    /// the snapshots are being written. The manifest is written last,
    /// after every session snapshot has succeeded, so a crash or
    /// injected fault mid-checkpoint never publishes a manifest
    /// pointing at a torn shard set.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let (rxs, stitch_rx, schemas, route, pending) = {
            let st = self.state();
            let rxs: Vec<Receiver<Result<()>>> = st
                .shard_txs
                .iter()
                .enumerate()
                .map(|(shard, tx)| {
                    let (rtx, rrx) = channel();
                    tx.send((
                        shard,
                        ShardCmd::Checkpoint {
                            path: shard_path(path, shard),
                            reply: rtx,
                        },
                    ))
                    .map_err(worker_gone)?;
                    Ok(rrx)
                })
                .collect::<Result<_>>()?;
            let (rtx, rrx) = channel();
            st.stitch_tx
                .send(StitchCmd::Checkpoint {
                    path: stitcher_path(path),
                    reply: rtx,
                })
                .map_err(worker_gone)?;
            (
                rxs,
                rrx,
                st.schemas.clone(),
                st.route.clone(),
                st.pending.clone(),
            )
        };
        for rx in rxs {
            rx.recv().map_err(worker_gone)??;
        }
        stitch_rx.recv().map_err(worker_gone)??;

        let mut manifest = Snapshot::new();
        manifest.insert(
            "service",
            Json::Obj(vec![
                ("shards".into(), Json::Int(self.shards as i64)),
                ("stitch_every".into(), Json::Int(self.stitch_every as i64)),
            ]),
        );
        manifest.insert(
            "schemas",
            Json::Arr(
                schemas
                    .iter()
                    .map(|(name, attrs)| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(name.clone())),
                            (
                                "attrs".into(),
                                Json::Arr(attrs.iter().map(|a| Json::Str(a.clone())).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        );
        manifest.insert(
            "route",
            Json::Arr(
                route
                    .iter()
                    .map(|&(shard, _)| Json::Int(shard as i64))
                    .collect(),
            ),
        );
        manifest.insert(
            "pending",
            Json::Arr(
                pending
                    .iter()
                    .map(|(schema, values)| {
                        Json::Obj(vec![
                            ("schema".into(), Json::Int(schema.index() as i64)),
                            (
                                "values".into(),
                                Json::Arr(values.iter().map(Value::to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        );
        hera_faults::retry(
            &self.retry,
            self.clock.as_ref(),
            |_| manifest.write_with(path, &self.faults),
            io_retryable,
        )
        .map_err(|e| HeraError::CheckpointFailed {
            attempts: e.attempts,
            cause: Box::new(e.error),
        })?;
        Ok(())
    }

    /// Handles one protocol request, returning the response object and
    /// whether the service should keep running. Every request lands one
    /// `serve_request` audit line in the journal.
    pub fn handle(&self, request: &Request) -> (Json, bool) {
        let (response, keep_going) = self.dispatch(request);
        let outcome = matches!(response.get("ok"), Some(Json::Bool(true)));
        self.recorder.emit(
            "serve_request",
            vec![
                ("cmd", Json::Str(cmd_name(request).into())),
                ("ok", Json::Bool(outcome)),
            ],
        );
        self.recorder.flush();
        (response, keep_going)
    }

    fn dispatch(&self, request: &Request) -> (Json, bool) {
        let response = match request {
            Request::Schema { name, attrs } => {
                let id = self.add_schema(name, attrs);
                ok(vec![("schema".into(), Json::Int(id.index() as i64))])
            }
            Request::Ingest { schema, values } => {
                match self.ingest(SchemaId::new(*schema), values.clone()) {
                    Ok(r) => ingest_fields(&[r]),
                    Err(e) => err(e),
                }
            }
            Request::Batch { records } => {
                let mut replies = Vec::with_capacity(records.len());
                let mut failed = None;
                for (schema, values) in records {
                    match self.ingest(SchemaId::new(*schema), values.clone()) {
                        Ok(r) => replies.push(r),
                        Err(e) => {
                            failed = Some((replies.len(), e));
                            break;
                        }
                    }
                }
                match failed {
                    // Ingest is per-record: a mid-batch failure keeps the
                    // accepted prefix and reports where it stopped.
                    Some((at, e)) => err(format!("record {at}: {e} ({at} accepted)")),
                    None => ingest_fields(&replies),
                }
            }
            Request::Resolve { budget } => {
                let r = self.resolve(*budget);
                ok(vec![
                    ("merges".into(), Json::Int(r.merges as i64)),
                    ("comparisons".into(), Json::Int(r.comparisons as i64)),
                    ("exhausted".into(), Json::Bool(r.exhausted)),
                ])
            }
            Request::Stitch => {
                let r = self.stitch();
                ok(vec![
                    ("ingested".into(), Json::Int(r.ingested as i64)),
                    ("merges".into(), Json::Int(r.report.merges as i64)),
                    ("stitched".into(), Json::Int(self.stitched_len() as i64)),
                ])
            }
            Request::Lookup { id } => match self.lookup(*id) {
                Ok(r) => ok(vec![
                    ("entity".into(), Json::Int(r.entity as i64)),
                    ("provisional".into(), Json::Bool(r.provisional)),
                    (
                        "members".into(),
                        Json::Arr(r.members.iter().map(|&m| Json::Int(m as i64)).collect()),
                    ),
                ]),
                Err(e) => err(e),
            },
            Request::Entity { label } => match self.entity(*label) {
                Ok(members) => ok(vec![(
                    "members".into(),
                    Json::Arr(members.iter().map(|&m| Json::Int(m as i64)).collect()),
                )]),
                Err(e) => err(e),
            },
            Request::Stats => ok(self.stats()),
            Request::Checkpoint { path } => match self.checkpoint(path) {
                Ok(()) => ok(vec![("path".into(), Json::Str(path.clone()))]),
                Err(e) => err(e),
            },
            Request::Shutdown => return (ok(vec![("bye".into(), Json::Bool(true))]), false),
        };
        (response, true)
    }
}

impl Drop for ErService {
    /// Shuts the workers down and joins them. A worker mid-command
    /// (e.g. a long stitch) finishes it first — `Shutdown` queues
    /// behind everything already sent.
    fn drop(&mut self) {
        {
            let st = self
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for tx in &st.worker_txs {
                tx.send((usize::MAX, ShardCmd::Shutdown)).ok();
            }
            st.stitch_tx.send(StitchCmd::Shutdown).ok();
        }
        for handle in self.handles.drain(..) {
            handle.join().ok();
        }
    }
}

fn cmd_name(request: &Request) -> &'static str {
    match request {
        Request::Schema { .. } => "schema",
        Request::Ingest { .. } => "ingest",
        Request::Batch { .. } => "batch",
        Request::Resolve { .. } => "resolve",
        Request::Stitch => "stitch",
        Request::Lookup { .. } => "lookup",
        Request::Entity { .. } => "entity",
        Request::Stats => "stats",
        Request::Checkpoint { .. } => "checkpoint",
        Request::Shutdown => "shutdown",
    }
}

fn ingest_fields(replies: &[IngestReply]) -> Json {
    let mut fields = vec![(
        "ids".to_string(),
        Json::Arr(replies.iter().map(|r| Json::Int(r.id as i64)).collect()),
    )];
    if let [only] = replies {
        fields.push(("id".into(), Json::Int(only.id as i64)));
        fields.push(("shard".into(), Json::Int(only.shard as i64)));
    }
    if replies.iter().any(|r| r.stitched) {
        fields.push(("stitched".into(), Json::Bool(true)));
    }
    ok(fields)
}
