//! The sharded ER service: N per-shard [`HeraSession`]s behind a
//! blocking-key router, plus a *stitcher* session that replays the
//! global arrival stream to resolve across shard boundaries.
//!
//! # Sharding model
//!
//! Each arriving record routes to one shard by
//! [`hera_block::route_shard`] — a pure function of its values — and
//! joins only that shard's live universe, so per-record ingest cost
//! scales with the shard's value universe, not the service's. Shard
//! resolution ([`ErService::resolve`]) is budgeted, incremental, and
//! *provisional*: two duplicates routed to different shards cannot merge
//! there.
//!
//! The boundary pass ([`ErService::stitch`]) fixes that without new
//! machinery: a dedicated single-shard session (the stitcher) ingests
//! the pending suffix of the global stream — same records, same order,
//! global record ids — and resolves with the ordinary union-find +
//! schema-vote pipeline. The stitched partition is therefore *by
//! construction* the partition a single-shard session would have
//! produced on the same stream: sharding never changes answers, only
//! when they arrive. Shards answer between passes (flagged
//! `provisional`); the stitcher answers for everything it has seen.
//!
//! Determinism carries over from the sessions: the same request
//! sequence produces the same replies, entities, and journal at any
//! thread count.

use crate::protocol::{err, ok, Request};
use hera_block::route_shard;
use hera_core::{HeraConfig, HeraSession, ProgressiveReport, ResolveBudget};
use hera_faults::{io_retryable, BackoffPolicy, Clock, FaultInjector, SystemClock};
use hera_obs::Recorder;
use hera_store::Snapshot;
use hera_types::json::Json;
use hera_types::{HeraError, RecordId, Result, SchemaId, Value};
use std::path::Path;
use std::sync::Arc;

/// Builder for [`ErService`] — shard count, cadence, and the fault /
/// journal plumbing threaded into every session.
pub struct ErServiceBuilder {
    config: HeraConfig,
    shards: usize,
    stitch_every: usize,
    recorder: Recorder,
    faults: FaultInjector,
    retry: BackoffPolicy,
    clock: Arc<dyn Clock>,
}

impl ErServiceBuilder {
    fn new(config: HeraConfig, shards: usize) -> Self {
        Self {
            config,
            shards,
            stitch_every: 0,
            recorder: Recorder::disabled(),
            faults: FaultInjector::disabled(),
            retry: BackoffPolicy::checkpoint_default(),
            clock: Arc::new(SystemClock),
        }
    }

    /// Runs the boundary pass automatically once this many records are
    /// pending (0, the default, stitches only on explicit request).
    pub fn stitch_every(mut self, records: usize) -> Self {
        self.stitch_every = records;
        self
    }

    /// Attaches the audit journal: every protocol request and boundary
    /// pass emits through it, alongside the sessions' own events.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Threads a fault injector into every snapshot write/read.
    pub fn faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Retry policy for checkpoint IO (default
    /// [`BackoffPolicy::checkpoint_default`]).
    pub fn retry(mut self, policy: BackoffPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Delay source behind retry backoff (tests inject a manual clock).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    fn session(&self) -> HeraSession {
        HeraSession::builder(self.config.clone())
            .recorder(self.recorder.clone())
            .faults(self.faults.clone())
            .retry(self.retry)
            .clock(self.clock.clone())
            .build()
    }

    /// Builds an empty service.
    pub fn build(self) -> ErService {
        let shards = (0..self.shards).map(|_| self.session()).collect();
        let stitcher = self.session();
        ErService {
            shards,
            stitcher,
            schemas: Vec::new(),
            route: Vec::new(),
            local_to_global: vec![Vec::new(); self.shards],
            pending: Vec::new(),
            builder: self,
        }
    }

    /// Builds a service whose state is loaded from a checkpoint written
    /// by [`ErService::checkpoint`] — manifest plus one snapshot per
    /// shard and one for the stitcher, all beside `path`. The builder's
    /// config and shard count must match the checkpointing service's.
    pub fn restore(self, path: impl AsRef<Path>) -> Result<ErService> {
        let path = path.as_ref();
        let manifest = Snapshot::read_with(path, &self.faults)?;
        let snap_shards = manifest.expect("service")?.expect("shards")?.as_u32()? as usize;
        if snap_shards != self.shards {
            return Err(HeraError::InvalidConfig(format!(
                "checkpoint has {snap_shards} shard(s) but the restore asked for {}; \
                 record routing is shard-count-dependent",
                self.shards
            )));
        }
        let mut schemas = Vec::new();
        for s in manifest.expect("schemas")?.as_arr()? {
            let name = s.expect("name")?.as_str()?.to_string();
            let attrs = s
                .expect("attrs")?
                .as_arr()?
                .iter()
                .map(|a| Ok(a.as_str()?.to_string()))
                .collect::<Result<Vec<_>>>()?;
            schemas.push((name, attrs));
        }
        let mut route = Vec::new();
        let mut local_to_global: Vec<Vec<u32>> = vec![Vec::new(); self.shards];
        for r in manifest.expect("route")?.as_arr()? {
            let shard = r.as_u32()? as usize;
            if shard >= self.shards {
                return Err(HeraError::Corrupt(format!(
                    "route entry names shard {shard} of {}",
                    self.shards
                )));
            }
            let global = route.len() as u32;
            route.push((shard as u32, local_to_global[shard].len() as u32));
            local_to_global[shard].push(global);
        }
        let mut pending = Vec::new();
        for p in manifest.expect("pending")?.as_arr()? {
            let schema = p.expect("schema")?.as_u32()?;
            let values = p
                .expect("values")?
                .as_arr()?
                .iter()
                .map(Value::from_json)
                .collect::<Result<Vec<_>>>()?;
            pending.push((SchemaId::new(schema), values));
        }

        let shards = (0..self.shards)
            .map(|i| self.restore_session(&shard_path(path, i)))
            .collect::<Result<Vec<_>>>()?;
        let stitcher = self.restore_session(&stitcher_path(path))?;

        for (i, shard) in shards.iter().enumerate() {
            if shard.len() != local_to_global[i].len() {
                return Err(HeraError::Corrupt(format!(
                    "shard {i} snapshot holds {} record(s), route says {}",
                    shard.len(),
                    local_to_global[i].len()
                )));
            }
        }
        if stitcher.len() + pending.len() != route.len() {
            return Err(HeraError::Corrupt(format!(
                "stitcher has {} record(s) and {} pending, route says {}",
                stitcher.len(),
                pending.len(),
                route.len()
            )));
        }

        Ok(ErService {
            shards,
            stitcher,
            schemas,
            route,
            local_to_global,
            pending,
            builder: self,
        })
    }

    fn restore_session(&self, path: &std::path::PathBuf) -> Result<HeraSession> {
        HeraSession::builder(self.config.clone())
            .recorder(self.recorder.clone())
            .faults(self.faults.clone())
            .retry(self.retry)
            .clock(self.clock.clone())
            .restore(path)
    }
}

fn shard_path(manifest: &Path, shard: usize) -> std::path::PathBuf {
    let mut p = manifest.as_os_str().to_owned();
    p.push(format!(".shard{shard}"));
    p.into()
}

fn stitcher_path(manifest: &Path) -> std::path::PathBuf {
    let mut p = manifest.as_os_str().to_owned();
    p.push(".stitcher");
    p.into()
}

/// Reply to [`ErService::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReply {
    /// Global record id (dense, arrival-ordered — the protocol's `id`).
    pub id: u32,
    /// Shard the record routed to.
    pub shard: u32,
    /// Whether this ingest tripped the automatic boundary pass.
    pub stitched: bool,
}

/// Reply to [`ErService::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupReply {
    /// Entity label: a global record id — the cluster representative's
    /// id when stitched, the shard-root's global id when provisional.
    pub entity: u32,
    /// True when the record has not been through a boundary pass yet:
    /// the entity reflects one shard's view and may change (only by
    /// growing or relabeling, never splitting) at the next stitch.
    pub provisional: bool,
    /// Global ids of the entity's known members, ascending.
    pub members: Vec<u32>,
}

/// Reply to [`ErService::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveReply {
    /// Merges applied across all shards.
    pub merges: usize,
    /// Comparisons spent across all shards.
    pub comparisons: u64,
    /// True when any shard's budget ran out before its fixpoint.
    pub exhausted: bool,
    /// Per-shard progressive reports, shard-ordered.
    pub per_shard: Vec<ProgressiveReport>,
}

/// Reply to [`ErService::stitch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchReply {
    /// Records the boundary pass ingested (the pending suffix).
    pub ingested: usize,
    /// The stitcher's resolution report for the pass.
    pub report: ProgressiveReport,
}

/// A long-lived sharded ER service — see the module docs for the model.
pub struct ErService {
    shards: Vec<HeraSession>,
    /// Single-shard session over the whole global stream, fed lazily at
    /// boundary passes; its record ids *are* the global ids.
    stitcher: HeraSession,
    /// Registered schemas (name, attrs), id-ordered — kept for the
    /// checkpoint manifest so a restored service can validate requests.
    schemas: Vec<(String, Vec<String>)>,
    /// Global id → (shard, local id).
    route: Vec<(u32, u32)>,
    /// Per-shard local id → global id.
    local_to_global: Vec<Vec<u32>>,
    /// Records ingested since the last boundary pass, global-id-ordered
    /// (global id = stitcher.len() + position).
    pending: Vec<(SchemaId, Vec<Value>)>,
    builder: ErServiceBuilder,
}

impl ErService {
    /// Starts building a service with `shards` shard sessions.
    ///
    /// # Panics
    /// When `shards` is zero.
    pub fn builder(config: HeraConfig, shards: usize) -> ErServiceBuilder {
        assert!(shards > 0, "a service needs at least one shard");
        ErServiceBuilder::new(config, shards)
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records ingested over the service's lifetime.
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// True before the first ingest.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// Records awaiting their first boundary pass.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Registers a schema in every shard and the stitcher; ids are
    /// assigned densely in registration order, identical across all
    /// sessions.
    pub fn add_schema(&mut self, name: &str, attrs: &[String]) -> SchemaId {
        let id = self.stitcher.add_schema(name.to_string(), attrs.to_vec());
        for shard in &mut self.shards {
            let shard_id = shard.add_schema(name.to_string(), attrs.to_vec());
            debug_assert_eq!(shard_id, id);
        }
        self.schemas.push((name.to_string(), attrs.to_vec()));
        id
    }

    /// Ingests one record: routes it by blocking key, joins it into its
    /// shard, and queues it for the next boundary pass. Trips an
    /// automatic stitch when the builder's `stitch_every` threshold
    /// fills.
    pub fn ingest(&mut self, schema: SchemaId, values: Vec<Value>) -> Result<IngestReply> {
        let shard = route_shard(&values, self.shards.len());
        // The shard session validates schema and arity; bookkeeping only
        // happens once it has accepted the record.
        let local = self.shards[shard].add_record(schema, values.clone())?;
        let global = self.route.len() as u32;
        self.route.push((shard as u32, local.raw()));
        self.local_to_global[shard].push(global);
        self.pending.push((schema, values));
        let mut stitched = false;
        if self.builder.stitch_every > 0 && self.pending.len() >= self.builder.stitch_every {
            self.stitch();
            stitched = true;
        }
        Ok(IngestReply {
            id: global,
            shard: shard as u32,
            stitched,
        })
    }

    /// Runs budgeted incremental resolution on every shard (each shard
    /// gets the full `budget` — the schedule inside a shard is the
    /// session's usual deterministic one).
    pub fn resolve(&mut self, budget: ResolveBudget) -> ResolveReply {
        let per_shard: Vec<ProgressiveReport> = self
            .shards
            .iter_mut()
            .map(|s| s.resolve_progressive(budget))
            .collect();
        ResolveReply {
            merges: per_shard.iter().map(|r| r.merges).sum(),
            comparisons: per_shard.iter().map(|r| r.comparisons_spent).sum(),
            exhausted: per_shard.iter().any(|r| r.exhausted),
            per_shard,
        }
    }

    /// The cross-shard boundary pass: the stitcher ingests the pending
    /// suffix of the global stream and resolves to a fixpoint, making
    /// every record seen so far part of the authoritative partition.
    pub fn stitch(&mut self) -> StitchReply {
        let pending = std::mem::take(&mut self.pending);
        let ingested = pending.len();
        for (schema, values) in pending {
            self.stitcher
                .add_record(schema, values)
                .expect("stitcher schemas mirror the shards'");
        }
        let report = self
            .stitcher
            .resolve_progressive(ResolveBudget::unlimited());
        self.builder.recorder.emit(
            "serve_stitch",
            vec![
                ("ingested", Json::Int(ingested as i64)),
                ("merges", Json::Int(report.merges as i64)),
                ("stitched_total", Json::Int(self.stitcher.len() as i64)),
            ],
        );
        self.builder.recorder.flush();
        StitchReply { ingested, report }
    }

    /// Looks up the entity of a record by global id. Stitched records
    /// answer from the authoritative partition; records still awaiting a
    /// boundary pass answer from their shard, flagged provisional, with
    /// member ids translated to global ids.
    pub fn lookup(&self, id: u32) -> Result<LookupReply> {
        if (id as usize) >= self.route.len() {
            return Err(HeraError::UnknownId(format!("record {id}")));
        }
        if (id as usize) < self.stitcher.len() {
            let entity = self.stitcher.entity_of(RecordId::new(id));
            let members = self
                .stitcher
                .entity_members(entity)
                .expect("stitched root has a super record")
                .to_vec();
            return Ok(LookupReply {
                entity,
                provisional: false,
                members,
            });
        }
        let (shard, local) = self.route[id as usize];
        let session = &self.shards[shard as usize];
        let root = session.entity_of(RecordId::new(local));
        let map = &self.local_to_global[shard as usize];
        let mut members: Vec<u32> = session
            .entity_members(root)
            .expect("shard root has a super record")
            .iter()
            .map(|&l| map[l as usize])
            .collect();
        members.sort_unstable();
        Ok(LookupReply {
            entity: map[root as usize],
            provisional: true,
            members,
        })
    }

    /// Members of a stitched entity by label (a stitched `Lookup`'s
    /// `entity` field).
    pub fn entity(&self, label: u32) -> Result<&[u32]> {
        self.stitcher
            .entity_members(label)
            .ok_or_else(|| HeraError::UnknownId(format!("entity {label}")))
    }

    /// The authoritative stitched partition (one vec of global ids per
    /// entity). Runs no resolution — call [`ErService::stitch`] first
    /// for full coverage.
    pub fn stitched_partition(&mut self) -> Vec<Vec<u32>> {
        self.stitcher.clusters()
    }

    /// Service-wide counters as a JSON object (the `stats` reply body).
    pub fn stats(&self) -> Vec<(String, Json)> {
        let shard_stats: Vec<Json> = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("records".into(), Json::Int(s.len() as i64)),
                    ("merges".into(), Json::Int(s.stats().merges as i64)),
                    (
                        "comparisons".into(),
                        Json::Int(s.stats().comparisons as i64),
                    ),
                ])
            })
            .collect();
        vec![
            ("records".into(), Json::Int(self.route.len() as i64)),
            ("stitched".into(), Json::Int(self.stitcher.len() as i64)),
            ("pending".into(), Json::Int(self.pending.len() as i64)),
            ("schemas".into(), Json::Int(self.schemas.len() as i64)),
            ("shards".into(), Json::Arr(shard_stats)),
            (
                "stitcher_merges".into(),
                Json::Int(self.stitcher.stats().merges as i64),
            ),
        ]
    }

    /// Checkpoints the whole service: one snapshot per shard
    /// (`<path>.shard<i>`), one for the stitcher (`<path>.stitcher`),
    /// then the manifest at `path` — all atomic, CRC-checked, and
    /// retried under the builder's policy. The manifest is written last,
    /// so a crash mid-checkpoint never leaves a manifest pointing at
    /// missing session snapshots.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        for i in 0..self.shards.len() {
            let p = shard_path(path, i);
            self.shards[i].checkpoint(p)?;
        }
        self.stitcher.checkpoint(stitcher_path(path))?;

        let mut manifest = Snapshot::new();
        manifest.insert(
            "service",
            Json::Obj(vec![
                ("shards".into(), Json::Int(self.shards.len() as i64)),
                (
                    "stitch_every".into(),
                    Json::Int(self.builder.stitch_every as i64),
                ),
            ]),
        );
        manifest.insert(
            "schemas",
            Json::Arr(
                self.schemas
                    .iter()
                    .map(|(name, attrs)| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(name.clone())),
                            (
                                "attrs".into(),
                                Json::Arr(attrs.iter().map(|a| Json::Str(a.clone())).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        );
        manifest.insert(
            "route",
            Json::Arr(
                self.route
                    .iter()
                    .map(|&(shard, _)| Json::Int(shard as i64))
                    .collect(),
            ),
        );
        manifest.insert(
            "pending",
            Json::Arr(
                self.pending
                    .iter()
                    .map(|(schema, values)| {
                        Json::Obj(vec![
                            ("schema".into(), Json::Int(schema.index() as i64)),
                            (
                                "values".into(),
                                Json::Arr(values.iter().map(Value::to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        );
        hera_faults::retry(
            &self.builder.retry,
            self.builder.clock.as_ref(),
            |_| manifest.write_with(path, &self.builder.faults),
            io_retryable,
        )
        .map_err(|e| HeraError::CheckpointFailed {
            attempts: e.attempts,
            cause: Box::new(e.error),
        })?;
        Ok(())
    }

    /// Handles one protocol request, returning the response object and
    /// whether the service should keep running. Every request lands one
    /// `serve_request` audit line in the journal.
    pub fn handle(&mut self, request: &Request) -> (Json, bool) {
        let (response, keep_going) = self.dispatch(request);
        let outcome = matches!(response.get("ok"), Some(Json::Bool(true)));
        self.builder.recorder.emit(
            "serve_request",
            vec![
                ("cmd", Json::Str(cmd_name(request).into())),
                ("ok", Json::Bool(outcome)),
            ],
        );
        self.builder.recorder.flush();
        (response, keep_going)
    }

    fn dispatch(&mut self, request: &Request) -> (Json, bool) {
        let response = match request {
            Request::Schema { name, attrs } => {
                let id = self.add_schema(name, attrs);
                ok(vec![("schema".into(), Json::Int(id.index() as i64))])
            }
            Request::Ingest { schema, values } => {
                match self.ingest(SchemaId::new(*schema), values.clone()) {
                    Ok(r) => ingest_fields(&[r]),
                    Err(e) => err(e),
                }
            }
            Request::Batch { records } => {
                let mut replies = Vec::with_capacity(records.len());
                let mut failed = None;
                for (schema, values) in records {
                    match self.ingest(SchemaId::new(*schema), values.clone()) {
                        Ok(r) => replies.push(r),
                        Err(e) => {
                            failed = Some((replies.len(), e));
                            break;
                        }
                    }
                }
                match failed {
                    // Ingest is per-record: a mid-batch failure keeps the
                    // accepted prefix and reports where it stopped.
                    Some((at, e)) => err(format!("record {at}: {e} ({at} accepted)")),
                    None => ingest_fields(&replies),
                }
            }
            Request::Resolve { budget } => {
                let r = self.resolve(*budget);
                ok(vec![
                    ("merges".into(), Json::Int(r.merges as i64)),
                    ("comparisons".into(), Json::Int(r.comparisons as i64)),
                    ("exhausted".into(), Json::Bool(r.exhausted)),
                ])
            }
            Request::Stitch => {
                let r = self.stitch();
                ok(vec![
                    ("ingested".into(), Json::Int(r.ingested as i64)),
                    ("merges".into(), Json::Int(r.report.merges as i64)),
                    ("stitched".into(), Json::Int(self.stitcher.len() as i64)),
                ])
            }
            Request::Lookup { id } => match self.lookup(*id) {
                Ok(r) => ok(vec![
                    ("entity".into(), Json::Int(r.entity as i64)),
                    ("provisional".into(), Json::Bool(r.provisional)),
                    (
                        "members".into(),
                        Json::Arr(r.members.iter().map(|&m| Json::Int(m as i64)).collect()),
                    ),
                ]),
                Err(e) => err(e),
            },
            Request::Entity { label } => match self.entity(*label) {
                Ok(members) => ok(vec![(
                    "members".into(),
                    Json::Arr(members.iter().map(|&m| Json::Int(m as i64)).collect()),
                )]),
                Err(e) => err(e),
            },
            Request::Stats => ok(self.stats()),
            Request::Checkpoint { path } => match self.checkpoint(path) {
                Ok(()) => ok(vec![("path".into(), Json::Str(path.clone()))]),
                Err(e) => err(e),
            },
            Request::Shutdown => return (ok(vec![("bye".into(), Json::Bool(true))]), false),
        };
        (response, true)
    }
}

fn cmd_name(request: &Request) -> &'static str {
    match request {
        Request::Schema { .. } => "schema",
        Request::Ingest { .. } => "ingest",
        Request::Batch { .. } => "batch",
        Request::Resolve { .. } => "resolve",
        Request::Stitch => "stitch",
        Request::Lookup { .. } => "lookup",
        Request::Entity { .. } => "entity",
        Request::Stats => "stats",
        Request::Checkpoint { .. } => "checkpoint",
        Request::Shutdown => "shutdown",
    }
}

fn ingest_fields(replies: &[IngestReply]) -> Json {
    let mut fields = vec![(
        "ids".to_string(),
        Json::Arr(replies.iter().map(|r| Json::Int(r.id as i64)).collect()),
    )];
    if let [only] = replies {
        fields.push(("id".into(), Json::Int(only.id as i64)));
        fields.push(("shard".into(), Json::Int(only.shard as i64)));
    }
    if replies.iter().any(|r| r.stitched) {
        fields.push(("stitched".into(), Json::Bool(true)));
    }
    ok(fields)
}
