//! Worker threads behind the concurrent [`ErService`]: per-shard
//! session ownership, command channels, and the double-buffered
//! stitched view.
//!
//! # Ownership map
//!
//! * Each **shard worker thread** exclusively owns one or more shard
//!   [`HeraSession`]s (shard *i* lives on worker `i % workers`). Nothing
//!   else ever touches a shard session: ingest, budgeted resolve,
//!   provisional lookup, and checkpoint all arrive as [`ShardCmd`]
//!   messages on the worker's channel and are executed by the owning
//!   thread. `HeraSession` is `Send` but deliberately not `Sync`, so
//!   this is the only shape concurrent access can take — the compiler
//!   enforces the ownership map.
//! * The **stitch worker thread** exclusively owns the stitcher session
//!   and is the only writer of the published [`StitchedView`].
//! * The **front end** ([`ErService`](crate::service::ErService)) owns
//!   only bookkeeping (routing table, pending suffix, schema list)
//!   behind a mutex, and the read side of the published view.
//!
//! # Channel topology
//!
//! One unbounded mpsc channel per worker thread; the service holds one
//! sender *per shard* (shards on the same worker share a channel), so a
//! shard's command stream is FIFO. All sends happen while the service's
//! bookkeeping lock is held, which makes every channel's order a
//! projection of one global arrival order — per-shard determinism needs
//! nothing more.
//!
//! # Stitch double buffer
//!
//! The boundary pass never blocks lookups. The stitch worker replays
//! the drained pending suffix into the stitcher, resolves to fixpoint,
//! builds a complete [`StitchedView`] (entity labels, member lists, the
//! full partition), and *then* swaps it into the published slot under a
//! write lock held only for the pointer swap. Readers clone the `Arc`
//! out under the read lock and answer from an immutable generation —
//! a lookup can observe the pass-*k* or pass-*k+1* view, never a
//! mixture.

use crate::service::StitchReply;
use hera_core::{HeraSession, ProgressiveReport, ResolveBudget};
use hera_obs::Recorder;
use hera_types::json::Json;
use hera_types::{RecordId, Result, SchemaId, Value};
use rustc_hash::FxHashMap;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

/// Commands a shard worker executes against the sessions it owns.
/// Every variant but `Shutdown` names its shard (workers can own
/// several); replies ride one-shot mpsc channels.
pub(crate) enum ShardCmd {
    /// Ingest one record. Pre-validated by the front end (schema id and
    /// arity checked against the service's schema list), so the
    /// worker-side `add_record` cannot fail; fire-and-forget.
    Ingest {
        /// Schema the record arrives under.
        schema: SchemaId,
        /// The record's values.
        values: Vec<Value>,
    },
    /// Run one budgeted progressive resolve on the shard.
    Resolve {
        /// Per-request budget.
        budget: ResolveBudget,
        /// Where the report goes.
        reply: Sender<ProgressiveReport>,
    },
    /// Provisional lookup: local root and members, in local ids.
    Lookup {
        /// Shard-local record id.
        local: u32,
        /// `(root local id, member local ids ascending)`.
        reply: Sender<(u32, Vec<u32>)>,
    },
    /// Shard-session counters for the `stats` reply.
    Stats {
        /// `(records, merges, comparisons)`.
        reply: Sender<(usize, usize, u64)>,
    },
    /// Snapshot the shard session at `path`.
    Checkpoint {
        /// Snapshot path (the service derives it from the manifest path).
        path: PathBuf,
        /// Outcome of the (internally retried) write.
        reply: Sender<Result<()>>,
    },
    /// Mirror a schema registration (ids stay dense and identical
    /// across sessions because all sends happen under the service's
    /// bookkeeping lock, in one global order).
    Schema {
        /// Source name.
        name: String,
        /// Attribute names.
        attrs: Vec<String>,
    },
    /// Stop the worker thread (sent once per worker, on service drop).
    Shutdown,
}

/// A message on a worker channel: which shard, and what to do.
pub(crate) type ShardMsg = (usize, ShardCmd);

/// What [`spawn_shard_workers`] hands back: one sender per *shard*
/// (shards on the same worker share a channel), one sender per *worker*
/// (for shutdown), and the worker join handles.
pub(crate) type ShardWorkers = (
    Vec<Sender<ShardMsg>>,
    Vec<Sender<ShardMsg>>,
    Vec<JoinHandle<()>>,
);

/// Spawns `workers` shard-worker threads owning `sessions` (shard `i`
/// on worker `i % workers`).
pub(crate) fn spawn_shard_workers(sessions: Vec<HeraSession>, workers: usize) -> ShardWorkers {
    let shards = sessions.len();
    let workers = workers.clamp(1, shards.max(1));
    let mut owned: Vec<FxHashMap<usize, HeraSession>> =
        (0..workers).map(|_| FxHashMap::default()).collect();
    for (i, s) in sessions.into_iter().enumerate() {
        owned[i % workers].insert(i, s);
    }
    let mut worker_txs = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for (w, sessions) in owned.into_iter().enumerate() {
        let (tx, rx) = channel::<ShardMsg>();
        worker_txs.push(tx);
        let handle = std::thread::Builder::new()
            .name(format!("hera-shard-{w}"))
            .spawn(move || shard_worker_loop(sessions, rx))
            .expect("spawn shard worker");
        handles.push(handle);
    }
    let shard_txs = (0..shards)
        .map(|i| worker_txs[i % workers].clone())
        .collect();
    (shard_txs, worker_txs, handles)
}

/// The shard worker body: drain commands until `Shutdown` or every
/// sender is gone. Replies to droped callers are discarded (`.ok()`),
/// so an abandoned request can never wedge the worker.
fn shard_worker_loop(mut sessions: FxHashMap<usize, HeraSession>, rx: Receiver<ShardMsg>) {
    while let Ok((shard, cmd)) = rx.recv() {
        if matches!(cmd, ShardCmd::Shutdown) {
            break;
        }
        let session = sessions
            .get_mut(&shard)
            .expect("command routed to a worker that owns the shard");
        match cmd {
            ShardCmd::Ingest { schema, values } => {
                // The front end validated schema + arity under its
                // bookkeeping lock before routing, so failure here is a
                // service-level bug, not bad client input.
                session
                    .add_record(schema, values)
                    .expect("front-end-validated ingest");
            }
            ShardCmd::Resolve { budget, reply } => {
                reply.send(session.resolve_progressive(budget)).ok();
            }
            ShardCmd::Lookup { local, reply } => {
                let root = session.entity_of(RecordId::new(local));
                let members = session
                    .entity_members(root)
                    .expect("shard root has a super record")
                    .to_vec();
                reply.send((root, members)).ok();
            }
            ShardCmd::Stats { reply } => {
                let stats = session.stats();
                reply
                    .send((session.len(), stats.merges, stats.comparisons as u64))
                    .ok();
            }
            ShardCmd::Checkpoint { path, reply } => {
                reply.send(session.checkpoint(path)).ok();
            }
            ShardCmd::Schema { name, attrs } => {
                session.add_schema(name, attrs);
            }
            ShardCmd::Shutdown => unreachable!("handled above"),
        }
    }
}

/// Commands for the stitch worker.
pub(crate) enum StitchCmd {
    /// Mirror a schema registration.
    Schema {
        /// Source name.
        name: String,
        /// Attribute names.
        attrs: Vec<String>,
    },
    /// One boundary pass: replay `records` (the drained pending suffix,
    /// in global arrival order), resolve to fixpoint, publish a fresh
    /// [`StitchedView`], then reply.
    Stitch {
        /// The drained global-stream suffix.
        records: Vec<(SchemaId, Vec<Value>)>,
        /// Where the pass report goes (auto-stitches drop the receiver).
        reply: Sender<StitchReply>,
    },
    /// Snapshot the stitcher session at `path`.
    Checkpoint {
        /// Snapshot path.
        path: PathBuf,
        /// Outcome of the write.
        reply: Sender<Result<()>>,
    },
    /// Stop the stitch worker (on service drop).
    Shutdown,
}

/// One published generation of the authoritative cross-shard partition:
/// everything a lookup needs, immutable, behind an `Arc`. Built by the
/// stitch worker after each boundary pass and swapped in atomically.
pub(crate) struct StitchedView {
    /// Global ids `< entity.len()` are covered by this generation.
    entity: Vec<u32>,
    /// Entity label → member global ids, ascending.
    members: FxHashMap<u32, Vec<u32>>,
    /// The full partition, in [`HeraSession::clusters`] order.
    partition: Vec<Vec<u32>>,
    /// Stitcher-session lifetime merge count at publish time.
    stitcher_merges: usize,
    /// Boundary passes published so far (generation counter).
    passes: u64,
}

impl StitchedView {
    /// Records this generation covers.
    pub(crate) fn len(&self) -> usize {
        self.entity.len()
    }

    /// Entity label of a covered global id.
    pub(crate) fn entity_of(&self, id: u32) -> u32 {
        self.entity[id as usize]
    }

    /// Members of an entity by label.
    pub(crate) fn members_of(&self, label: u32) -> Option<&[u32]> {
        self.members.get(&label).map(|m| m.as_slice())
    }

    /// The whole partition (cloned).
    pub(crate) fn partition(&self) -> Vec<Vec<u32>> {
        self.partition.clone()
    }

    /// Stitcher merges at publish time.
    pub(crate) fn stitcher_merges(&self) -> usize {
        self.stitcher_merges
    }

    /// Published boundary passes.
    pub(crate) fn passes(&self) -> u64 {
        self.passes
    }

    /// Captures the stitcher's current partition as generation `passes`.
    fn capture(stitcher: &mut HeraSession, passes: u64) -> Self {
        let partition = stitcher.clusters();
        let len = stitcher.len();
        let entity: Vec<u32> = (0..len as u32)
            .map(|id| stitcher.entity_of(RecordId::new(id)))
            .collect();
        let mut members = FxHashMap::default();
        for cluster in &partition {
            members.insert(entity[cluster[0] as usize], cluster.clone());
        }
        StitchedView {
            entity,
            members,
            partition,
            stitcher_merges: stitcher.stats().merges,
            passes,
        }
    }
}

/// The published-view slot: readers clone the inner `Arc` under a read
/// lock; the stitch worker swaps a fresh generation in under a write
/// lock held only for the assignment.
pub(crate) type Published = Arc<RwLock<Arc<StitchedView>>>;

/// Spawns the stitch worker owning `stitcher`. The initial published
/// view is captured from the session *before* the handoff, so a
/// restored service answers stitched lookups immediately.
pub(crate) fn spawn_stitch_worker(
    mut stitcher: HeraSession,
    recorder: Recorder,
) -> (Sender<StitchCmd>, Published, JoinHandle<()>) {
    let initial_passes = u64::from(!stitcher.is_empty());
    let published: Published = Arc::new(RwLock::new(Arc::new(StitchedView::capture(
        &mut stitcher,
        initial_passes,
    ))));
    let slot = published.clone();
    let (tx, rx) = channel::<StitchCmd>();
    let handle = std::thread::Builder::new()
        .name("hera-stitcher".into())
        .spawn(move || stitch_worker_loop(stitcher, slot, recorder, rx, initial_passes))
        .expect("spawn stitch worker");
    (tx, published, handle)
}

fn stitch_worker_loop(
    mut stitcher: HeraSession,
    published: Published,
    recorder: Recorder,
    rx: Receiver<StitchCmd>,
    mut passes: u64,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            StitchCmd::Schema { name, attrs } => {
                stitcher.add_schema(name, attrs);
            }
            StitchCmd::Stitch { records, reply } => {
                let ingested = records.len();
                for (schema, values) in records {
                    stitcher
                        .add_record(schema, values)
                        .expect("stitcher schemas mirror the shards'");
                }
                let report = stitcher.resolve_progressive(ResolveBudget::unlimited());
                passes += 1;
                let view = Arc::new(StitchedView::capture(&mut stitcher, passes));
                let merges = report.merges;
                let total = view.len();
                // Publish: the only write the slot ever sees, held just
                // long enough to swap the pointer.
                *published.write().expect("published view poisoned") = view;
                recorder.emit(
                    "serve_stitch",
                    vec![
                        ("ingested", Json::Int(ingested as i64)),
                        ("merges", Json::Int(merges as i64)),
                        ("stitched_total", Json::Int(total as i64)),
                        ("pass", Json::Int(passes as i64)),
                    ],
                );
                recorder.flush();
                reply.send(StitchReply { ingested, report }).ok();
            }
            StitchCmd::Checkpoint { path, reply } => {
                reply.send(stitcher.checkpoint(path)).ok();
            }
            StitchCmd::Shutdown => break,
        }
    }
}
