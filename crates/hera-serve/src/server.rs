//! Transport loops: drive an [`ErService`] from any line-delimited byte
//! stream (stdio) or a TCP listener.
//!
//! The stdio loop is single-threaded. The TCP loop accepts any number
//! of simultaneous clients, one thread per connection, all sharing one
//! `Arc<ErService>` — the service is `&self` end to end, so a
//! connection thread never blocks another except at the service's
//! bookkeeping lock (held only for routing-table pushes and channel
//! sends, never across session work).
//!
//! Client disconnects are connection-local: a socket that dies mid-line
//! or mid-request (reset, kill, half-close) ends only its own thread —
//! the partial line parses to an error reply whose write fails with a
//! broken pipe, which the thread absorbs and exits. Nothing panics,
//! nothing leaks, and the service keeps serving everyone else.
//!
//! Shutdown is cooperative: when any client's `shutdown` request is
//! acknowledged, the acceptor is woken by a loopback connection, every
//! live client socket is shut down (unblocking readers parked in
//! `read`), and all connection threads are joined before
//! [`serve_tcp`] returns.

use crate::protocol::{err, Request};
use crate::service::ErService;
use hera_types::json::parse;
use hera_types::{HeraError, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Serves line-delimited JSON requests from `input`, writing one
/// response line each to `output`, until the stream ends or a
/// `shutdown` request arrives. Returns `true` when the exit was an
/// explicit shutdown (the TCP loop uses this to distinguish "client
/// hung up" from "stop the server").
///
/// Malformed lines — including a final partial line from a client that
/// died mid-request — get an error response and the loop continues;
/// blank lines are ignored. A failed reply write (broken pipe) surfaces
/// as `HeraError::Io`, never a panic.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &ErService,
    input: R,
    output: &mut W,
) -> Result<bool> {
    let io_err = |e: std::io::Error| HeraError::Io(e.to_string());
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, keep_going) = match parse(&line).and_then(|j| Request::from_json(&j)) {
            Ok(request) => service.handle(&request),
            Err(e) => (err(e), true),
        };
        writeln!(output, "{}", response.to_string_compact()).map_err(io_err)?;
        output.flush().map_err(io_err)?;
        if !keep_going {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Live-connection registry: socket clones the shutdown path uses to
/// unblock readers, keyed so each thread can deregister itself. The
/// `stopping` flag is only ever flipped while this registry's lock is
/// held, which closes the register/shutdown race: a socket either makes
/// it into `shutdown_all`'s sweep or observes the flag at registration
/// and is closed on the spot.
struct Connections {
    next_id: u64,
    open: Vec<(u64, TcpStream)>,
}

impl Connections {
    fn register(&mut self, stream: TcpStream, stopping: &AtomicBool) -> u64 {
        if stopping.load(Ordering::SeqCst) {
            stream.shutdown(Shutdown::Both).ok();
        }
        let id = self.next_id;
        self.next_id += 1;
        self.open.push((id, stream));
        id
    }

    fn deregister(&mut self, id: u64) {
        self.open.retain(|(open_id, _)| *open_id != id);
    }

    fn shutdown_all(&self) {
        for (_, stream) in &self.open {
            stream.shutdown(Shutdown::Both).ok();
        }
    }
}

/// Runs when a connection thread exits for *any* reason — clean close,
/// IO error, or a panic inside the service — so a dead handler can
/// never leave its registered socket clone holding the client open.
/// Shutting the socket down here makes the client see EOF immediately.
struct DeregisterGuard {
    connections: Arc<Mutex<Connections>>,
    id: u64,
}

impl Drop for DeregisterGuard {
    fn drop(&mut self) {
        let mut registry = self.connections.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((_, stream)) = registry.open.iter().find(|(id, _)| *id == self.id) {
            stream.shutdown(Shutdown::Both).ok();
        }
        registry.deregister(self.id);
    }
}

/// Connection-thread epilogue (deregistration is the guard's job): if
/// this client requested shutdown, flip the flag, close every live
/// socket (unblocking their readers), and wake the acceptor.
fn finish_connection(
    connections: &Mutex<Connections>,
    outcome: Result<bool>,
    stopping: &AtomicBool,
    addr: SocketAddr,
) {
    match outcome {
        Ok(true) => {
            let registry = connections.lock().unwrap_or_else(|p| p.into_inner());
            stopping.store(true, Ordering::SeqCst);
            registry.shutdown_all();
            drop(registry);
            // Wake the acceptor so it observes the flag; harmless if a
            // real client races in first — that client is served until
            // the socket shutdown above reaches it.
            TcpStream::connect(addr).ok();
        }
        // Client hung up (clean close or mid-line): nothing to do, the
        // thread just ends.
        Ok(false) | Err(HeraError::Io(_)) => {}
        Err(e) => {
            // Non-IO errors out of serve_lines are service-level bugs;
            // surface them without taking the server down.
            eprintln!("hera-serve: connection error: {e}");
        }
    }
}

/// Accepts TCP connections concurrently — one thread per client, all
/// sharing `service` — until some client sends `shutdown`. A
/// disconnecting client (clean close, reset, or death mid-line) ends
/// only its own connection thread; the service state persists across
/// connections. On shutdown every live client socket is closed and
/// every connection thread joined before this returns.
pub fn serve_tcp(service: Arc<ErService>, listener: TcpListener) -> Result<()> {
    let io_err = |e: std::io::Error| HeraError::Io(e.to_string());
    let addr = listener.local_addr().map_err(io_err)?;
    let stopping = Arc::new(AtomicBool::new(false));
    let connections = Arc::new(Mutex::new(Connections {
        next_id: 0,
        open: Vec::new(),
    }));
    let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();

    for conn in listener.incoming() {
        let conn = conn.map_err(io_err)?;
        // The shutdown path wakes this acceptor with a loopback
        // connection; the flag is set before that connect, so seeing
        // the wake-up connection implies seeing the flag.
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        threads.retain(|t| !t.is_finished());
        let Ok(read_half) = conn.try_clone() else {
            continue;
        };
        let id = connections
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .register(read_half, &stopping);

        let service = service.clone();
        let stopping = stopping.clone();
        let connections = connections.clone();
        threads.push(std::thread::spawn(move || {
            let _guard = DeregisterGuard {
                connections: connections.clone(),
                id,
            };
            let outcome = conn
                .try_clone()
                .map_err(|e| HeraError::Io(e.to_string()))
                .and_then(|reader| {
                    let mut writer = conn;
                    serve_lines(&service, BufReader::new(reader), &mut writer)
                });
            finish_connection(&connections, outcome, &stopping, addr);
        }));
    }

    // The acceptor saw the wake-up connection and broke out. Client
    // sockets are already shut down, so every reader unblocks and its
    // thread exits; join them all before returning.
    for thread in threads {
        thread.join().ok();
    }
    Ok(())
}
