//! Transport loops: drive an [`ErService`] from any line-delimited byte
//! stream (stdio) or a TCP listener.
//!
//! Both loops are single-threaded and process requests strictly in
//! arrival order — determinism comes for free, and the sessions inside
//! the service still parallelize their resolve rounds internally
//! (`HeraConfig::num_threads`).

use crate::protocol::{err, Request};
use crate::service::ErService;
use hera_types::json::parse;
use hera_types::{HeraError, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// Serves line-delimited JSON requests from `input`, writing one
/// response line each to `output`, until the stream ends or a
/// `shutdown` request arrives. Returns `true` when the exit was an
/// explicit shutdown (the TCP loop uses this to distinguish "client
/// hung up" from "stop the server").
///
/// Malformed lines get an error response and the loop continues; blank
/// lines are ignored.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &mut ErService,
    input: R,
    output: &mut W,
) -> Result<bool> {
    let io_err = |e: std::io::Error| HeraError::Io(e.to_string());
    for line in input.lines() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, keep_going) = match parse(&line).and_then(|j| Request::from_json(&j)) {
            Ok(request) => service.handle(&request),
            Err(e) => (err(e), true),
        };
        writeln!(output, "{}", response.to_string_compact()).map_err(io_err)?;
        output.flush().map_err(io_err)?;
        if !keep_going {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Accepts TCP connections sequentially and serves each with
/// [`serve_lines`] until some client sends `shutdown`. A disconnecting
/// client ends only its own connection; the service state persists
/// across connections.
pub fn serve_tcp(service: &mut ErService, listener: TcpListener) -> Result<()> {
    for conn in listener.incoming() {
        let conn = conn.map_err(|e| HeraError::Io(e.to_string()))?;
        let reader = BufReader::new(conn.try_clone().map_err(|e| HeraError::Io(e.to_string()))?);
        let mut writer = conn;
        match serve_lines(service, reader, &mut writer) {
            Ok(true) => return Ok(()),
            Ok(false) => continue,
            // A connection-level IO error (e.g. reset mid-line) drops
            // that client; the service keeps running.
            Err(HeraError::Io(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
