//! Deterministic concurrency harness: a seeded schedule driver over the
//! service's command channels.
//!
//! Testing a concurrent service by hammering it from real threads makes
//! failures unreproducible. This harness takes the opposite route: one
//! driver thread plays the role of N interleaved clients, with the
//! interleaving chosen by a seeded PRNG — so every run of a
//! `(ops, Schedule)` pair issues the identical request sequence, and a
//! failing seed replays (and shrinks, under proptest) exactly.
//!
//! The concurrency is still real. Ingests are fire-and-forget commands
//! executing on shard worker threads, [`ErService::stitch_async`]
//! passes run on the stitch worker while the driver keeps issuing
//! lookups against whatever view happens to be published, and
//! [`ErService::resolve_async`] keeps shard workers busy in the
//! background. What the seed pins down is the *request order* — the
//! service's own determinism guarantee (global order = bookkeeping-lock
//! order) is then exactly the property under test: the final stitched
//! partition must be a pure function of the request order, independent
//! of worker count and OS scheduling. `tests/serve_concurrent.rs`
//! asserts that against a sequential single-shard reference.

use crate::service::{ErService, LookupReply, ResolveHandle, StitchHandle};
use hera_core::ResolveBudget;
use hera_types::{Result, SchemaId, Value};

/// One client-visible operation in a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduledOp {
    /// Ingest a record (the payload is fixed by the test, not the seed).
    Ingest(SchemaId, Vec<Value>),
    /// Look up a seed-chosen already-ingested record.
    Lookup,
    /// Dispatch a budgeted resolve across all shards (async; the driver
    /// waits for all resolves before returning).
    Resolve(ResolveBudget),
    /// Dispatch a boundary pass (async; the driver records its boundary
    /// and waits for the pass before returning).
    Stitch,
}

/// A seeded interleaving: `ops` are dealt round-robin-by-PRNG onto
/// `clients` queues, then executed by drawing a random non-empty client
/// each step — so the same `(ops, seed, clients)` triple always issues
/// the identical request sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// PRNG seed (splitmix64).
    pub seed: u64,
    /// Simulated client count (at least 1).
    pub clients: usize,
}

/// One lookup observation: what was asked, what had been dispatched by
/// then, and what came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupSample {
    /// Global record id looked up.
    pub id: u32,
    /// How many boundary passes had been *dispatched* when the lookup
    /// was issued (indexes a prefix of [`RunLog::boundaries`]). A
    /// non-provisional reply must match the reference partition at one
    /// of those dispatched boundaries covering `id` — anything else is
    /// a torn or future value.
    pub dispatched: usize,
    /// The service's reply.
    pub reply: LookupReply,
}

/// Everything a schedule run observed, for replay-exact assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// The records in the global arrival order the service saw — a
    /// sequential reference session replays exactly this stream.
    pub arrivals: Vec<(SchemaId, Vec<Value>)>,
    /// Global-stream prefix length of every dispatched boundary pass,
    /// in dispatch order (explicit `Stitch` ops and `stitch_every`
    /// auto-passes both included).
    pub boundaries: Vec<usize>,
    /// Every lookup the schedule issued, in issue order.
    pub lookups: Vec<LookupSample>,
    /// Records ingested by the schedule.
    pub ingested: usize,
}

/// splitmix64 — the same tiny deterministic generator the chaos suite
/// uses; no external PRNG dependency.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `ops` against `service` under the seeded interleaving and
/// returns the run's observations. Schemas referenced by `Ingest` ops
/// must already be registered. All async work the schedule dispatched
/// (stitches, resolves) is awaited before returning, so the service is
/// quiescent afterwards — a final [`ErService::stitch`] then covers
/// every record.
pub fn drive(service: &ErService, ops: Vec<ScheduledOp>, schedule: &Schedule) -> Result<RunLog> {
    let clients = schedule.clients.max(1);
    let mut rng = schedule.seed;
    // Deal ops onto client queues; each queue preserves program order
    // for "its" client, the draw below interleaves across clients.
    let mut queues: Vec<std::collections::VecDeque<ScheduledOp>> = (0..clients)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    for op in ops {
        let c = (next(&mut rng) % clients as u64) as usize;
        queues[c].push_back(op);
    }

    let mut log = RunLog {
        arrivals: Vec::new(),
        boundaries: Vec::new(),
        lookups: Vec::new(),
        ingested: 0,
    };
    let mut stitches: Vec<StitchHandle> = Vec::new();
    let mut resolves: Vec<ResolveHandle> = Vec::new();

    while queues.iter().any(|q| !q.is_empty()) {
        let mut c = (next(&mut rng) % clients as u64) as usize;
        while queues[c].is_empty() {
            c = (c + 1) % clients;
        }
        let op = queues[c].pop_front().expect("non-empty queue");
        match op {
            ScheduledOp::Ingest(schema, values) => {
                let reply = service.ingest(schema, values.clone())?;
                log.arrivals.push((schema, values));
                log.ingested += 1;
                if reply.stitched {
                    // Auto-pass: dispatched under the same lock hold as
                    // this ingest, so its boundary is id + 1.
                    log.boundaries.push(reply.id as usize + 1);
                }
            }
            ScheduledOp::Lookup => {
                if log.ingested == 0 {
                    continue;
                }
                let id = (next(&mut rng) % log.ingested as u64) as u32;
                let dispatched = log.boundaries.len();
                let reply = service.lookup(id)?;
                log.lookups.push(LookupSample {
                    id,
                    dispatched,
                    reply,
                });
            }
            ScheduledOp::Resolve(budget) => {
                resolves.push(service.resolve_async(budget));
            }
            ScheduledOp::Stitch => {
                let handle = service.stitch_async();
                log.boundaries.push(handle.boundary());
                stitches.push(handle);
            }
        }
    }

    for handle in resolves {
        handle.wait();
    }
    for handle in stitches {
        handle.wait();
    }
    Ok(log)
}
