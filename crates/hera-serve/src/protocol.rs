//! The wire protocol: one JSON object per line, request in, response
//! out, over any byte stream (stdio or TCP — the service never sees the
//! transport).
//!
//! Every request is an object with a `"cmd"` discriminant; every
//! response is an object with `"ok": true` plus command-specific fields,
//! or `"ok": false` with an `"error"` string. Unknown commands and
//! malformed requests produce an error *response* — a bad line never
//! kills the connection, let alone the service.

use hera_core::ResolveBudget;
use hera_types::json::Json;
use hera_types::{HeraError, Result, Value};
use std::time::Duration;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a source schema; replies with its id.
    Schema {
        /// Source name.
        name: String,
        /// Attribute names, in order.
        attrs: Vec<String>,
    },
    /// Ingest one record; replies with its global id and shard.
    Ingest {
        /// Schema id from a prior `Schema` reply.
        schema: u32,
        /// Values, aligned with the schema's attributes.
        values: Vec<Value>,
    },
    /// Ingest many records in one round trip.
    Batch {
        /// `(schema, values)` per record, in arrival order.
        records: Vec<(u32, Vec<Value>)>,
    },
    /// Run budgeted incremental resolution on every shard.
    Resolve {
        /// Per-shard budget (unlimited when the field is omitted).
        budget: ResolveBudget,
    },
    /// Run the cross-shard boundary pass.
    Stitch,
    /// Look up the entity of a record by global id.
    Lookup {
        /// Global record id from an `Ingest`/`Batch` reply.
        id: u32,
    },
    /// List the members of a stitched entity.
    Entity {
        /// Entity label from a `Lookup` reply.
        label: u32,
    },
    /// Service-wide counters.
    Stats,
    /// Snapshot every shard, the stitcher, and the manifest.
    Checkpoint {
        /// Manifest path; shard snapshots live beside it.
        path: String,
    },
    /// Stop the service (the reply is sent before it stops).
    Shutdown,
}

fn budget_to_json(b: &ResolveBudget) -> Json {
    let mut fields = Vec::new();
    if let Some(n) = b.comparisons {
        fields.push(("comparisons".into(), Json::Int(n as i64)));
    }
    if let Some(n) = b.merges {
        fields.push(("merges".into(), Json::Int(n as i64)));
    }
    if let Some(d) = b.wall_clock {
        fields.push(("wall_clock_ms".into(), Json::Int(d.as_millis() as i64)));
    }
    Json::Obj(fields)
}

fn budget_from_json(json: Option<&Json>) -> Result<ResolveBudget> {
    let mut budget = ResolveBudget::unlimited();
    let Some(json) = json else {
        return Ok(budget);
    };
    if let Some(n) = json.get("comparisons") {
        budget.comparisons = Some(n.as_i64()?.try_into().map_err(bad_count)?);
    }
    if let Some(n) = json.get("merges") {
        budget.merges = Some(n.as_i64()?.try_into().map_err(bad_count)?);
    }
    if let Some(ms) = json.get("wall_clock_ms") {
        let ms: u64 = ms.as_i64()?.try_into().map_err(bad_count)?;
        budget.wall_clock = Some(Duration::from_millis(ms));
    }
    Ok(budget)
}

fn bad_count<E>(_: E) -> HeraError {
    HeraError::Serialization("budget counts must be non-negative".into())
}

fn record_from_json(json: &Json) -> Result<(u32, Vec<Value>)> {
    let schema = json.expect("schema")?.as_u32()?;
    let values = json
        .expect("values")?
        .as_arr()?
        .iter()
        .map(Value::from_json)
        .collect::<Result<Vec<_>>>()?;
    Ok((schema, values))
}

fn record_to_json(schema: u32, values: &[Value]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Int(schema as i64)),
        (
            "values".into(),
            Json::Arr(values.iter().map(Value::to_json).collect()),
        ),
    ])
}

impl Request {
    /// Parses one protocol line (already JSON-parsed by the caller).
    pub fn from_json(json: &Json) -> Result<Self> {
        let cmd = json.expect("cmd")?.as_str()?;
        Ok(match cmd {
            "schema" => Request::Schema {
                name: json.expect("name")?.as_str()?.to_string(),
                attrs: json
                    .expect("attrs")?
                    .as_arr()?
                    .iter()
                    .map(|a| Ok(a.as_str()?.to_string()))
                    .collect::<Result<Vec<_>>>()?,
            },
            "ingest" => {
                let (schema, values) = record_from_json(json)?;
                Request::Ingest { schema, values }
            }
            "batch" => Request::Batch {
                records: json
                    .expect("records")?
                    .as_arr()?
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<Vec<_>>>()?,
            },
            "resolve" => Request::Resolve {
                budget: budget_from_json(json.get("budget"))?,
            },
            "stitch" => Request::Stitch,
            "lookup" => Request::Lookup {
                id: json.expect("id")?.as_u32()?,
            },
            "entity" => Request::Entity {
                label: json.expect("label")?.as_u32()?,
            },
            "stats" => Request::Stats,
            "checkpoint" => Request::Checkpoint {
                path: json.expect("path")?.as_str()?.to_string(),
            },
            "shutdown" => Request::Shutdown,
            other => {
                return Err(HeraError::Serialization(format!(
                    "unknown command {other:?}"
                )))
            }
        })
    }

    /// Encodes the request as one protocol line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let cmd = |name: &str| ("cmd".to_string(), Json::Str(name.to_string()));
        match self {
            Request::Schema { name, attrs } => Json::Obj(vec![
                cmd("schema"),
                ("name".into(), Json::Str(name.clone())),
                (
                    "attrs".into(),
                    Json::Arr(attrs.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
            ]),
            Request::Ingest { schema, values } => {
                let Json::Obj(mut fields) = record_to_json(*schema, values) else {
                    unreachable!()
                };
                fields.insert(0, cmd("ingest"));
                Json::Obj(fields)
            }
            Request::Batch { records } => Json::Obj(vec![
                cmd("batch"),
                (
                    "records".into(),
                    Json::Arr(records.iter().map(|(s, v)| record_to_json(*s, v)).collect()),
                ),
            ]),
            Request::Resolve { budget } => Json::Obj(vec![
                cmd("resolve"),
                ("budget".into(), budget_to_json(budget)),
            ]),
            Request::Stitch => Json::Obj(vec![cmd("stitch")]),
            Request::Lookup { id } => {
                Json::Obj(vec![cmd("lookup"), ("id".into(), Json::Int(*id as i64))])
            }
            Request::Entity { label } => Json::Obj(vec![
                cmd("entity"),
                ("label".into(), Json::Int(*label as i64)),
            ]),
            Request::Stats => Json::Obj(vec![cmd("stats")]),
            Request::Checkpoint { path } => Json::Obj(vec![
                cmd("checkpoint"),
                ("path".into(), Json::Str(path.clone())),
            ]),
            Request::Shutdown => Json::Obj(vec![cmd("shutdown")]),
        }
    }
}

/// Builds a success response from command-specific fields.
pub fn ok(fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all)
}

/// Builds an error response.
pub fn err(e: impl std::fmt::Display) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(e.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::json::parse;

    #[test]
    fn requests_roundtrip_through_json() {
        let requests = [
            Request::Schema {
                name: "crm".into(),
                attrs: vec!["name".into(), "city".into()],
            },
            Request::Ingest {
                schema: 1,
                values: vec![Value::from("alice"), Value::Null, Value::from(3i64)],
            },
            Request::Batch {
                records: vec![(0, vec![Value::from("x")]), (1, vec![Value::Null])],
            },
            Request::Resolve {
                budget: ResolveBudget::comparisons(500)
                    .with_merges(3)
                    .with_wall_clock(Duration::from_millis(250)),
            },
            Request::Resolve {
                budget: ResolveBudget::unlimited(),
            },
            Request::Stitch,
            Request::Lookup { id: 7 },
            Request::Entity { label: 3 },
            Request::Stats,
            Request::Checkpoint {
                path: "/tmp/x.hera".into(),
            },
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_json().to_string_compact();
            let back = Request::from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(back, req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            r#"{"cmd":"warp"}"#,
            r#"{"id":3}"#,
            r#"{"cmd":"lookup"}"#,
            r#"{"cmd":"resolve","budget":{"comparisons":-4}}"#,
        ] {
            let json = parse(bad).unwrap();
            assert!(Request::from_json(&json).is_err(), "{bad}");
        }
    }
}
