//! A thin typed client over the line protocol — what `hera-cli client`
//! and the tests use; re-exported through the `hera` facade.

use crate::protocol::Request;
use crate::service::{IngestReply, LookupReply};
use hera_core::ResolveBudget;
use hera_types::json::{parse, Json};
use hera_types::{HeraError, Result, SchemaId, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over any line-based byte stream.
///
/// [`ServeClient::connect`] gives the usual TCP client; [`ServeClient::over`]
/// wraps arbitrary reader/writer halves (tests drive an in-process
/// server through a pipe).
pub struct ServeClient<R, W> {
    reader: R,
    writer: W,
}

/// The TCP-backed client most callers want.
pub type TcpClient = ServeClient<BufReader<TcpStream>, TcpStream>;

impl TcpClient {
    /// Connects to a `hera-cli serve --listen` endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| HeraError::Io(e.to_string()))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| HeraError::Io(e.to_string()))?,
        );
        Ok(ServeClient {
            reader,
            writer: stream,
        })
    }
}

impl<R: BufRead, W: Write> ServeClient<R, W> {
    /// Wraps explicit reader/writer halves.
    pub fn over(reader: R, writer: W) -> Self {
        Self { reader, writer }
    }

    /// Sends one request and returns the parsed success response.
    /// Protocol-level failures (`"ok": false`) surface as
    /// [`HeraError::InvalidConfig`] carrying the server's message.
    pub fn request(&mut self, request: &Request) -> Result<Json> {
        let io_err = |e: std::io::Error| HeraError::Io(e.to_string());
        writeln!(self.writer, "{}", request.to_json().to_string_compact()).map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut line = String::new();
        if self.reader.read_line(&mut line).map_err(io_err)? == 0 {
            return Err(HeraError::Io("server closed the connection".into()));
        }
        let response = parse(&line)?;
        match response.expect("ok")? {
            Json::Bool(true) => Ok(response),
            _ => {
                let msg = response
                    .get("error")
                    .and_then(|e| e.as_str().ok())
                    .unwrap_or("unspecified server error");
                Err(HeraError::InvalidConfig(format!("server: {msg}")))
            }
        }
    }

    /// Registers a schema; returns its id.
    pub fn schema(&mut self, name: &str, attrs: &[String]) -> Result<SchemaId> {
        let reply = self.request(&Request::Schema {
            name: name.to_string(),
            attrs: attrs.to_vec(),
        })?;
        Ok(SchemaId::new(reply.expect("schema")?.as_u32()?))
    }

    /// Ingests one record; returns its global id and shard.
    pub fn ingest(&mut self, schema: SchemaId, values: Vec<Value>) -> Result<IngestReply> {
        let reply = self.request(&Request::Ingest {
            schema: schema.raw(),
            values,
        })?;
        Ok(IngestReply {
            id: reply.expect("id")?.as_u32()?,
            shard: reply.expect("shard")?.as_u32()?,
            stitched: matches!(reply.get("stitched"), Some(Json::Bool(true))),
        })
    }

    /// Ingests a batch; returns the assigned global ids.
    pub fn batch(&mut self, records: Vec<(SchemaId, Vec<Value>)>) -> Result<Vec<u32>> {
        let reply = self.request(&Request::Batch {
            records: records.into_iter().map(|(s, v)| (s.raw(), v)).collect(),
        })?;
        reply
            .expect("ids")?
            .as_arr()?
            .iter()
            .map(|j| j.as_u32())
            .collect()
    }

    /// Runs budgeted per-shard resolution; returns `(merges, exhausted)`.
    pub fn resolve(&mut self, budget: ResolveBudget) -> Result<(usize, bool)> {
        let reply = self.request(&Request::Resolve { budget })?;
        let merges = reply.expect("merges")?.as_i64()? as usize;
        let exhausted = matches!(reply.expect("exhausted")?, Json::Bool(true));
        Ok((merges, exhausted))
    }

    /// Runs the cross-shard boundary pass; returns the stitched total.
    pub fn stitch(&mut self) -> Result<usize> {
        let reply = self.request(&Request::Stitch)?;
        Ok(reply.expect("stitched")?.as_i64()? as usize)
    }

    /// Looks up a record's entity by global id.
    pub fn lookup(&mut self, id: u32) -> Result<LookupReply> {
        let reply = self.request(&Request::Lookup { id })?;
        Ok(LookupReply {
            entity: reply.expect("entity")?.as_u32()?,
            provisional: matches!(reply.expect("provisional")?, Json::Bool(true)),
            members: reply
                .expect("members")?
                .as_arr()?
                .iter()
                .map(|j| j.as_u32())
                .collect::<Result<Vec<_>>>()?,
        })
    }

    /// Lists a stitched entity's members.
    pub fn entity(&mut self, label: u32) -> Result<Vec<u32>> {
        let reply = self.request(&Request::Entity { label })?;
        reply
            .expect("members")?
            .as_arr()?
            .iter()
            .map(|j| j.as_u32())
            .collect()
    }

    /// Fetches the service-wide counters object.
    pub fn stats(&mut self) -> Result<Json> {
        self.request(&Request::Stats)
    }

    /// Asks the service to checkpoint itself at a server-side path.
    pub fn checkpoint(&mut self, path: &str) -> Result<()> {
        self.request(&Request::Checkpoint {
            path: path.to_string(),
        })
        .map(|_| ())
    }

    /// Stops the service.
    pub fn shutdown(&mut self) -> Result<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
