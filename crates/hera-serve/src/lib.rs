//! hera-serve — a long-lived, sharded entity-resolution service over
//! the incremental HERA session.
//!
//! The batch driver answers "resolve this dataset"; this crate answers
//! "keep resolving forever": records arrive in batches over a
//! line-delimited JSON protocol (stdin/stdout or TCP), route to
//! per-shard [`hera_core::HeraSession`]s by blocking key, resolve
//! incrementally under per-request [`hera_core::ResolveBudget`]s, and
//! stay queryable the whole time (`lookup`, `entity`, `stats`). A
//! periodic *boundary pass* stitches entities across shards with the
//! same union-find + schema-vote machinery the sessions already run —
//! sharding changes when answers arrive, never what they are (see the
//! [`service`] module docs for the construction).
//!
//! The service is durable: `checkpoint` snapshots every shard, the
//! stitcher, and a manifest through `hera-store` (atomic, CRC-checked,
//! retried under a `hera-faults` backoff policy), and
//! [`ErServiceBuilder::restore`] brings the whole service back. With a
//! journal attached ([`ErServiceBuilder::recorder`]), every protocol
//! request lands an audit line next to the sessions' own events.
//!
//! The service is concurrent: each shard session lives on a dedicated
//! worker thread (ingest and budgeted resolve run in parallel across
//! shards via per-shard command channels), the boundary stitch is a
//! double-buffered pass on its own worker (lookups answer from the last
//! *published* stitched view while the next one builds, then swap
//! atomically), and the TCP transport serves any number of simultaneous
//! clients over one shared `Arc<ErService>`. The [`harness`] module
//! ships the seeded schedule driver the concurrency test suite uses to
//! make interleavings reproducible.
//!
//! | module | contents |
//! |---|---|
//! | [`service`] | [`ErService`]: sharding, stitching, checkpointing |
//! | `worker` | per-shard/stitch worker threads (crate-private) |
//! | [`protocol`] | [`Request`] and the JSON-lines wire format |
//! | [`server`] | [`serve_lines`] (stdio) and [`serve_tcp`] loops |
//! | [`client`] | [`ServeClient`] / [`TcpClient`] typed client |
//! | [`harness`] | seeded schedule driver for concurrency tests |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod protocol;
pub mod server;
pub mod service;
mod worker;

pub use client::{ServeClient, TcpClient};
pub use harness::{LookupSample, RunLog, Schedule, ScheduledOp};
pub use protocol::Request;
pub use server::{serve_lines, serve_tcp};
pub use service::{
    ErService, ErServiceBuilder, IngestReply, LookupReply, ResolveHandle, ResolveReply,
    StitchHandle, StitchReply,
};
