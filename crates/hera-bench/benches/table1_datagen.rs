//! Table I bench: generating the heterogeneous datasets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hera_datagen::{presets, Generator};

fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_datagen");
    g.sample_size(10);
    g.bench_function("generate_dm1_1000_records", |b| {
        b.iter_batched(
            || Generator::new(presets::dm1()),
            |gen| gen.generate(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("generate_dm2_2000_records", |b| {
        b.iter_batched(
            || Generator::new(presets::dm2()),
            |gen| gen.generate(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
