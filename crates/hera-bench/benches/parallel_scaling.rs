//! Thread-scaling of the two parallel stages: the value-pair similarity
//! join and candidate verification inside compare-and-merge. Results are
//! bit-identical at every thread count, so the only question is speed;
//! `exp_parallel` records the measured speedups in
//! `results/BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hera_core::{Hera, HeraConfig};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use hera_types::Dataset;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A dataset heavy enough that verification dominates: many similar
/// record pairs across heterogeneous schemas.
fn dataset() -> Dataset {
    Generator::new(DatagenConfig {
        name: "parallel-bench".into(),
        seed: 7,
        n_records: 800,
        n_entities: 100,
        n_attrs: 14,
        n_sources: 4,
        min_source_attrs: 7,
        max_source_attrs: 11,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

fn bench_join(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("parallel_join");
    g.sample_size(10);
    for &t in &THREADS {
        let hera = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(t)).build();
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| hera.join(&ds));
        });
    }
    g.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let ds = dataset();
    let pairs = Hera::builder(HeraConfig::new(0.5, 0.5)).build().join(&ds);
    let mut g = c.benchmark_group("parallel_resolve");
    g.sample_size(10);
    for &t in &THREADS {
        let hera = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(t)).build();
        g.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| hera.run_with_pairs(&ds, pairs.clone()).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join, bench_resolve);
criterion_main!(benches);
