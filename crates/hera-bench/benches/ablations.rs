//! Ablation benches A1–A4: the cost side of each design choice.
//! (The quality side is reported by `exp_ablations`.)

use criterion::{criterion_group, criterion_main, Criterion};
use hera_baselines::NestLoopVerifier;
use hera_core::{BoundMode, Hera, HeraConfig, InstanceVerifier, SuperRecord};
use hera_index::ValuePairIndex;
use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::TypeDispatch;

fn bench_ablations(c: &mut Criterion) {
    let ds = hera_datagen::table1_dataset("dm1");
    let metric = TypeDispatch::paper_default();
    let pairs = SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds);
    let index = ValuePairIndex::build(pairs.clone());
    let supers: Vec<SuperRecord> = ds
        .iter()
        .map(|r| SuperRecord::from_record(&ds, r))
        .collect();
    let sample: Vec<(u32, u32)> = index.record_pairs().take(500).collect();

    // ---- A1: indexed vs nest-loop verification (Prop. 4's speedup).
    {
        let mut g = c.benchmark_group("ablation_a1_verification");
        let verifier = InstanceVerifier::new(&metric, 0.5, true);
        g.bench_function("indexed_500_pairs", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(i, j) in &sample {
                    acc += verifier
                        .verify(
                            &index,
                            &supers[i as usize],
                            &supers[j as usize],
                            &ds.registry,
                            None,
                        )
                        .sim;
                }
                acc
            })
        });
        let nest = NestLoopVerifier::new(0.5);
        g.sample_size(10);
        g.bench_function("nest_loop_500_pairs", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(i, j) in &sample {
                    acc += nest.similarity(&supers[i as usize], &supers[j as usize], &metric);
                }
                acc
            })
        });
        g.finish();
    }

    // ---- A2 + A3 + A4: full runs under each toggle.
    {
        let mut g = c.benchmark_group("ablation_full_runs");
        g.sample_size(10);
        let variants: Vec<(&str, HeraConfig)> = vec![
            ("baseline", HeraConfig::new(0.5, 0.5)),
            (
                "a2_greedy_matching",
                HeraConfig::new(0.5, 0.5).with_greedy_matching(),
            ),
            (
                "a3_no_schema_voting",
                HeraConfig::new(0.5, 0.5).without_schema_voting(),
            ),
            (
                "a4_paper_bounds",
                HeraConfig::new(0.5, 0.5).with_bound_mode(BoundMode::Paper),
            ),
        ];
        for (name, cfg) in variants {
            g.bench_function(name, |b| {
                b.iter(|| {
                    Hera::builder(cfg.clone())
                        .build()
                        .run_with_pairs(&ds, pairs.clone())
                        .unwrap()
                })
            });
        }
        g.finish();
    }

    // ---- Join ablation: prefix filter on/off.
    {
        let mut g = c.benchmark_group("ablation_join_prefix_filter");
        g.sample_size(10);
        g.bench_function("with_prefix_filter", |b| {
            b.iter(|| SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds))
        });
        g.bench_function("without_prefix_filter", |b| {
            b.iter(|| {
                SimilarityJoin::new(JoinConfig::new(0.5).without_prefix_filter(), &metric)
                    .join_dataset(&ds)
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
