//! Verify-stage throughput with the similarity memo cache cold, warm,
//! and absent. The workload is a mid-resolution state (three ground-truth
//! merge rounds in) where the forced-pair path dominates — the state the
//! driver's later rounds actually verify from. `exp_verify` records the
//! multi-round numbers in `results/BENCH_verify.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use hera_bench::verify_workload::VerifyWorkload;
use hera_core::{InstanceVerifier, SimCache, VerifyScratch};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use hera_sim::{MongeElkan, TypeDispatch};
use std::sync::Arc;

const XI: f64 = 0.6;

fn bench_verify(c: &mut Criterion) {
    let ds = Generator::new(DatagenConfig {
        name: "verify-bench".into(),
        seed: 7,
        n_records: 200,
        n_entities: 10,
        n_attrs: 14,
        n_sources: 5,
        min_source_attrs: 7,
        max_source_attrs: 12,
        corruption: CorruptionConfig::heavy(),
        domain: Default::default(),
    })
    .generate();
    let metric = TypeDispatch::paper_default().with_string_metric(Arc::new(MongeElkan::default()));
    let verifier = InstanceVerifier::new(&metric, XI, true);
    let mut w = VerifyWorkload::build(ds, XI, &metric);
    let mut scratch = VerifyScratch::new();
    let mut none = None;
    for _ in 0..3 {
        w.merge_truth_round(&verifier, &mut none, &mut scratch);
    }
    let list = w.candidates();

    let mut g = c.benchmark_group("verify_throughput");
    g.sample_size(10);

    g.bench_function("uncached", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for &(i, j) in &list {
                sum += verifier
                    .verify_with(
                        &w.index,
                        &w.supers[&i],
                        &w.supers[&j],
                        &w.ds.registry,
                        Some(&w.voter),
                        None,
                        &mut scratch,
                    )
                    .sim;
            }
            sum
        });
    });

    // Warm cache: one priming sweep fills it, the measured sweeps hit.
    let mut cache = SimCache::new();
    for &(i, j) in &list {
        verifier.verify_with(
            &w.index,
            &w.supers[&i],
            &w.supers[&j],
            &w.ds.registry,
            Some(&w.voter),
            Some(&cache),
            &mut scratch,
        );
        cache.apply(&scratch.delta);
    }
    g.bench_function("cached_warm", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for &(i, j) in &list {
                sum += verifier
                    .verify_with(
                        &w.index,
                        &w.supers[&i],
                        &w.supers[&j],
                        &w.ds.registry,
                        Some(&w.voter),
                        Some(&cache),
                        &mut scratch,
                    )
                    .sim;
            }
            sum
        });
    });
    g.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
