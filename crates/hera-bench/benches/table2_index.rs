//! Table II bench: the value-pair index — similarity join, build, group
//! lookup, bound computation, and merge maintenance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hera_core::SuperRecord;
use hera_index::{BoundMode, FlatIndex, ValuePairIndex};
use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::TypeDispatch;
use hera_types::Label;

fn bench_index(c: &mut Criterion) {
    let ds = hera_datagen::table1_dataset("dm1");
    let metric = TypeDispatch::paper_default();
    let pairs = SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds);
    let index = ValuePairIndex::build(pairs.clone());
    let supers: Vec<SuperRecord> = ds
        .iter()
        .map(|r| SuperRecord::from_record(&ds, r))
        .collect();
    let keys: Vec<(u32, u32)> = index.record_pairs().collect();

    let mut g = c.benchmark_group("table2_index");
    g.sample_size(10);

    g.bench_function("similarity_join_dm1", |b| {
        b.iter(|| SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds))
    });
    g.bench_function("index_build_from_join", |b| {
        b.iter_batched(
            || pairs.clone(),
            ValuePairIndex::build,
            BatchSize::LargeInput,
        )
    });
    g.bench_function("flat_index_build_from_join", |b| {
        b.iter_batched(|| pairs.clone(), FlatIndex::build, BatchSize::LargeInput)
    });
    g.bench_function("group_lookup_all", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &(i, j) in &keys {
                n += index.group(i, j).len();
            }
            n
        })
    });
    g.bench_function("bounds_all_groups_sound", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(i, j) in &keys {
                let b = index.bounds(
                    i,
                    j,
                    supers[i as usize].size(),
                    supers[j as usize].size(),
                    BoundMode::Sound,
                );
                acc += b.up;
            }
            acc
        })
    });
    g.bench_function("merge_maintenance_100_merges", |b| {
        b.iter_batched(
            || (ValuePairIndex::build(pairs.clone()), supers.clone()),
            |(mut idx, mut sup)| {
                // Merge 100 adjacent record pairs with a simple remap.
                let mut merged = 0;
                let ks: Vec<(u32, u32)> = idx.record_pairs().collect();
                for (i, j) in ks {
                    if merged >= 100 {
                        break;
                    }
                    if sup[i as usize].members.len() > 1 || sup[j as usize].members.len() > 1 {
                        continue;
                    }
                    let right = sup[j as usize].clone();
                    let remap = sup[i as usize].absorb(&right, &[]);
                    idx.merge(i, j, i, |l: Label| remap.apply(l));
                    merged += 1;
                }
                idx.len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
