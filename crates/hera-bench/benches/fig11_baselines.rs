//! Fig. 11 bench: each system end-to-end on the D_m1 workload — HERA on
//! the heterogeneous records, the baselines on the exchanged -S data.

use criterion::{criterion_group, criterion_main, Criterion};
use hera_baselines::{CollectiveEr, CorrelationClustering, RSwoosh, Resolver};
use hera_core::{Hera, HeraConfig};
use hera_sim::TypeDispatch;

fn bench_systems(c: &mut Criterion) {
    let ds = hera_datagen::table1_dataset("dm1");
    let (homo, _) = hera_exchange::exchange_small(&ds, 1);
    let metric = TypeDispatch::paper_default();
    let pairs = Hera::builder(HeraConfig::new(0.5, 0.5)).build().join(&ds);

    let mut g = c.benchmark_group("fig11_systems");
    g.sample_size(10);
    g.bench_function("hera_hetero_dm1", |b| {
        b.iter(|| {
            Hera::builder(HeraConfig::new(0.5, 0.5))
                .build()
                .run_with_pairs(&ds, pairs.clone())
                .unwrap()
        })
    });
    g.bench_function("rswoosh_dm1_s", |b| {
        b.iter(|| RSwoosh::new(0.5, 0.5).resolve(&homo, &metric))
    });
    g.bench_function("cc_kwikcluster_dm1_s", |b| {
        b.iter(|| CorrelationClustering::new(0.5, 0.5, 7).resolve(&homo, &metric))
    });
    g.bench_function("cr_collective_dm1_s", |b| {
        b.iter(|| CollectiveEr::new(0.5, 0.5, 0.25).resolve(&homo, &metric))
    });
    g.finish();
}

criterion_group!(benches, bench_systems);
criterion_main!(benches);
