//! Fig. 9 bench: one full HERA resolution (the quality path) at the three
//! representative thresholds of the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hera_core::{Hera, HeraConfig};

fn bench_quality_sweep(c: &mut Criterion) {
    let ds = hera_datagen::table1_dataset("dm1");
    let pairs = Hera::builder(HeraConfig::new(0.5, 0.5)).build().join(&ds);

    let mut g = c.benchmark_group("fig9_quality_sweep");
    g.sample_size(10);
    for delta in [0.3, 0.5, 0.8] {
        g.bench_with_input(
            BenchmarkId::new("hera_dm1_delta", format!("{delta:.1}")),
            &delta,
            |b, &delta| {
                b.iter(|| {
                    Hera::builder(HeraConfig::new(delta, 0.5))
                        .build()
                        .run_with_pairs(&ds, pairs.clone())
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_quality_sweep);
criterion_main!(benches);
