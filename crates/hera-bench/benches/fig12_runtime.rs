//! Fig. 12 bench: HERA's resolve phase across dataset sizes (the index is
//! built once per size, offline per Prop. 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hera_core::{Hera, HeraConfig};

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_runtime");
    g.sample_size(10);
    for name in ["dm1", "dm2"] {
        let ds = hera_datagen::table1_dataset(name);
        let pairs = Hera::builder(HeraConfig::new(0.5, 0.5)).build().join(&ds);
        for delta in [0.5, 0.8] {
            g.bench_with_input(
                BenchmarkId::new(format!("resolve_{name}"), format!("delta_{delta:.1}")),
                &delta,
                |b, &delta| {
                    b.iter(|| {
                        Hera::builder(HeraConfig::new(delta, 0.5))
                            .build()
                            .run_with_pairs(&ds, pairs.clone())
                            .unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
