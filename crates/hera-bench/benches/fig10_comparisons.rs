//! Fig. 10 bench: candidate generation — the scan that classifies every
//! record pair into pruned / directly-decided / candidate via Algorithm 1
//! bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hera_core::SuperRecord;
use hera_index::{BoundMode, ValuePairIndex};
use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::TypeDispatch;

fn bench_candidate_generation(c: &mut Criterion) {
    let ds = hera_datagen::table1_dataset("dm1");
    let metric = TypeDispatch::paper_default();
    let pairs = SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds);
    let index = ValuePairIndex::build(pairs);
    let supers: Vec<SuperRecord> = ds
        .iter()
        .map(|r| SuperRecord::from_record(&ds, r))
        .collect();
    let keys: Vec<(u32, u32)> = index.record_pairs().collect();

    let mut g = c.benchmark_group("fig10_candidate_generation");
    for delta in [0.2, 0.5, 0.8] {
        g.bench_with_input(
            BenchmarkId::new("classify_all_groups", format!("delta_{delta:.1}")),
            &delta,
            |b, &delta| {
                b.iter(|| {
                    let (mut pruned, mut direct, mut cand) = (0usize, 0usize, 0usize);
                    for &(i, j) in &keys {
                        let bo = index.bounds(
                            i,
                            j,
                            supers[i as usize].size(),
                            supers[j as usize].size(),
                            BoundMode::Sound,
                        );
                        if bo.up < delta {
                            pruned += 1;
                        } else if bo.is_exact() {
                            direct += 1;
                        } else {
                            cand += 1;
                        }
                    }
                    (pruned, direct, cand)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_candidate_generation);
criterion_main!(benches);
