//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's §VI has a binary under
//! `src/bin/` that regenerates it (`cargo run --release -p hera-bench
//! --bin exp_fig9`) and a Criterion bench under `benches/` that measures
//! the code path behind it. EXPERIMENTS.md records the output of the
//! binaries next to the paper's reported values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hera_core::{Hera, HeraConfig, HeraResult};
use hera_eval::PairMetrics;
use hera_types::Dataset;

pub mod report;
pub mod verify_workload;

pub use report::{host_cpus, BenchReport, BENCH_SCHEMA_VERSION};

/// The four Table I datasets, generation-cached per process.
pub fn datasets() -> Vec<Dataset> {
    ["dm1", "dm2", "dm3", "dm4"]
        .iter()
        .map(|n| hera_datagen::table1_dataset(n))
        .collect()
}

/// The δ sweep used by Figs. 9, 10, 12.
pub const DELTA_SWEEP: [f64; 9] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// The paper's fixed value-similarity threshold.
pub const XI: f64 = 0.5;

/// Runs HERA at one δ, reusing a precomputed join result.
pub fn run_at_delta(
    ds: &Dataset,
    pairs: &[hera_index::ValuePair],
    delta: f64,
) -> (HeraResult, PairMetrics) {
    let hera = Hera::builder(HeraConfig::new(delta, XI)).build();
    let result = hera.run_with_pairs(ds, pairs.to_vec()).unwrap();
    let metrics = PairMetrics::score(&result.clusters(), &ds.truth);
    (result, metrics)
}

/// Precomputes the ξ = 0.5 similarity join for a dataset.
pub fn shared_join(ds: &Dataset) -> Vec<hera_index::ValuePair> {
    Hera::builder(HeraConfig::new(0.5, XI)).build().join(ds)
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header and separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_ascending_and_bounded() {
        for w in DELTA_SWEEP.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(DELTA_SWEEP.iter().all(|d| (0.0..=1.0).contains(d)));
    }

    #[test]
    fn shared_join_reuse_equals_fresh_run() {
        let ds = hera_datagen::table1_dataset("dm1");
        let pairs = shared_join(&ds);
        let (reused, m1) = run_at_delta(&ds, &pairs, 0.5);
        let fresh = Hera::builder(HeraConfig::new(0.5, XI))
            .build()
            .run(&ds)
            .unwrap();
        let m2 = PairMetrics::score(&fresh.clusters(), &ds.truth);
        assert_eq!(reused.entity_of, fresh.entity_of);
        assert_eq!(m1, m2);
    }
}
