//! Ablations A1–A4 (DESIGN.md): the design choices behind HERA's
//! efficiency and quality, each toggled in isolation.
//!
//! * **A1** — index vs nest-loop verification (the paper claims the index
//!   cuts similarity computation by ~3 orders of magnitude);
//! * **A2** — Kuhn–Munkres vs greedy field matching;
//! * **A3** — schema-based method on/off;
//! * **A4** — BoundMode::Paper vs BoundMode::Sound candidate generation.

use hera_bench::{header, row, run_at_delta, shared_join, XI};
use hera_core::{BoundMode, Hera, HeraConfig, InstanceVerifier, SuperRecord};
use hera_eval::PairMetrics;
use hera_index::ValuePairIndex;
use hera_sim::TypeDispatch;
use std::time::Instant;

fn main() {
    let ds = hera_datagen::table1_dataset("dm2");
    let pairs = shared_join(&ds);
    println!("# Ablations on {} (δ = ξ = 0.5)\n", ds.name);

    // ---- A1: indexed vs nest-loop verification on real record pairs.
    println!("## A1: index vs nest-loop record-similarity computation\n");
    let metric = TypeDispatch::paper_default();
    let index = ValuePairIndex::build(pairs.clone());
    let supers: Vec<SuperRecord> = ds
        .iter()
        .map(|r| SuperRecord::from_record(&ds, r))
        .collect();
    let sample: Vec<(u32, u32)> = index.record_pairs().take(2000).collect();
    let verifier = InstanceVerifier::new(&metric, XI, true);
    let t = Instant::now();
    let mut acc = 0.0;
    for &(i, j) in &sample {
        acc += verifier
            .verify(
                &index,
                &supers[i as usize],
                &supers[j as usize],
                &ds.registry,
                None,
            )
            .sim;
    }
    let indexed = t.elapsed();
    let nest = hera_baselines::NestLoopVerifier::new(XI);
    let t = Instant::now();
    let mut acc2 = 0.0;
    for &(i, j) in &sample {
        acc2 += nest.similarity(&supers[i as usize], &supers[j as usize], &metric);
    }
    let nested = t.elapsed();
    header(&["method", "pairs", "total", "per pair", "Σ sim (agreement)"]);
    row(&[
        "indexed".into(),
        sample.len().to_string(),
        format!("{indexed:.1?}"),
        format!("{:.2?}", indexed / sample.len() as u32),
        format!("{acc:.3}"),
    ]);
    row(&[
        "nest-loop".into(),
        sample.len().to_string(),
        format!("{nested:.1?}"),
        format!("{:.2?}", nested / sample.len() as u32),
        format!("{acc2:.3}"),
    ]);
    println!(
        "\nspeedup: {:.0}× (paper claims ~3 orders of magnitude; Σ sim agree: {})\n",
        nested.as_secs_f64() / indexed.as_secs_f64().max(1e-12),
        (acc - acc2).abs() < 1e-6
    );

    // ---- A2: Kuhn–Munkres vs greedy matching inside HERA.
    println!("## A2: Kuhn–Munkres vs greedy field matching\n");
    header(&["matcher", "P", "R", "F1", "resolve time"]);
    for (name, cfg) in [
        ("Kuhn–Munkres", HeraConfig::new(0.5, XI)),
        ("greedy", HeraConfig::new(0.5, XI).with_greedy_matching()),
    ] {
        let result = Hera::builder(cfg)
            .build()
            .run_with_pairs(&ds, pairs.clone())
            .unwrap();
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        row(&[
            name.into(),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
            format!("{:.1?}", result.stats.resolve_time),
        ]);
    }

    // ---- A3: schema-based method on/off.
    println!("\n## A3: schema-based method (majority voting)\n");
    header(&[
        "voting",
        "P",
        "R",
        "F1",
        "matchings decided",
        "resolve time",
    ]);
    for (name, cfg) in [
        ("on", HeraConfig::new(0.5, XI)),
        ("off", HeraConfig::new(0.5, XI).without_schema_voting()),
    ] {
        let result = Hera::builder(cfg)
            .build()
            .run_with_pairs(&ds, pairs.clone())
            .unwrap();
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        row(&[
            name.into(),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
            result.schema_matchings.len().to_string(),
            format!("{:.1?}", result.stats.resolve_time),
        ]);
    }

    // ---- A4: bound modes.
    println!("\n## A4: candidate-generation bound modes\n");
    header(&[
        "mode",
        "P",
        "R",
        "F1",
        "pruned",
        "direct",
        "verified",
        "resolve time",
    ]);
    for (name, mode) in [("Sound", BoundMode::Sound), ("Paper", BoundMode::Paper)] {
        let cfg = HeraConfig::new(0.5, XI).with_bound_mode(mode);
        let result = Hera::builder(cfg)
            .build()
            .run_with_pairs(&ds, pairs.clone())
            .unwrap();
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        let s = &result.stats;
        row(&[
            name.into(),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
            s.pruned.to_string(),
            s.direct_decisions.to_string(),
            s.comparisons.to_string(),
            format!("{:.1?}", s.resolve_time),
        ]);
    }
    let _ = run_at_delta; // shared helper exercised elsewhere
}
