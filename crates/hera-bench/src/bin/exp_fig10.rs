//! Fig. 10(a) — number of comparisons versus δ.
//!
//! "As we increase δ, the number of comparisons in HERA declines"
//! because higher thresholds shrink the candidate set. We report both
//! the full verifications (Kuhn–Munkres runs) and the total record-pair
//! examinations (bounds computed), whose pruned fraction grows with δ.

use hera_bench::{header, row, run_at_delta, shared_join, DELTA_SWEEP};

fn main() {
    println!("# Fig 10: comparisons vs δ (ξ = 0.5)\n");
    header(&[
        "dataset",
        "δ",
        "verifications",
        "direct decisions",
        "pruned",
        "examined",
    ]);
    for ds in hera_bench::datasets() {
        let pairs = shared_join(&ds);
        for &delta in &DELTA_SWEEP {
            let (result, _) = run_at_delta(&ds, &pairs, delta);
            let s = &result.stats;
            let examined = s.comparisons + s.direct_decisions + s.pruned;
            row(&[
                ds.name.clone(),
                format!("{delta:.1}"),
                s.comparisons.to_string(),
                s.direct_decisions.to_string(),
                s.pruned.to_string(),
                examined.to_string(),
            ]);
        }
    }
}
