//! Blocking sweep: pair-completeness vs reduction-ratio for every
//! blocking scheme, plus the end-to-end effect of running the pipeline
//! blocked instead of all-pairs.
//!
//! For each tier the harness generates the same seeded dataset as
//! `exp_scale`, runs every scheme of the `hera-block` crate, and
//! measures the two numbers the blocking literature trades against each
//! other:
//!
//! * **pair completeness** (PC) — the fraction of ground-truth duplicate
//!   record pairs that survive blocking (an upper bound on downstream
//!   recall);
//! * **reduction ratio** (RR) — the fraction of the quadratic record-pair
//!   space the join no longer has to consider.
//!
//! Each scheme then runs the *blocked pipeline* (block → join → resolve)
//! to report end-to-end wall-clock and F1. The unblocked reference is
//! measured live on tiers small enough to afford it; for larger tiers it
//! is read from the committed `results/BENCH_scale.json` (re-running the
//! 100k all-pairs join takes ~15 minutes and its numbers are already on
//! record), so the reported speedup is vs the committed baseline.
//!
//! * `--smoke` — 10⁴ tier only (the CI workload).
//! * `--tier N` — run only the preset tier with N records (tuning aid).
//! * `--out PATH` — artifact path (default `results/BENCH_blocking.json`).
//! * `--gate-pc X` — exit 1 unless, on every tier, at least one scheme
//!   reaches pair-completeness ≥ X (the CI recall gate).

use hera_bench::{header, row, BenchReport};
use hera_block::{Blocker, BlockingScheme};
use hera_core::{Hera, HeraConfig};
use hera_datagen::{scale_preset, ScaleGenerator};
use hera_eval::PairMetrics;
use hera_join::CandidateSource;
use hera_types::json::{parse, Json};
use hera_types::{Dataset, RecordId};
use std::time::Instant;

/// Same thresholds as `exp_scale`, so the committed scale numbers are a
/// valid unblocked reference.
const DELTA: f64 = 0.5;
const XI: f64 = 0.7;

/// Tiers mirror the `exp_scale` pipeline tiers (same sizes, same seeds).
const FULL_TIERS: &[(usize, u64)] = &[(10_000, 51), (100_000, 52)];
const SMOKE_TIERS: &[(usize, u64)] = &[(10_000, 51)];

/// Unblocked pipelines are measured live only up to this size; larger
/// tiers read the committed `exp_scale` baseline instead.
const MAX_LIVE_UNBLOCKED: usize = 10_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("exp_blocking: {name} requires a value");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = value_of("--out").unwrap_or_else(|| "results/BENCH_blocking.json".into());
    let gate_pc: Option<f64> = value_of("--gate-pc").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--gate-pc expects a number, got {v:?}"))
    });
    let only: Option<usize> = value_of("--tier").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--tier expects a record count, got {v:?}"))
    });
    let tiers: Vec<(usize, u64)> = if let Some(n) = only {
        vec![*FULL_TIERS
            .iter()
            .find(|(records, _)| *records == n)
            .unwrap_or_else(|| panic!("--tier {n}: no such preset tier"))]
    } else if smoke {
        SMOKE_TIERS.to_vec()
    } else {
        FULL_TIERS.to_vec()
    };
    let tiers = &tiers[..];

    println!(
        "# Blocking sweep (δ = {DELTA}, ξ = {XI}, {} tier{})\n",
        tiers.len(),
        if tiers.len() == 1 { "" } else { "s" }
    );

    let mut tier_entries: Vec<Json> = Vec::new();
    let mut headline: Option<(u64, f64)> = None;
    let mut gate_ok = true;
    for &(n, seed) in tiers {
        let (entry, best_pc, best_pairs_rr) = run_tier(n, seed);
        gate_ok &= gate_pc.is_none_or(|g| best_pc >= g);
        headline = Some(best_pairs_rr); // last tier = largest = headline
        tier_entries.push(entry);
    }

    let largest = tiers.last().expect("at least one tier");
    let mut report = BenchReport::new("blocking_sweep")
        .dataset(&format!("scale_{}", largest.0), largest.0)
        .reps(1);
    if let Some((pairs, rr)) = headline {
        report = report.candidates(pairs, rr);
    }
    report
        .note(&format!(
            "delta={DELTA} xi={XI}; PC = ground-truth duplicate pairs surviving blocking / all \
             ground-truth duplicate pairs, RR = 1 - emitted record pairs / n(n-1)/2; unblocked \
             reference measured live up to {MAX_LIVE_UNBLOCKED} records, read from the committed \
             BENCH_scale.json above that (speedup is vs that committed baseline); envelope \
             candidate_pairs/reduction_ratio are the largest tier's best-PC scheme"
        ))
        .section("tiers", Json::Arr(tier_entries))
        .write(&out);

    if let Some(g) = gate_pc {
        if !gate_ok {
            eprintln!(
                "\nexp_blocking: FAIL — no scheme reached pair-completeness >= {g} on every tier"
            );
            std::process::exit(1);
        }
        println!("\nexp_blocking: pair-completeness gate ({g}) ok");
    }
}

/// Runs one tier; returns its JSON entry, the best pair-completeness
/// over schemes, and the (emitted pairs, RR) of the best-PC scheme.
fn run_tier(n: usize, seed: u64) -> (Json, f64, (u64, f64)) {
    eprintln!("[{n}] generating…");
    let ds = ScaleGenerator::new(scale_preset(n, seed)).generate();
    let truth_pairs = ds.truth.positive_pair_count();

    let unblocked = unblocked_reference(&ds, n);
    let base_ms = unblocked.get("end_to_end_ms").and_then(|v| v.as_f64().ok());
    let base_f1 = unblocked.get("f1").and_then(|v| v.as_f64().ok());

    println!("## scale_{n} ({truth_pairs} ground-truth duplicate pairs)\n");
    header(&[
        "scheme",
        "block (ms)",
        "pairs out",
        "PC",
        "RR",
        "join (ms)",
        "resolve (ms)",
        "F1",
        "speedup",
    ]);

    let mut scheme_entries: Vec<Json> = Vec::new();
    let mut best_pc = 0.0f64;
    let mut best_pairs_rr = (0u64, 0.0f64);
    for scheme in [
        BlockingScheme::token(),
        BlockingScheme::qgram(),
        BlockingScheme::lsh(),
    ] {
        let name = scheme.name();
        eprintln!("[{n}] blocking ({name})…");
        let t0 = Instant::now();
        let outcome = Blocker::new(scheme.clone()).block(&ds);
        let block_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Pair completeness: emitted pairs are few, truth lookup is O(1).
        let kept_truth = outcome
            .pairs
            .iter()
            .filter(|&(a, b)| ds.truth.same_entity(RecordId::new(a), RecordId::new(b)))
            .count();
        let pc = if truth_pairs == 0 {
            1.0
        } else {
            kept_truth as f64 / truth_pairs as f64
        };
        let rr = outcome.stats.reduction_ratio();

        eprintln!(
            "[{n}] {name}: {} record pairs (PC {pc:.4}, RR {rr:.4}), joining…",
            outcome.pairs.len()
        );
        let hera = Hera::builder(HeraConfig::new(DELTA, XI)).build();
        let join_cfg = hera_join::JoinConfig::new(XI);
        let metric = hera_sim::TypeDispatch::paper_default();
        let t0 = Instant::now();
        let pairs = hera_join::SimilarityJoin::new(join_cfg, &metric)
            .join_dataset_with(&ds, &CandidateSource::Blocked(outcome.pairs.clone()));
        let join_ms = t0.elapsed().as_secs_f64() * 1e3;

        eprintln!("[{n}] {name}: {} value pairs, resolving…", pairs.len());
        let t0 = Instant::now();
        let result = hera.run_with_pairs(&ds, pairs.clone()).unwrap();
        let resolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let f1 = PairMetrics::score(&result.clusters(), &ds.truth).f1();

        let end_to_end = block_ms + join_ms + resolve_ms;
        let speedup = base_ms.map(|b| b / end_to_end.max(1e-9));
        let f1_delta = base_f1.map(|b| f1 - b);
        row(&[
            name.to_string(),
            format!("{block_ms:.0}"),
            outcome.pairs.len().to_string(),
            format!("{pc:.4}"),
            format!("{rr:.4}"),
            format!("{join_ms:.0}"),
            format!("{resolve_ms:.0}"),
            format!("{f1:.4}"),
            speedup.map_or("-".into(), |s| format!("{s:.1}x")),
        ]);

        if pc > best_pc {
            best_pc = pc;
            best_pairs_rr = (outcome.stats.pairs_emitted, rr);
        }
        let mut entry = vec![
            ("scheme".into(), Json::Str(name.into())),
            ("block_ms".into(), Json::Float(block_ms)),
            ("blocks".into(), Json::Int(outcome.stats.blocks as i64)),
            (
                "blocks_purged".into(),
                Json::Int(outcome.stats.blocks_purged as i64),
            ),
            (
                "pairs_considered".into(),
                Json::Int(outcome.stats.pairs_considered as i64),
            ),
            (
                "pairs_emitted".into(),
                Json::Int(outcome.stats.pairs_emitted as i64),
            ),
            (
                "pairs_pruned".into(),
                Json::Int(outcome.stats.pairs_pruned as i64),
            ),
            ("pair_completeness".into(), Json::Float(pc)),
            ("reduction_ratio".into(), Json::Float(rr)),
            ("join_ms".into(), Json::Float(join_ms)),
            ("value_pairs".into(), Json::Int(pairs.len() as i64)),
            ("resolve_ms".into(), Json::Float(resolve_ms)),
            ("end_to_end_ms".into(), Json::Float(end_to_end)),
            ("f1".into(), Json::Float(f1)),
        ];
        if let Some(s) = speedup {
            entry.push(("speedup_vs_unblocked".into(), Json::Float(s)));
        }
        if let Some(d) = f1_delta {
            entry.push(("f1_delta".into(), Json::Float(d)));
        }
        scheme_entries.push(Json::Obj(entry));
    }
    println!();

    let entry = Json::Obj(vec![
        ("records".into(), Json::Int(n as i64)),
        ("seed".into(), Json::Int(seed as i64)),
        ("entities".into(), Json::Int(ds.truth.entity_count() as i64)),
        ("truth_pairs".into(), Json::Int(truth_pairs as i64)),
        ("unblocked".into(), unblocked),
        ("schemes".into(), Json::Arr(scheme_entries)),
    ]);
    (entry, best_pc, best_pairs_rr)
}

/// The unblocked (all-pairs) reference for one tier: measured live for
/// small tiers, read from the committed `BENCH_scale.json` otherwise.
fn unblocked_reference(ds: &Dataset, n: usize) -> Json {
    if n <= MAX_LIVE_UNBLOCKED {
        eprintln!("[{n}] unblocked reference (live)…");
        let hera = Hera::builder(HeraConfig::new(DELTA, XI)).build();
        let t0 = Instant::now();
        let pairs = hera.join(ds);
        let join_ms = t0.elapsed().as_secs_f64() * 1e3;
        let value_pairs = pairs.len();
        let t0 = Instant::now();
        let result = hera.run_with_pairs(ds, pairs).unwrap();
        let resolve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let f1 = PairMetrics::score(&result.clusters(), &ds.truth).f1();
        return Json::Obj(vec![
            ("source".into(), Json::Str("measured".into())),
            ("join_ms".into(), Json::Float(join_ms)),
            ("resolve_ms".into(), Json::Float(resolve_ms)),
            ("end_to_end_ms".into(), Json::Float(join_ms + resolve_ms)),
            ("value_pairs".into(), Json::Int(value_pairs as i64)),
            ("f1".into(), Json::Float(f1)),
        ]);
    }
    // Committed baseline. Missing file or tier degrades to "unknown"
    // (speedup column prints "-"), it does not abort the sweep.
    let committed = std::fs::read_to_string("results/BENCH_scale.json")
        .ok()
        .and_then(|text| parse(&text).ok())
        .and_then(|doc| {
            let tiers = doc.get("tiers")?.as_arr().ok()?.to_vec();
            tiers.into_iter().find(|t| {
                t.get("records").and_then(|r| r.as_i64().ok()) == Some(n as i64)
                    && t.get("mode")
                        .and_then(|m| m.as_str().ok().map(String::from))
                        == Some("pipeline".into())
            })
        });
    match committed {
        Some(tier) => {
            let f = |k: &str| tier.get(k).and_then(|v| v.as_f64().ok()).unwrap_or(0.0);
            let (join_ms, resolve_ms) = (f("join_ms"), f("resolve_ms"));
            Json::Obj(vec![
                (
                    "source".into(),
                    Json::Str("committed BENCH_scale.json".into()),
                ),
                ("join_ms".into(), Json::Float(join_ms)),
                ("resolve_ms".into(), Json::Float(resolve_ms)),
                ("end_to_end_ms".into(), Json::Float(join_ms + resolve_ms)),
                (
                    "value_pairs".into(),
                    Json::Int(tier.get("pairs").and_then(|v| v.as_i64().ok()).unwrap_or(0)),
                ),
            ])
        }
        None => {
            eprintln!("[{n}] no committed unblocked baseline found — speedup unavailable");
            Json::Obj(vec![("source".into(), Json::Str("unavailable".into()))])
        }
    }
}
