//! Verification-memoization experiment: measures verify-stage throughput
//! with the merge-aware similarity cache on vs off, on a multi-round
//! workload where every round re-verifies the surviving candidate pairs
//! (see `hera_bench::verify_workload`), plus the end-to-end pipeline at
//! 1 and N threads. Results are asserted bit-identical in every
//! configuration; `results/BENCH_verify.json` records the numbers.
//!
//! `--smoke` runs a miniature workload and skips the JSON write (used by
//! CI to exercise the path without clobbering the committed artifact).

use hera_bench::verify_workload::VerifyWorkload;
use hera_bench::{header, row, BenchReport};
use hera_core::{Hera, HeraConfig, InstanceVerifier, SimCache, VerifyScratch};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use hera_sim::{MongeElkan, TypeDispatch};
use hera_types::json::Json;
use hera_types::Dataset;
use std::sync::Arc;
use std::time::Instant;

/// Per-round numbers from one sweep run.
struct RoundStats {
    pairs: u64,
    sweep_ms: f64,
    metric_calls: u64,
    hits: u64,
}

/// Outcome of a full multi-round sweep (one cache mode).
struct SweepOutcome {
    rounds: Vec<RoundStats>,
    sweep_ms: f64,
    verified: u64,
    metric_calls: u64,
    hits: u64,
    /// Bit patterns of every verified `sim`, in sweep order — the two
    /// cache modes must produce the very same sequence.
    sims: Vec<u64>,
    cache_size: usize,
    cache_invalidated: u64,
}

fn dataset(smoke: bool) -> Dataset {
    let (n_records, n_entities) = if smoke { (100, 10) } else { (400, 10) };
    Generator::new(DatagenConfig {
        name: "verify-bench".into(),
        seed: 7,
        n_records,
        n_entities,
        n_attrs: 14,
        n_sources: 5,
        min_source_attrs: 7,
        max_source_attrs: 12,
        corruption: CorruptionConfig::heavy(),
        domain: Default::default(),
    })
    .generate()
}

/// Runs the multi-round sweep: verify every surviving candidate pair,
/// merge one ground-truth round, repeat until converged.
fn sweep(ds: &Dataset, xi: f64, cached: bool) -> SweepOutcome {
    // Monge–Elkan keeps the string comparisons honest-expensive (the
    // hybrid-metric configuration); dispatch still routes numerics.
    let metric = TypeDispatch::paper_default().with_string_metric(Arc::new(MongeElkan::default()));
    let mut w = VerifyWorkload::build(ds.clone(), xi, &metric);
    let verifier = InstanceVerifier::new(&metric, xi, true);
    let mut cache = cached.then(SimCache::new);
    let mut scratch = VerifyScratch::new();
    let mut out = SweepOutcome {
        rounds: Vec::new(),
        sweep_ms: 0.0,
        verified: 0,
        metric_calls: 0,
        hits: 0,
        sims: Vec::new(),
        cache_size: 0,
        cache_invalidated: 0,
    };
    loop {
        let list = w.candidates();
        let mut round = RoundStats {
            pairs: list.len() as u64,
            sweep_ms: 0.0,
            metric_calls: 0,
            hits: 0,
        };
        let t0 = Instant::now();
        for &(i, j) in &list {
            let v = verifier.verify_with(
                &w.index,
                &w.supers[&i],
                &w.supers[&j],
                &w.ds.registry,
                Some(&w.voter),
                cache.as_ref(),
                &mut scratch,
            );
            round.metric_calls += scratch.delta.metric_calls;
            round.hits += scratch.delta.hits;
            if let Some(c) = cache.as_mut() {
                c.apply(&scratch.delta);
            }
            out.sims.push(v.sim.to_bits());
        }
        round.sweep_ms = t0.elapsed().as_secs_f64() * 1e3;
        out.sweep_ms += round.sweep_ms;
        out.verified += round.pairs;
        out.metric_calls += round.metric_calls;
        out.hits += round.hits;
        out.rounds.push(round);
        if !w.merge_truth_round(&verifier, &mut cache, &mut scratch) {
            break;
        }
    }
    if let Some(c) = &cache {
        c.check_invariants().expect("cache invariants");
        out.cache_size = c.len();
        out.cache_invalidated = c.invalidated();
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    let ds = dataset(smoke);
    let xi = 0.6;

    // ---- Part 1: the verify-stage sweep, cache on vs off.
    println!(
        "# Verify-stage memoization ({} records, {} entities, ξ = {xi})\n",
        ds.len(),
        ds.truth.entity_count()
    );
    let mut on = sweep(&ds, xi, true);
    let mut off = sweep(&ds, xi, false);
    for _ in 1..reps {
        let r = sweep(&ds, xi, true);
        if r.sweep_ms < on.sweep_ms {
            on = r;
        }
        let r = sweep(&ds, xi, false);
        if r.sweep_ms < off.sweep_ms {
            off = r;
        }
    }
    assert_eq!(
        on.sims, off.sims,
        "cached and uncached sweeps must be bit-identical"
    );
    assert_eq!(off.hits, 0, "uncached sweep must report no cache traffic");
    assert!(
        on.metric_calls < off.metric_calls,
        "the cache must save metric calls"
    );

    header(&[
        "round",
        "pairs",
        "cached (ms)",
        "uncached (ms)",
        "metric calls (c)",
        "metric calls (u)",
        "hits",
    ]);
    let mut round_entries: Vec<Json> = Vec::new();
    for (r, (a, b)) in on.rounds.iter().zip(&off.rounds).enumerate() {
        row(&[
            r.to_string(),
            a.pairs.to_string(),
            format!("{:.1}", a.sweep_ms),
            format!("{:.1}", b.sweep_ms),
            a.metric_calls.to_string(),
            b.metric_calls.to_string(),
            a.hits.to_string(),
        ]);
        round_entries.push(Json::Obj(vec![
            ("round".into(), Json::Int(r as i64)),
            ("pairs".into(), Json::Int(a.pairs as i64)),
            ("cached_ms".into(), Json::Float(a.sweep_ms)),
            ("uncached_ms".into(), Json::Float(b.sweep_ms)),
            (
                "cached_metric_calls".into(),
                Json::Int(a.metric_calls as i64),
            ),
            (
                "uncached_metric_calls".into(),
                Json::Int(b.metric_calls as i64),
            ),
            ("cache_hits".into(), Json::Int(a.hits as i64)),
        ]));
    }
    let speedup = off.sweep_ms / on.sweep_ms;
    let throughput_on = on.verified as f64 / (on.sweep_ms / 1e3);
    let throughput_off = off.verified as f64 / (off.sweep_ms / 1e3);
    println!(
        "\nsweep totals: {} pairs verified | cached {:.1} ms ({:.0} pairs/s) vs uncached {:.1} ms \
         ({:.0} pairs/s) → {speedup:.2}× | metric calls {} vs {} | {:.0}% hit rate | {} live \
         entries, {} invalidated",
        on.verified,
        on.sweep_ms,
        throughput_on,
        off.sweep_ms,
        throughput_off,
        on.metric_calls,
        off.metric_calls,
        100.0 * on.hits as f64 / (on.hits + on.metric_calls).max(1) as f64,
        on.cache_size,
        on.cache_invalidated,
    );

    // ---- Part 2: end-to-end pipeline, cache on/off × 1/N threads.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n_threads = host_cpus.clamp(2, 8);
    println!("\n# End-to-end pipeline (δ = 0.45, ξ = {xi})\n");
    header(&[
        "threads",
        "cache",
        "resolve (ms)",
        "verify (ms)",
        "metric calls",
        "hit rate",
    ]);
    let mut pipeline_entries: Vec<Json> = Vec::new();
    let mut baseline_entity_of: Option<Vec<u32>> = None;
    let mut baseline_traffic: Option<(u64, u64)> = None;
    for &threads in &[1usize, n_threads] {
        for &cache_on in &[true, false] {
            let mut cfg = HeraConfig::new(0.45, xi).with_threads(threads);
            // Eager voting keeps the forced-pair path (the metric-calling
            // one) hot, like the sweep above.
            cfg.vote_min_n = 2;
            cfg.vote_error_threshold = 0.8;
            if !cache_on {
                cfg = cfg.without_sim_cache();
            }
            let hera = Hera::builder(cfg).build();
            let mut resolve_ms = f64::INFINITY;
            let mut result = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = hera.run(&ds).unwrap();
                resolve_ms = resolve_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                result = Some(r);
            }
            let r = result.expect("at least one rep ran");
            match &baseline_entity_of {
                None => baseline_entity_of = Some(r.entity_of.clone()),
                Some(base) => assert_eq!(
                    base, &r.entity_of,
                    "{threads}-thread cache={cache_on} run must be bit-identical"
                ),
            }
            if cache_on {
                // Cache traffic is part of the determinism contract too.
                match baseline_traffic {
                    None => {
                        baseline_traffic = Some((r.stats.sim_cache_hits, r.stats.sim_cache_misses))
                    }
                    Some(t) => assert_eq!(
                        t,
                        (r.stats.sim_cache_hits, r.stats.sim_cache_misses),
                        "cache traffic must not depend on thread count"
                    ),
                }
            }
            row(&[
                threads.to_string(),
                if cache_on { "on" } else { "off" }.to_string(),
                format!("{resolve_ms:.1}"),
                format!("{:.1}", r.stats.verify_time.as_secs_f64() * 1e3),
                r.stats.metric_sim_calls.to_string(),
                format!("{:.0}%", r.stats.sim_cache_hit_rate() * 100.0),
            ]);
            pipeline_entries.push(Json::Obj(vec![
                ("threads".into(), Json::Int(threads as i64)),
                (
                    "sim_cache".into(),
                    Json::Str(if cache_on { "on" } else { "off" }.into()),
                ),
                ("resolve_ms".into(), Json::Float(resolve_ms)),
                (
                    "verify_ms".into(),
                    Json::Float(r.stats.verify_time.as_secs_f64() * 1e3),
                ),
                (
                    "metric_sim_calls".into(),
                    Json::Int(r.stats.metric_sim_calls as i64),
                ),
                (
                    "metric_calls_by_round".into(),
                    Json::Arr(
                        r.stats
                            .metric_calls_by_round
                            .iter()
                            .map(|&c| Json::Int(c as i64))
                            .collect(),
                    ),
                ),
                (
                    "cache_hits".into(),
                    Json::Int(r.stats.sim_cache_hits as i64),
                ),
                (
                    "cache_misses".into(),
                    Json::Int(r.stats.sim_cache_misses as i64),
                ),
                ("merges".into(), Json::Int(r.stats.merges as i64)),
            ]));
        }
    }

    // ---- Part 3: one traced run — the journal rides next to the JSON
    // artifact. Smoke mode exercises the full serialization path through
    // a null sink instead of touching results/.
    let trace_path = "results/TRACE_verify.jsonl";
    let recorder = if smoke {
        hera_obs::Recorder::to_null()
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        hera_obs::Recorder::to_file(trace_path).expect("create trace journal")
    };
    let mut traced_cfg = HeraConfig::new(0.45, xi).with_threads(n_threads);
    traced_cfg.vote_min_n = 2;
    traced_cfg.vote_error_threshold = 0.8;
    let traced = Hera::builder(traced_cfg)
        .recorder(recorder.clone())
        .build()
        .run(&ds)
        .unwrap();
    recorder.flush();
    assert_eq!(
        baseline_entity_of.as_deref(),
        Some(traced.entity_of.as_slice()),
        "traced run must be bit-identical to the untraced pipeline"
    );
    if !smoke {
        let text = std::fs::read_to_string(trace_path).expect("read trace journal back");
        let summary = hera_obs::validate(&text).expect("trace journal validates");
        assert_eq!(summary.count("merge"), traced.stats.merges);
        println!("\nwrote {trace_path} ({} journal lines)", summary.lines);
    }

    if smoke {
        println!("\nsmoke mode: skipping results/BENCH_verify.json");
        return;
    }
    BenchReport::new("verify_memoization")
        .dataset_with_entities(&ds.name, ds.len(), ds.truth.entity_count())
        .reps(reps)
        .note(
            "sweep = verify all surviving candidate pairs each round, then merge one \
             ground-truth tree-reduction round; Monge–Elkan string metric; results are \
             bit-identical cache on/off and at every thread count",
        )
        .section(
            "sweep",
            Json::Obj(vec![
                ("pairs_verified".into(), Json::Int(on.verified as i64)),
                ("cached_ms".into(), Json::Float(on.sweep_ms)),
                ("uncached_ms".into(), Json::Float(off.sweep_ms)),
                ("speedup".into(), Json::Float(speedup)),
                ("cached_pairs_per_sec".into(), Json::Float(throughput_on)),
                ("uncached_pairs_per_sec".into(), Json::Float(throughput_off)),
                (
                    "cached_metric_calls".into(),
                    Json::Int(on.metric_calls as i64),
                ),
                (
                    "uncached_metric_calls".into(),
                    Json::Int(off.metric_calls as i64),
                ),
                ("cache_hits".into(), Json::Int(on.hits as i64)),
                ("cache_entries".into(), Json::Int(on.cache_size as i64)),
                (
                    "cache_invalidated".into(),
                    Json::Int(on.cache_invalidated as i64),
                ),
                ("rounds".into(), Json::Arr(round_entries)),
            ]),
        )
        .section("pipeline", Json::Arr(pipeline_entries))
        .write("results/BENCH_verify.json");
}
