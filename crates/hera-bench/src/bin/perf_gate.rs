//! CI performance-regression gate over the `exp_scale` smoke tier.
//!
//! Compares the smoke-tier throughputs of a freshly produced
//! `results/BENCH_scale.json` against the committed baseline
//! `results/BENCH_scale_baseline.json` and **fails (exit 1)** when any
//! gated metric regresses by more than the tolerance (default 30%,
//! generous because CI runners are noisy and shared). Gated metrics:
//!
//! * `gen_records_per_sec` — streaming generator throughput,
//! * `join_pairs_per_sec` — similarity-join throughput,
//! * `resolve_records_per_sec` — end-to-end compare-and-merge throughput.
//!
//! Beyond throughput, the gate also fails on a **candidate-pair
//! blowup**: if the smoke tier's realized `pairs` count grows past 2×
//! the baseline's, candidate generation has regressed even if raw
//! throughput kept up (more pairs per second can mask *far* more
//! pairs). Tune with `--max-pair-blowup FACTOR`.
//!
//! Improvements are reported but never fail the gate. Usage:
//!
//! ```text
//! perf_gate [--current PATH] [--baseline PATH] [--max-regression PCT]
//!           [--max-pair-blowup FACTOR]
//! ```
//!
//! Overrides:
//!
//! * `HERA_PERF_GATE=off` — skip the comparison (exit 0 with a warning).
//!   Set it on a CI run that intentionally trades speed for something
//!   else, then refresh the baseline in the same PR with
//!   `cargo run --release -p hera-bench --bin exp_scale -- --smoke --out
//!   results/BENCH_scale_baseline.json`.
//! * `--max-regression 50` — loosen (or tighten) the tolerance without
//!   disabling the gate.

use hera_types::json::{parse, Json};

/// Throughput metrics the gate enforces (higher is better).
const GATED: [&str; 3] = [
    "gen_records_per_sec",
    "join_pairs_per_sec",
    "resolve_records_per_sec",
];

fn main() {
    if std::env::var("HERA_PERF_GATE").as_deref() == Ok("off") {
        println!("perf_gate: HERA_PERF_GATE=off — skipping regression check");
        return;
    }
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!(
                    "perf_gate: {name} requires a value\n\
                     usage: perf_gate [--current PATH] [--baseline PATH] [--max-regression PCT]"
                );
                std::process::exit(2);
            })
        })
    };
    let current_path = flag("--current").unwrap_or_else(|| "results/BENCH_scale.json".into());
    let baseline_path =
        flag("--baseline").unwrap_or_else(|| "results/BENCH_scale_baseline.json".into());
    let max_regression: f64 = flag("--max-regression")
        .map(|v| v.parse().expect("--max-regression PCT"))
        .unwrap_or(30.0);
    let max_pair_blowup: f64 = flag("--max-pair-blowup")
        .map(|v| v.parse().expect("--max-pair-blowup FACTOR"))
        .unwrap_or(2.0);

    let current_doc = load(&current_path);
    let baseline_doc = load(&baseline_path);
    let current = smoke_tier(&current_doc, &current_path);
    let baseline = smoke_tier(&baseline_doc, &baseline_path);

    println!("perf_gate: {current_path} vs {baseline_path} (tolerance {max_regression}%)\n");
    let mut failed = false;
    for metric in GATED {
        let cur = metric_of(current, metric, &current_path);
        let base = metric_of(baseline, metric, &baseline_path);
        let change = 100.0 * (cur - base) / base;
        let verdict = if change < -max_regression {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {metric:<26} {base:>12.0} -> {cur:>12.0}  ({change:+6.1}%)  {verdict}");
    }
    // Candidate-pair blowup: more pairs is more downstream work even at
    // equal throughput, so it gates independently.
    let cur_pairs = metric_of(current, "pairs", &current_path);
    let base_pairs = metric_of(baseline, "pairs", &baseline_path);
    let factor = cur_pairs / base_pairs;
    let verdict = if factor > max_pair_blowup {
        failed = true;
        "FAIL"
    } else {
        "ok"
    };
    println!(
        "  {:<26} {base_pairs:>12.0} -> {cur_pairs:>12.0}  ({factor:>6.2}x)  {verdict} (limit {max_pair_blowup}x)",
        "pairs"
    );
    if failed {
        eprintln!(
            "\nperf_gate: smoke-tier throughput regressed by more than {max_regression}%,\n\
             or candidate pairs blew up past {max_pair_blowup}x the baseline.\n\
             If the slowdown is intentional, refresh the baseline\n\
             (cargo run --release -p hera-bench --bin exp_scale -- --smoke \
             --out results/BENCH_scale_baseline.json)\n\
             or set HERA_PERF_GATE=off for this run."
        );
        std::process::exit(1);
    }
    println!("\nperf_gate: ok");
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("perf_gate: {path} is not valid JSON: {e:?}"))
}

/// The smoke tier: the smallest pipeline-mode entry of the sweep (the
/// one tier a `--smoke` run produces, and the common subset of full and
/// smoke artifacts).
fn smoke_tier<'a>(doc: &'a Json, path: &str) -> &'a Json {
    let tiers = doc
        .expect("tiers")
        .and_then(|t| t.as_arr())
        .unwrap_or_else(|e| panic!("perf_gate: {path} has no tiers array: {e:?}"));
    tiers
        .iter()
        .filter(|t| t.get("mode").and_then(|m| m.as_str().ok()) == Some("pipeline"))
        .min_by_key(|t| {
            t.get("records")
                .and_then(|r| r.as_i64().ok())
                .unwrap_or(i64::MAX)
        })
        .unwrap_or_else(|| panic!("perf_gate: {path} has no pipeline tier"))
}

fn metric_of(tier: &Json, metric: &str, path: &str) -> f64 {
    let v = tier
        .expect(metric)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|e| panic!("perf_gate: {path} tier lacks {metric}: {e:?}"));
    assert!(v > 0.0, "perf_gate: {path} {metric} must be positive");
    v
}
