//! Table I — dataset characteristics of `D_m1` … `D_m4`.
//!
//! Paper values: n ∈ {1000, 2000, 3000, 4000}; entities
//! {121, 277, 361, 533}; distinct attributes {16, 22, 23, 21}.

use hera_bench::{header, row};

fn main() {
    println!("# Table I: dataset characteristics\n");
    header(&[
        "dataset",
        "n",
        "# of entity",
        "# of distinct attribute",
        "# of sources",
    ]);
    for ds in hera_bench::datasets() {
        row(&[
            ds.name.clone(),
            ds.len().to_string(),
            ds.truth.entity_count().to_string(),
            ds.truth.distinct_attr_count().to_string(),
            ds.registry.len().to_string(),
        ]);
    }
    println!("\npaper: n=1000/2000/3000/4000, entities=121/277/361/533, attrs=16/22/23/21");
}
