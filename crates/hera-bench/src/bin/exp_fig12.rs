//! Fig. 12(a) — execution time versus δ.
//!
//! Paper shape: larger datasets cost more; the spread across datasets
//! narrows as δ grows; at δ = 0.8 the paper's C++ implementation finished
//! in ~100 ms on every dataset. The index is built offline (Prop. 1), so
//! we report the resolve time (iteration phase) and the one-off index
//! time separately.

use hera_bench::{header, row, run_at_delta, shared_join, DELTA_SWEEP};
use std::time::Instant;

fn main() {
    println!("# Fig 12: execution time vs δ (ξ = 0.5)\n");
    header(&["dataset", "δ", "resolve (ms)", "index build (ms, offline)"]);
    for ds in hera_bench::datasets() {
        let t = Instant::now();
        let pairs = shared_join(&ds);
        let join_ms = t.elapsed().as_secs_f64() * 1e3;
        for &delta in &DELTA_SWEEP {
            let (result, _) = run_at_delta(&ds, &pairs, delta);
            row(&[
                ds.name.clone(),
                format!("{delta:.1}"),
                format!("{:.1}", result.stats.resolve_time.as_secs_f64() * 1e3),
                format!(
                    "{:.1}",
                    join_ms + result.stats.index_build_time.as_secs_f64() * 1e3
                ),
            ]);
        }
    }
    println!("\npaper: ~100 ms at δ = 0.8 on all datasets (C++, Core i5)");
}
