//! hera-serve throughput/latency sweep: ingest rate, lookup latency,
//! and boundary-pass cost across (shard, worker-thread) counts on the
//! scale-tier stream.
//!
//! For each (shards, workers) pair the harness builds an `ErService`,
//! streams the seeded scale dataset through it (budget-free shard
//! resolves every `RESOLVE_EVERY` records — the latency-oriented
//! serving pattern), samples provisional lookup latency, runs the
//! cross-shard boundary pass, samples stitched lookup latency both
//! single-client and from `MC_CLIENTS` concurrent client threads, and
//! scores the stitched partition against ground truth. The stitched
//! partition must be identical at every shard *and worker* count — the
//! harness asserts it, so the sweep doubles as a large-scale run of
//! both the sharding-equivalence and the worker-determinism property.
//!
//! With streaming blocking on (`--blocking`, default token), the
//! incremental join verifies each record against its co-blocked
//! neighborhood only (`IncrementalJoin::insert_among`), so per-record
//! ingest cost is already universe-independent and the shard counts
//! land within noise of each other on this single-core host — the
//! sweep's value is showing that sharding costs nothing (routing +
//! stitch overhead stay flat) while bounding per-shard state for
//! scale-out. With `--blocking none` the join scans its full posting
//! lists and smaller per-shard universes *do* win; that is the
//! configuration where the shard axis is interesting.
//!
//! * `--smoke` — 5k-record tier (the CI workload).
//! * `--records N` — ad-hoc tier size (default 100 000, seed 52).
//! * `--blocking S` — none | token | qgram | lsh (default token).
//! * `--out PATH` — artifact path (default `results/BENCH_serve.json`).

use hera_bench::{header, host_cpus, row, BenchReport};
use hera_block::BlockingScheme;
use hera_core::{HeraConfig, ResolveBudget};
use hera_datagen::{scale_preset, ScaleGenerator};
use hera_eval::PairMetrics;
use hera_serve::ErService;
use hera_types::json::Json;
use hera_types::{Dataset, SchemaId};
use std::time::Instant;

/// Matches the `exp_scale` pipeline conventions (δ = 0.5, ξ = 0.7).
const DELTA: f64 = 0.5;
const XI: f64 = 0.7;

/// 100k-tier stream, seed 52 — the same stream `exp_scale` runs.
const FULL_RECORDS: usize = 100_000;
const SMOKE_RECORDS: usize = 5_000;
const SEED: u64 = 52;

/// (shards, worker threads) pairs swept. Workers beyond the shard
/// count are clamped by the service, so only `workers <= shards`
/// combinations appear.
const CONFIGS: &[(usize, usize)] = &[(1, 1), (2, 1), (2, 2), (4, 1), (4, 2), (4, 4)];

/// Concurrent client threads for the multi-client lookup sample.
const MC_CLIENTS: usize = 4;

/// Budget-free shard resolve cadence during ingest.
const RESOLVE_EVERY: usize = 5_000;

/// Lookup-latency sample size per phase.
const LOOKUP_SAMPLE: usize = 200;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("exp_serve: {name} requires a value");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = value_of("--out").unwrap_or_else(|| "results/BENCH_serve.json".into());
    let records: usize = value_of("--records")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--records expects a count, got {v:?}"))
        })
        .unwrap_or(if smoke { SMOKE_RECORDS } else { FULL_RECORDS });
    let blocking = value_of("--blocking").unwrap_or_else(|| "token".into());
    let scheme = BlockingScheme::parse(&blocking).unwrap_or_else(|e| panic!("{e}"));

    eprintln!("[gen] {records} records, seed {SEED}…");
    let ds = ScaleGenerator::new(scale_preset(records, SEED)).generate();

    println!(
        "# hera-serve sweep (δ = {DELTA}, ξ = {XI}, blocking = {blocking}, \
         {records} records, {} cpu(s))\n",
        host_cpus()
    );
    header(&[
        "shards",
        "workers",
        "ingest_ms",
        "rec/s",
        "lookup_us(prov)",
        "stitch_ms",
        "lookup_us(stitched)",
        &format!("lookup_us(mc{MC_CLIENTS})"),
        "f1",
        "entities",
    ]);

    let mut entries: Vec<Json> = Vec::new();
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for &(shards, workers) in CONFIGS {
        let e = run_config(&ds, scheme.clone(), shards, workers, &mut reference);
        entries.push(e);
    }

    BenchReport::new("serve_sweep")
        .dataset(&format!("scale_{records}"), records)
        .reps(1)
        .note(&format!(
            "delta={DELTA} xi={XI} blocking={blocking}; single-core host; with blocking on, the \
             incremental join verifies only co-blocked candidates (insert_among), so per-record \
             cost is universe-independent and shard counts land within noise — the sweep shows \
             sharding costs nothing while bounding per-shard state; shard resolves run \
             budget-free every {RESOLVE_EVERY} records; lookup latency is the mean over \
             {LOOKUP_SAMPLE} strided probes (the mc column: {MC_CLIENTS} concurrent client \
             threads, all probes pooled — on this single-core host it measures lock/channel \
             overhead, not parallel speedup); the stitched partition is asserted identical \
             across every (shards, workers) pair"
        ))
        .section("shard_counts", Json::Arr(entries))
        .write(&out);
}

/// Runs the full serve lifecycle at one (shards, workers) pair; returns
/// its JSON entry and checks the stitched partition against the first
/// run's.
fn run_config(
    ds: &Dataset,
    scheme: BlockingScheme,
    shards: usize,
    workers: usize,
    reference: &mut Option<Vec<Vec<u32>>>,
) -> Json {
    let config = HeraConfig::new(DELTA, XI).with_blocking(scheme);
    let service = std::sync::Arc::new(ErService::builder(config, shards).workers(workers).build());
    let schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .map(|s| {
            service.add_schema(
                &s.name,
                &s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();

    eprintln!("[{shards} shard(s) / {workers} worker(s)] ingesting…");
    let t0 = Instant::now();
    let mut resolve_ms = 0.0f64;
    for (i, r) in ds.records.iter().enumerate() {
        service
            .ingest(schemas[r.schema.index()], r.values.clone())
            .expect("ingest");
        if (i + 1) % RESOLVE_EVERY == 0 {
            let tr = Instant::now();
            service.resolve(ResolveBudget::unlimited());
            resolve_ms += tr.elapsed().as_secs_f64() * 1e3;
            eprintln!("  …{} records in {:.1}s", i + 1, t0.elapsed().as_secs_f64());
        }
    }
    service.resolve(ResolveBudget::unlimited());
    let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
    let per_sec = ds.len() as f64 / (ingest_ms / 1e3);

    let lookup_prov_us = sample_lookup_us(&service, ds.len());

    eprintln!("[{shards} shard(s) / {workers} worker(s)] stitching…");
    let t0 = Instant::now();
    let stitch = service.stitch();
    let stitch_ms = t0.elapsed().as_secs_f64() * 1e3;

    let lookup_stitched_us = sample_lookup_us(&service, ds.len());
    let lookup_mc_us = sample_lookup_multiclient_us(&service, ds.len());

    let partition = service.stitched_partition();
    let f1 = PairMetrics::score(&partition, &ds.truth).f1();
    let entities = partition.len();
    match reference {
        Some(want) => assert_eq!(
            *want, partition,
            "{shards} shard(s) / {workers} worker(s): stitched partition diverged \
             from the first run"
        ),
        None => *reference = Some(partition),
    }

    row(&[
        shards.to_string(),
        service.worker_count().to_string(),
        format!("{ingest_ms:.0}"),
        format!("{per_sec:.0}"),
        format!("{lookup_prov_us:.1}"),
        format!("{stitch_ms:.0}"),
        format!("{lookup_stitched_us:.1}"),
        format!("{lookup_mc_us:.1}"),
        format!("{f1:.4}"),
        entities.to_string(),
    ]);

    Json::Obj(vec![
        ("shards".into(), Json::Int(shards as i64)),
        ("workers".into(), Json::Int(service.worker_count() as i64)),
        ("ingest_ms".into(), Json::Float(ingest_ms)),
        ("shard_resolve_ms".into(), Json::Float(resolve_ms)),
        ("ingest_records_per_sec".into(), Json::Float(per_sec)),
        ("lookup_provisional_us".into(), Json::Float(lookup_prov_us)),
        ("stitch_ms".into(), Json::Float(stitch_ms)),
        (
            "stitch_merges".into(),
            Json::Int(stitch.report.merges as i64),
        ),
        ("lookup_stitched_us".into(), Json::Float(lookup_stitched_us)),
        ("lookup_multiclient_us".into(), Json::Float(lookup_mc_us)),
        ("multiclient_clients".into(), Json::Int(MC_CLIENTS as i64)),
        ("f1".into(), Json::Float(f1)),
        ("entities".into(), Json::Int(entities as i64)),
    ])
}

/// Mean lookup latency in microseconds over a deterministic strided
/// sample of record ids.
fn sample_lookup_us(service: &ErService, n: usize) -> f64 {
    let stride = (n / LOOKUP_SAMPLE).max(1);
    let ids: Vec<u32> = (0..n).step_by(stride).map(|i| i as u32).collect();
    let t0 = Instant::now();
    let mut touched = 0usize;
    for &id in &ids {
        touched += service.lookup(id).expect("sampled id exists").members.len();
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / ids.len() as f64;
    std::hint::black_box(touched);
    us
}

/// Mean lookup latency with `MC_CLIENTS` client threads probing
/// concurrently — each thread takes a disjoint stride offset so the
/// pooled probes cover the same id range as the single-client sample.
/// On a single-core host this measures contention (the service's
/// bookkeeping lock + reply channels), not parallel speedup.
fn sample_lookup_multiclient_us(service: &std::sync::Arc<ErService>, n: usize) -> f64 {
    let stride = (n / LOOKUP_SAMPLE).max(1) * MC_CLIENTS;
    let t0 = Instant::now();
    let mut probes = 0usize;
    let threads: Vec<_> = (0..MC_CLIENTS)
        .map(|c| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut touched = 0usize;
                let mut count = 0usize;
                let mut id = c * stride / MC_CLIENTS;
                while id < n {
                    touched += service
                        .lookup(id as u32)
                        .expect("sampled id exists")
                        .members
                        .len();
                    count += 1;
                    id += stride;
                }
                std::hint::black_box(touched);
                count
            })
        })
        .collect();
    for t in threads {
        probes += t.join().expect("lookup client");
    }
    t0.elapsed().as_secs_f64() * 1e6 / probes.max(1) as f64
}
