//! Thread-scaling experiment: measures the parallel join and the
//! parallel compare-and-merge at 1/2/4/8 threads, checks that results
//! stay bit-identical, and records the speedups in
//! `results/BENCH_parallel.json`.

use hera_bench::{header, host_cpus, row, BenchReport};
use hera_core::{Hera, HeraConfig};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use hera_types::json::Json;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn main() {
    let ds = Generator::new(DatagenConfig {
        name: "parallel-bench".into(),
        seed: 7,
        n_records: 800,
        n_entities: 100,
        n_attrs: 14,
        n_sources: 4,
        min_source_attrs: 7,
        max_source_attrs: 11,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate();

    println!("# Parallel scaling (ξ = δ = 0.5, {} records)\n", ds.len());
    if host_cpus() == 1 {
        eprintln!(
            "exp_parallel: WARNING — this host exposes a single CPU; the speedup columns \
             measure coordination overhead, not parallelism. Re-run on a multi-core host \
             before citing them (the envelope's host_cpus records the conditions)."
        );
    }
    header(&[
        "threads",
        "join (ms)",
        "join ×",
        "resolve (ms)",
        "resolve ×",
        "verify (ms)",
        "pairs/s",
    ]);

    let baseline = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(1))
        .build()
        .run(&ds)
        .unwrap();
    let mut entries: Vec<Json> = Vec::new();
    let mut base_join_ms = 0.0;
    let mut base_resolve_ms = 0.0;
    for &t in &THREADS {
        let hera = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(t)).build();
        // Best-of-REPS to damp scheduler noise.
        let mut join_ms = f64::INFINITY;
        let mut pairs = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            pairs = hera.join(&ds);
            join_ms = join_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        let mut resolve_ms = f64::INFINITY;
        let mut verify_ms = 0.0;
        let mut pairs_per_sec = 0.0;
        let mut result = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let r = hera.run_with_pairs(&ds, pairs.clone()).unwrap();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            if ms < resolve_ms {
                resolve_ms = ms;
                verify_ms = r.stats.verify_time.as_secs_f64() * 1e3;
                pairs_per_sec = r.stats.verify_pairs_per_sec();
            }
            result = Some(r);
        }
        let result = result.expect("at least one rep ran");
        assert_eq!(
            result.entity_of, baseline.entity_of,
            "{t}-thread run must be bit-identical to 1 thread"
        );
        if t == 1 {
            base_join_ms = join_ms;
            base_resolve_ms = resolve_ms;
        }
        let join_x = base_join_ms / join_ms;
        let resolve_x = base_resolve_ms / resolve_ms;
        row(&[
            t.to_string(),
            format!("{join_ms:.1}"),
            format!("{join_x:.2}"),
            format!("{resolve_ms:.1}"),
            format!("{resolve_x:.2}"),
            format!("{verify_ms:.1}"),
            format!("{pairs_per_sec:.0}"),
        ]);
        entries.push(Json::Obj(vec![
            ("threads".into(), Json::Int(t as i64)),
            ("join_ms".into(), Json::Float(join_ms)),
            ("join_speedup".into(), Json::Float(join_x)),
            ("resolve_ms".into(), Json::Float(resolve_ms)),
            ("resolve_speedup".into(), Json::Float(resolve_x)),
            ("verify_ms".into(), Json::Float(verify_ms)),
            ("verify_pairs_per_sec".into(), Json::Float(pairs_per_sec)),
            ("merges".into(), Json::Int(result.stats.merges as i64)),
        ]));
    }

    // One traced run at the top thread count: the journal artifact rides
    // next to BENCH_parallel.json, and must match the 1-thread baseline.
    std::fs::create_dir_all("results").expect("create results/");
    let trace_path = "results/TRACE_parallel.jsonl";
    let recorder = hera_obs::Recorder::to_file(trace_path).expect("create trace journal");
    let traced = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(THREADS[THREADS.len() - 1]))
        .recorder(recorder.clone())
        .build()
        .run(&ds)
        .unwrap();
    recorder.flush();
    assert_eq!(traced.entity_of, baseline.entity_of);
    let text = std::fs::read_to_string(trace_path).expect("read trace journal back");
    let summary = hera_obs::validate(&text).expect("trace journal validates");
    assert_eq!(summary.count("merge"), traced.stats.merges);
    println!("\nwrote {trace_path} ({} journal lines)", summary.lines);

    BenchReport::new("parallel_scaling")
        .dataset_with_entities(&ds.name, ds.len(), ds.truth.entity_count())
        .reps(REPS)
        .note(if host_cpus() == 1 {
            "MEASURED ON A 1-CPU HOST: the speedup columns quantify coordination overhead \
             only and do not substantiate parallel scaling; results are still verified \
             bit-identical at every thread count"
        } else {
            "speedups are bounded by host_cpus; results are bit-identical at every thread \
             count, so a 1-CPU host measures only the (small) coordination overhead"
        })
        .section("scaling", Json::Arr(entries))
        .write("results/BENCH_parallel.json");
}
