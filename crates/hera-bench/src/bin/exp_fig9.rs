//! Fig. 9 — precision (a), recall (b), and F1 (c) of HERA versus the
//! record-similarity threshold δ, across the four datasets.
//!
//! Paper shape: precision declines slightly with dataset size and more
//! pronouncedly at low δ; recall climbs toward high δ-independence on
//! small data (0.81–0.98 on D_m1); F1 peaks mid-sweep; averages drop
//! ~4–5 points from D_m1 to D_m4.

use hera_bench::{header, row, run_at_delta, shared_join, DELTA_SWEEP};

fn main() {
    println!("# Fig 9: HERA quality vs δ (ξ = 0.5)\n");
    header(&["dataset", "δ", "precision", "recall", "F1"]);
    for ds in hera_bench::datasets() {
        let pairs = shared_join(&ds);
        let mut f1_sum = 0.0;
        for &delta in &DELTA_SWEEP {
            let (_, m) = run_at_delta(&ds, &pairs, delta);
            f1_sum += m.f1();
            row(&[
                ds.name.clone(),
                format!("{delta:.1}"),
                format!("{:.3}", m.precision()),
                format!("{:.3}", m.recall()),
                format!("{:.3}", m.f1()),
            ]);
        }
        println!(
            "| {} | avg |  |  | {:.3} |",
            ds.name,
            f1_sum / DELTA_SWEEP.len() as f64
        );
    }
}
