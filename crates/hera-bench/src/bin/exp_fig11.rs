//! Fig. 11 — HERA vs R-Swoosh vs CR vs CC: precision (a), recall (b) and
//! F-measure (c) on the homogeneous `D_m1-S` … `D_m4-S` datasets.
//!
//! Setup per §VI: the baselines run on the exchanged data (target schema
//! = ⅓ of the distinct attributes); HERA runs on the heterogeneous
//! originals, then both are scored on the same ground truth. Paper shape:
//! HERA wins everywhere — precision > 0.9 (+6/12/13 points over
//! R-Swoosh/CR/CC), recall ≈ 0.93 (+6/10/16), F1 +6/11/15 — and HERA's
//! F-measure is the least sensitive to dataset size.

use hera_baselines::{CollectiveEr, CorrelationClustering, RSwoosh, Resolver};
use hera_bench::{header, row, run_at_delta, shared_join, XI};
use hera_eval::PairMetrics;
use hera_sim::TypeDispatch;

fn main() {
    let delta = 0.5;
    println!("# Fig 11: HERA vs baselines on -S datasets (δ = {delta}, ξ = {XI})\n");
    header(&["dataset", "system", "precision", "recall", "F1"]);
    let metric = TypeDispatch::paper_default();
    for ds in hera_bench::datasets() {
        // HERA on the heterogeneous original.
        let pairs = shared_join(&ds);
        let (_, m) = run_at_delta(&ds, &pairs, delta);
        row(&[
            format!("{}-S", ds.name),
            "HERA".into(),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
        ]);

        // Baselines on the exchanged -S variant.
        let (homo, _) = hera_exchange::exchange_small(&ds, 1);
        let baselines: Vec<Box<dyn Resolver>> = vec![
            Box::new(RSwoosh::new(delta, XI)),
            Box::new(CollectiveEr::new(delta, XI, 0.25)),
            Box::new(CorrelationClustering::new(delta, XI, 7)),
        ];
        for b in baselines {
            let clusters = b.resolve(&homo, &metric);
            let m = PairMetrics::score(&clusters, &homo.truth);
            row(&[
                format!("{}-S", ds.name),
                b.name().into(),
                format!("{:.3}", m.precision()),
                format!("{:.3}", m.recall()),
                format!("{:.3}", m.f1()),
            ]);
        }
    }
    println!("\npaper: HERA avg P>0.9 (+6/12/13 over R-Swoosh/CR/CC), avg R≈0.93 (+6/10/16), F1 +6/11/15");

    // The -L variants (⅔ of distinct attributes) — the paper defers these
    // to its tech report; reproduced here for completeness.
    println!("\n# Fig 11 (tech-report companion): baselines on -L datasets\n");
    header(&["dataset", "system", "precision", "recall", "F1"]);
    for ds in hera_bench::datasets() {
        let (homo, _) = hera_exchange::exchange_large(&ds, 1);
        let baselines: Vec<Box<dyn Resolver>> = vec![
            Box::new(RSwoosh::new(delta, XI)),
            Box::new(CollectiveEr::new(delta, XI, 0.25)),
            Box::new(CorrelationClustering::new(delta, XI, 7)),
        ];
        for b in baselines {
            let clusters = b.resolve(&homo, &metric);
            let m = PairMetrics::score(&clusters, &homo.truth);
            row(&[
                format!("{}-L", ds.name),
                b.name().into(),
                format!("{:.3}", m.precision()),
                format!("{:.3}", m.recall()),
                format!("{:.3}", m.f1()),
            ]);
        }
    }
}
