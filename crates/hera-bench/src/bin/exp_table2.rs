//! Table II — HERA's structural parameters per dataset: index size |S|,
//! average simplified-bipartite-graph size m̄, and iteration count k.
//!
//! Paper values (ξ = δ = 0.5): |S| = 13294/39270/52463/79462,
//! m̄ = 8.3/11.2/7.9/8.6, k = 19/24/27/26.

use hera_bench::{header, row, run_at_delta, shared_join};

fn main() {
    println!("# Table II: parameters for different datasets (ξ = δ = 0.5)\n");
    header(&["dataset", "|S|", "m̄ (pre-simplification)", "m̄ (post)", "k"]);
    for ds in hera_bench::datasets() {
        let pairs = shared_join(&ds);
        let (result, _) = run_at_delta(&ds, &pairs, 0.5);
        row(&[
            ds.name.clone(),
            result.stats.index_size.to_string(),
            format!("{:.1}", result.stats.avg_graph_nodes()),
            format!("{:.1}", result.stats.avg_simplified_nodes()),
            result.stats.iterations.to_string(),
        ]);
    }
    println!("\npaper: |S|=13294/39270/52463/79462, m̄=8.3/11.2/7.9/8.6, k=19/24/27/26");
}
