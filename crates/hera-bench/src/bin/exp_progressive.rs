//! Progressive-resolution sweep: result quality as a function of the
//! comparison budget (the PR-8 quality-vs-budget curve).
//!
//! For each tier the harness generates the same seeded dataset as
//! `exp_scale`, ingests it into a `HeraSession` (no intermediate
//! resolution), checkpoints that base state once, and then — restoring
//! the base per point so every point spends its budget on the identical
//! frontier — runs `resolve_progressive` at a sweep of budget fractions
//! of the full run's comparison total. Each point reports merges, F1 vs
//! datagen ground truth, and wall-clock; the harness also verifies the
//! budget-prefix invariant live (each point's journaled merge sequence
//! must be a prefix of the unlimited run's).
//!
//! The headline number is **F1@25%** — the fraction of full-run F1
//! reached after spending a quarter of the comparisons. The Up/Low
//! priority scheduler front-loads the high-confidence merges, so this
//! should sit far above 25%.
//!
//! * `--smoke` — 10⁴ tier only (the CI workload).
//! * `--tier N` — run only the preset tier with N records (tuning aid).
//! * `--records N` — run one ad-hoc tier of N records (tuning aid).
//! * `--xi X` — join threshold override (default 0.55; see `DEFAULT_XI`).
//! * `--skew S` — duplicate cluster-size skew (default 3; see
//!   `DEFAULT_SKEW`).
//! * `--out PATH` — artifact path (default `results/BENCH_progressive.json`).
//! * `--gate-f1-frac X` — exit 1 unless, on every tier, F1 at the 25%
//!   budget point reaches ≥ X × full-run F1 (the CI quality-at-budget
//!   gate; the PR-8 acceptance floor is 0.8).

use hera_bench::{header, row, BenchReport};
use hera_core::{HeraConfig, HeraSession, ResolveBudget};
use hera_datagen::{scale_preset, ScaleGenerator};
use hera_eval::PairMetrics;
use hera_obs::Recorder;
use hera_types::json::Json;
use hera_types::{Dataset, SchemaId};
use std::time::Instant;

/// Merge and join thresholds run looser than the scale sweep's (δ = 0.4
/// vs 0.5, ξ = 0.55 vs 0.7) so the frontier is wide: more candidate
/// pairs per cluster, more heavily-corrupted duplicates recoverable, a
/// richer graph for the component-gain scheduler to rank. The sweep
/// measures *scheduling* quality — how much of the final F1 a partial
/// budget buys — so a frontier the scheduler can actually reorder is
/// the interesting regime.
const DELTA: f64 = 0.4;
const DEFAULT_XI: f64 = 0.55;

/// Duplicate cluster-size skew (`ScaleConfig::duplicate_skew`). The
/// uniform stream (skew 1) the scale sweep uses puts every duplicate in
/// a near-minimal cluster, so pair-F1 grows *linearly* in merges and no
/// scheduler can reach 80% of full F1 on 25% of the comparisons. Real ER
/// workloads are heavy-tailed — hub entities described by many sources —
/// and that is the regime anytime resolution targets: most ground-truth
/// pairs sit in a few big clusters the bound scheduler can front-load.
const DEFAULT_SKEW: f64 = 3.0;

/// Tiers mirror the `exp_scale` pipeline tiers (same sizes, same seeds).
/// The sweep restores the base snapshot once per point, so the 100k tier
/// costs ~sweep-length × its ingest time — full runs only.
const FULL_TIERS: &[(usize, u64)] = &[(10_000, 51)];
const SMOKE_TIERS: &[(usize, u64)] = &[(10_000, 51)];

/// Budget fractions of the full run's comparison total, sweep order.
const FRACTIONS: &[f64] = &[0.05, 0.10, 0.25, 0.50, 0.75, 1.0];

/// The gated point: F1 here vs full-run F1 is the headline ratio.
const GATE_FRACTION: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("exp_progressive: {name} requires a value");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = value_of("--out").unwrap_or_else(|| "results/BENCH_progressive.json".into());
    let gate: Option<f64> = value_of("--gate-f1-frac").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--gate-f1-frac expects a number, got {v:?}"))
    });
    let only: Option<usize> = value_of("--tier").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--tier expects a record count, got {v:?}"))
    });
    let xi: f64 = value_of("--xi")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--xi expects a number, got {v:?}"))
        })
        .unwrap_or(DEFAULT_XI);
    let records: Option<usize> = value_of("--records").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--records expects a record count, got {v:?}"))
    });
    let skew: f64 = value_of("--skew")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--skew expects a number, got {v:?}"))
        })
        .unwrap_or(DEFAULT_SKEW);
    let tiers: Vec<(usize, u64)> = if let Some(n) = records {
        vec![(n, 51)]
    } else if let Some(n) = only {
        vec![*FULL_TIERS
            .iter()
            .find(|(records, _)| *records == n)
            .unwrap_or_else(|| panic!("--tier {n}: no such preset tier"))]
    } else if smoke {
        SMOKE_TIERS.to_vec()
    } else {
        FULL_TIERS.to_vec()
    };

    println!(
        "# Progressive sweep (δ = {DELTA}, ξ = {xi}, skew = {skew}, {} tier{})\n",
        tiers.len(),
        if tiers.len() == 1 { "" } else { "s" }
    );

    let mut tier_entries: Vec<Json> = Vec::new();
    let mut gate_ok = true;
    let mut headline = 0.0f64;
    for &(n, seed) in &tiers {
        let (entry, f1_frac_at_gate) = run_tier(n, seed, xi, skew);
        gate_ok &= gate.is_none_or(|g| f1_frac_at_gate >= g);
        headline = f1_frac_at_gate; // last tier = largest = headline
        tier_entries.push(entry);
    }

    let largest = tiers.last().expect("at least one tier");
    BenchReport::new("progressive_sweep")
        .dataset(&format!("scale_{}", largest.0), largest.0)
        .reps(1)
        .note(&format!(
            "delta={DELTA} xi={xi} skew={skew}; budgets are fractions of the unlimited run's comparison \
             total on the same ingested-base snapshot; every point restores the identical base \
             and its journaled merge sequence is checked to be a prefix of the unlimited run's; \
             headline f1_frac_at_25pct = F1(25% budget) / F1(full) on the largest tier"
        ))
        .section("f1_frac_at_25pct", Json::Float(headline))
        .section("tiers", Json::Arr(tier_entries))
        .write(&out);

    if let Some(g) = gate {
        if !gate_ok {
            eprintln!(
                "\nexp_progressive: FAIL — F1 at the 25% budget fell below {g} of full-run F1"
            );
            std::process::exit(1);
        }
        println!("\nexp_progressive: quality-at-budget gate ({g}) ok");
    }
}

/// Mirrors the dataset's schemas and ingests every record, resolving
/// nothing — the whole frontier goes to the budgeted calls.
fn ingest_base(ds: &Dataset, rec: Recorder, xi: f64) -> HeraSession {
    let mut session = HeraSession::builder(HeraConfig::new(DELTA, xi))
        .recorder(rec)
        .build();
    let schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();
    let t0 = Instant::now();
    for (i, r) in ds.records.iter().enumerate() {
        session
            .add_record(schemas[r.schema.index()], r.values.clone())
            .expect("ingest");
        if (i + 1) % 1000 == 0 {
            eprintln!("  …{} records in {:.1}s", i + 1, t0.elapsed().as_secs_f64());
        }
    }
    session
}

/// The journal's merge lines in emission order.
fn merge_lines(journal: &str) -> Vec<String> {
    journal
        .lines()
        .filter(|l| l.contains("\"ev\":\"merge\""))
        .map(String::from)
        .collect()
}

/// Runs one tier's sweep; returns its JSON entry and F1@25% / F1(full).
fn run_tier(n: usize, seed: u64, xi: f64, skew: f64) -> (Json, f64) {
    eprintln!("[{n}] generating…");
    let mut cfg = scale_preset(n, seed);
    cfg.duplicate_skew = skew;
    let ds = ScaleGenerator::new(cfg).generate();

    eprintln!("[{n}] ingesting {} records…", ds.len());
    let t0 = Instant::now();
    let mut base = ingest_base(&ds, Recorder::disabled(), xi);
    let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;

    let dir = std::env::temp_dir().join(format!("hera-exp-progressive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let snap = dir.join(format!("base-{n}.hera"));
    base.checkpoint(&snap).expect("checkpoint base");
    drop(base);

    // Unlimited reference on the identical base.
    eprintln!("[{n}] unlimited reference…");
    let (rec, buf) = Recorder::to_memory();
    let mut full = HeraSession::builder(HeraConfig::new(DELTA, xi))
        .recorder(rec.deterministic())
        .restore(&snap)
        .expect("restore base");
    let t0 = Instant::now();
    let full_report = full.resolve_progressive(ResolveBudget::unlimited());
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let full_f1 = PairMetrics::score(&full.clusters(), &ds.truth).f1();
    let full_merges = merge_lines(&buf.contents());
    let total = full_report.comparisons_spent.max(1);
    drop(full);

    println!(
        "## scale_{n} (ingest {ingest_ms:.0} ms; full: {total} comparisons, {} merges, \
         F1 {full_f1:.4}, {full_ms:.0} ms)\n",
        full_report.merges
    );
    header(&[
        "budget",
        "fraction",
        "comparisons",
        "merges",
        "frontier",
        "F1",
        "F1/full",
        "prefix",
        "resolve (ms)",
    ]);

    let mut points: Vec<Json> = Vec::new();
    let mut f1_frac_at_gate = 0.0f64;
    for &frac in FRACTIONS {
        let budget = ((total as f64) * frac).ceil() as u64;
        let (rec, buf) = Recorder::to_memory();
        let mut s = HeraSession::builder(HeraConfig::new(DELTA, xi))
            .recorder(rec.deterministic())
            .restore(&snap)
            .expect("restore base");
        let t0 = Instant::now();
        let report = s.resolve_progressive(ResolveBudget::comparisons(budget));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let f1 = PairMetrics::score(&s.clusters(), &ds.truth).f1();
        let f1_frac = if full_f1 > 0.0 { f1 / full_f1 } else { 1.0 };
        let merges = merge_lines(&buf.contents());
        let prefix_ok =
            merges.len() <= full_merges.len() && merges[..] == full_merges[..merges.len()];
        if !prefix_ok {
            eprintln!("[{n}] PREFIX VIOLATION at fraction {frac}");
        }
        if frac == GATE_FRACTION {
            f1_frac_at_gate = f1_frac;
        }

        row(&[
            budget.to_string(),
            format!("{frac:.2}"),
            report.comparisons_spent.to_string(),
            report.merges.to_string(),
            report.frontier.to_string(),
            format!("{f1:.4}"),
            format!("{f1_frac:.4}"),
            if prefix_ok {
                "ok".into()
            } else {
                "VIOLATED".into()
            },
            format!("{ms:.0}"),
        ]);
        points.push(Json::Obj(vec![
            ("fraction".into(), Json::Float(frac)),
            ("budget".into(), Json::Int(budget as i64)),
            (
                "comparisons_spent".into(),
                Json::Int(report.comparisons_spent as i64),
            ),
            ("merges".into(), Json::Int(report.merges as i64)),
            ("frontier".into(), Json::Int(report.frontier as i64)),
            ("exhausted".into(), Json::Bool(report.exhausted)),
            ("f1".into(), Json::Float(f1)),
            ("f1_frac_of_full".into(), Json::Float(f1_frac)),
            ("prefix_ok".into(), Json::Bool(prefix_ok)),
            ("resolve_ms".into(), Json::Float(ms)),
        ]));
    }
    println!();
    let _ = std::fs::remove_dir_all(&dir);

    let entry = Json::Obj(vec![
        ("records".into(), Json::Int(n as i64)),
        ("seed".into(), Json::Int(seed as i64)),
        ("entities".into(), Json::Int(ds.truth.entity_count() as i64)),
        ("ingest_ms".into(), Json::Float(ingest_ms)),
        (
            "full".into(),
            Json::Obj(vec![
                ("comparisons".into(), Json::Int(total as i64)),
                ("merges".into(), Json::Int(full_report.merges as i64)),
                ("f1".into(), Json::Float(full_f1)),
                ("resolve_ms".into(), Json::Float(full_ms)),
            ]),
        ),
        ("points".into(), Json::Arr(points)),
    ]);
    (entry, f1_frac_at_gate)
}
