//! Scale sweep: generates 10⁴–10⁶-record heterogeneous datasets with the
//! streaming generator, runs the HERA pipeline per size, and records
//! wall-clock, peak RSS and per-stage throughput in
//! `results/BENCH_scale.json`, alongside before/after measurements of the
//! hot-path optimizations (dense candidate accumulator, gram-sketch
//! verification prefilter, bulk index build).
//!
//! Each tier runs in a **child process** (the binary re-execs itself with
//! `--child`), so `VmHWM` in `/proc/self/status` is that tier's own peak
//! RSS rather than the high-water mark of whichever tier ran first. The
//! 10⁶ tier is generation-only: the stream is consumed without ever
//! materializing the dataset, which is what bounds its footprint
//! (resolving 10⁶ records end to end awaits blocking on the streaming
//! path — ROADMAP item 2).
//!
//! * `--smoke` — 10⁴ pipeline tier only, single rep (the CI perf-gate
//!   workload; see `perf_gate`).
//! * `--out PATH` — artifact path (default `results/BENCH_scale.json`).
//!   The committed perf-gate baseline is refreshed with
//!   `exp_scale --smoke --out results/BENCH_scale_baseline.json`.

use hera_bench::{header, row, BenchReport};
use hera_core::{Hera, HeraConfig, Recorder};
use hera_datagen::{scale_preset, ScaleGenerator};
use hera_index::ValuePairIndex;
use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::TypeDispatch;
use hera_types::json::{parse, Json};
use hera_types::Dataset;
use std::process::Command;
use std::time::Instant;

const DELTA: f64 = 0.5;
/// Value-similarity threshold for the scale sweep. The paper's worked
/// example uses ξ = 0.5, but at 10⁵ records the synthetic vocabularies
/// are dense enough that ξ = 0.5 admits a near-quadratic set of one-edit
/// value pairs (the 32k tier alone emits 14M pairs and peaks at 15 GB);
/// the sweep measures the *unblocked* baseline, so it runs at ξ = 0.7,
/// which keeps the candidate funnel selective while still exercising
/// every stage (the blocked pipeline is measured by `exp_blocking`).
const XI: f64 = 0.7;

/// One sweep tier: record count, generator seed, and how far to run.
struct Tier {
    n: usize,
    seed: u64,
    /// `"pipeline"` = generate → join → resolve; `"gen"` = stream the
    /// generator without materializing anything.
    mode: &'static str,
}

/// The full sweep. Seeds 51/52/53 match the `scale_10k`/`scale_100k`/
/// `scale_1m` presets; the 32k tier fills in the curve between them.
const FULL_TIERS: &[Tier] = &[
    Tier {
        n: 10_000,
        seed: 51,
        mode: "pipeline",
    },
    Tier {
        n: 32_000,
        seed: 54,
        mode: "pipeline",
    },
    Tier {
        n: 100_000,
        seed: 52,
        mode: "pipeline",
    },
    Tier {
        n: 1_000_000,
        seed: 53,
        mode: "gen",
    },
];

const SMOKE_TIERS: &[Tier] = &[Tier {
    n: 10_000,
    seed: 51,
    mode: "pipeline",
}];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |i: usize, usage: &str| -> &String {
        args.get(i).unwrap_or_else(|| {
            eprintln!("exp_scale: {usage}");
            std::process::exit(2);
        })
    };
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let usage = "--child requires N SEED MODE";
        let n: usize = value_of(i + 1, usage).parse().expect("--child N");
        let seed: u64 = value_of(i + 2, usage).parse().expect("--child N SEED");
        let mode = value_of(i + 3, usage).as_str();
        let tier = match mode {
            "pipeline" => run_pipeline_tier(n, seed),
            "gen" => run_gen_tier(n, seed),
            other => panic!("unknown child mode {other:?}"),
        };
        // The JSON document is the child's entire stdout contract;
        // progress goes to stderr.
        println!("{}", tier.to_string_compact());
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| value_of(i + 1, "--out requires a PATH").clone())
        .unwrap_or_else(|| "results/BENCH_scale.json".to_string());
    let tiers = if smoke { SMOKE_TIERS } else { FULL_TIERS };
    let reps = if smoke { 1 } else { 3 };

    println!(
        "# Scale sweep (δ = {DELTA}, ξ = {XI}, {} tier{})\n",
        tiers.len(),
        if tiers.len() == 1 { "" } else { "s" }
    );
    header(&[
        "records",
        "mode",
        "gen (ms)",
        "gen rec/s",
        "join (ms)",
        "pairs",
        "resolve (ms)",
        "merges",
        "RSS (MB)",
    ]);

    let exe = std::env::current_exe().expect("current_exe");
    let mut tier_entries: Vec<Json> = Vec::new();
    for t in tiers {
        let output = Command::new(&exe)
            .args(["--child", &t.n.to_string(), &t.seed.to_string(), t.mode])
            .output()
            .expect("spawn child tier");
        assert!(
            output.status.success(),
            "tier {} failed:\n{}",
            t.n,
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8(output.stdout).expect("child stdout is utf-8");
        let line = stdout.lines().last().expect("child printed a JSON line");
        let tier = parse(line).expect("child JSON parses");
        let get_f = |k: &str| tier.get(k).and_then(|v| v.as_f64().ok());
        let fmt = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.0}"));
        row(&[
            t.n.to_string(),
            t.mode.to_string(),
            fmt(get_f("gen_ms")),
            fmt(get_f("gen_records_per_sec")),
            fmt(get_f("join_ms")),
            fmt(get_f("pairs")),
            fmt(get_f("resolve_ms")),
            fmt(get_f("merges")),
            fmt(get_f("peak_rss_mb")),
        ]);
        tier_entries.push(tier);
    }

    // Per-tier pair realization, spelled out so candidate blowup is
    // visible in CI logs without opening the artifact or the journal.
    println!();
    let mut headline_candidates: Option<(u64, f64)> = None;
    for tier in &tier_entries {
        if tier.get("mode").and_then(|m| m.as_str().ok()) != Some("pipeline") {
            continue;
        }
        let n = tier
            .get("records")
            .and_then(|v| v.as_i64().ok())
            .unwrap_or(0);
        let pairs = tier.get("pairs").and_then(|v| v.as_i64().ok()).unwrap_or(0);
        let quad = n as f64 * (n as f64 - 1.0) / 2.0;
        let rr = if quad > 0.0 {
            1.0 - pairs as f64 / quad
        } else {
            0.0
        };
        println!(
            "summary: {n} records -> {pairs} value pairs \
             ({:.1} per record, reduction {rr:.4} vs n(n-1)/2)",
            pairs as f64 / (n as f64).max(1.0)
        );
        // Envelope headline: the smoke tier (smallest pipeline tier,
        // first in the sweep) — the one perf_gate compares.
        if headline_candidates.is_none() {
            headline_candidates = Some((pairs as u64, rr));
        }
    }

    // Before/after measurements for the hot-path optimizations. The full
    // sweep measures on the 32k tier (the bulk index build only has real
    // work once the pair set is in the millions); smoke stays on 10k to
    // keep the CI job short.
    let (opt_n, opt_seed) = if smoke { (10_000, 51) } else { (32_000, 54) };
    println!("\n# Hot-path optimizations (before → after, scale_{opt_n})\n");
    header(&[
        "optimization",
        "stage",
        "before (ms)",
        "after (ms)",
        "speedup",
    ]);
    let opt_entries = measure_optimizations(reps, opt_n, opt_seed);

    let mut report = BenchReport::new("scale_sweep").reps(reps);
    if let Some((pairs, rr)) = headline_candidates {
        report = report.candidates(pairs, rr);
    }
    report
        .note(&format!(
            "delta={DELTA} xi={XI}; each tier runs in its own child process so peak_rss_mb is \
             per-tier VmHWM; the 10^6 tier is generation-only (streamed, never materialized); \
             optimizations are measured before/after on the scale_{opt_n} dataset with outputs \
             asserted identical"
        ))
        .section("tiers", Json::Arr(tier_entries))
        .section("optimizations", Json::Arr(opt_entries))
        .write(&out);
}

/// Generate → join → resolve at one size, reporting wall-clock, the
/// journal's per-stage timings, and this process's peak RSS.
fn run_pipeline_tier(n: usize, seed: u64) -> Json {
    let gen = ScaleGenerator::new(scale_preset(n, seed));
    eprintln!("[{n}] generating…");
    let t0 = Instant::now();
    let ds = gen.generate();
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

    let (recorder, journal) = Recorder::to_memory();
    let hera = Hera::builder(HeraConfig::new(DELTA, XI))
        .recorder(recorder)
        .build();

    eprintln!("[{n}] joining…");
    let t0 = Instant::now();
    let pairs = hera.join(&ds);
    let join_ms = t0.elapsed().as_secs_f64() * 1e3;
    // The realized pair count is the sweep's blowup indicator — log it
    // where CI sees it even if a later stage dies.
    eprintln!("[{n}] join done: {} value pairs", pairs.len());

    eprintln!("[{n}] resolving…");
    let t0 = Instant::now();
    let result = hera.run_with_pairs(&ds, pairs.clone()).unwrap();
    let resolve_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = &result.stats;

    let join_s = (join_ms / 1e3).max(1e-9);
    let resolve_s = (resolve_wall_ms / 1e3).max(1e-9);
    Json::Obj(vec![
        ("name".into(), Json::Str(ds.name.clone())),
        ("mode".into(), Json::Str("pipeline".into())),
        ("records".into(), Json::Int(n as i64)),
        ("entities".into(), Json::Int(ds.truth.entity_count() as i64)),
        ("seed".into(), Json::Int(seed as i64)),
        ("gen_ms".into(), Json::Float(gen_ms)),
        (
            "gen_records_per_sec".into(),
            Json::Float(n as f64 / (gen_ms / 1e3).max(1e-9)),
        ),
        ("join_ms".into(), Json::Float(join_ms)),
        ("pairs".into(), Json::Int(pairs.len() as i64)),
        (
            "join_pairs_per_sec".into(),
            Json::Float(pairs.len() as f64 / join_s),
        ),
        (
            "index_ms".into(),
            Json::Float(stats.index_build_time.as_secs_f64() * 1e3),
        ),
        ("index_entries".into(), Json::Int(stats.index_size as i64)),
        ("resolve_ms".into(), Json::Float(resolve_wall_ms)),
        (
            "resolve_records_per_sec".into(),
            Json::Float(n as f64 / resolve_s),
        ),
        (
            "verify_ms".into(),
            Json::Float(stats.verify_time.as_secs_f64() * 1e3),
        ),
        ("iterations".into(), Json::Int(stats.iterations as i64)),
        ("comparisons".into(), Json::Int(stats.comparisons as i64)),
        ("merges".into(), Json::Int(stats.merges as i64)),
        ("peak_rss_mb".into(), peak_rss_mb()),
        ("stages".into(), stage_timings(&journal.contents())),
    ])
}

/// Stream the generator at one size without materializing a dataset —
/// the footprint stays O(sources · attrs) no matter how large `n` is.
fn run_gen_tier(n: usize, seed: u64) -> Json {
    let gen = ScaleGenerator::new(scale_preset(n, seed));
    eprintln!("[{n}] streaming (generation only)…");
    let t0 = Instant::now();
    let mut records = 0u64;
    let mut checksum = 0u64;
    for spec in gen.stream() {
        records += 1;
        // Fold every value into a checksum so the stream is actually
        // rendered (and so reruns can be compared for determinism).
        for v in &spec.values {
            for b in v.to_text().as_bytes() {
                checksum = checksum.rotate_left(5) ^ u64::from(*b);
            }
        }
    }
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(records as usize, n);
    Json::Obj(vec![
        ("name".into(), Json::Str(format!("scale_{n}"))),
        ("mode".into(), Json::Str("gen".into())),
        ("records".into(), Json::Int(n as i64)),
        ("seed".into(), Json::Int(seed as i64)),
        ("gen_ms".into(), Json::Float(gen_ms)),
        (
            "gen_records_per_sec".into(),
            Json::Float(n as f64 / (gen_ms / 1e3).max(1e-9)),
        ),
        ("stream_checksum".into(), Json::Int(checksum as i64)),
        ("peak_rss_mb".into(), peak_rss_mb()),
    ])
}

/// Sums the journal's diagnostic `timing` lines per stage (ms).
fn stage_timings(journal: &str) -> Json {
    let mut stages: Vec<(String, f64)> = Vec::new();
    for line in journal.lines() {
        let Ok(ev) = parse(line) else { continue };
        if ev.get("ev").and_then(|v| v.as_str().ok()) != Some("timing") {
            continue;
        }
        let (Some(stage), Some(us)) = (
            ev.get("stage").and_then(|v| v.as_str().ok()),
            ev.get("wall_us").and_then(|v| v.as_f64().ok()),
        ) else {
            continue;
        };
        match stages.iter_mut().find(|(s, _)| s == stage) {
            Some((_, total)) => *total += us / 1e3,
            None => stages.push((stage.to_owned(), us / 1e3)),
        }
    }
    Json::Obj(
        stages
            .into_iter()
            .map(|(s, ms)| (format!("{s}_ms"), Json::Float(ms)))
            .collect(),
    )
}

/// `VmHWM` from `/proc/self/status`, in MB (`null` off Linux).
fn peak_rss_mb() -> Json {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return Json::Null;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return Json::Float(kb / 1024.0);
            }
        }
    }
    Json::Null
}

/// Times each optimized path against its kept reference path on one
/// sweep dataset, asserting identical outputs (best-of-`reps`).
fn measure_optimizations(reps: usize, n: usize, seed: u64) -> Vec<Json> {
    let ds = ScaleGenerator::new(scale_preset(n, seed)).generate();
    let metric = TypeDispatch::paper_default();
    let mut out = Vec::new();

    // 1. Dense epoch-array candidate accumulator vs the hash-map
    // reference, on the dataset's distinct-value gram signatures.
    let sigs = distinct_signatures(&ds);
    let (before, after, ref_out, opt_out) = ab(
        reps,
        || hera_join::gram_candidates_ref(&sigs, XI, true),
        || hera_join::gram_candidates(&sigs, XI, true),
    );
    assert_eq!(ref_out, opt_out, "accumulators must agree");
    out.push(opt_entry(
        "dense_candidate_accumulator",
        "join",
        &ds.name,
        before,
        after,
        "hash-map collision accumulator",
        "dense epoch-stamped array with touched-list drain",
    ));

    // 2. Gram-sketch verification prefilter, measured over the whole
    // join (the sketch gates the exact merge-intersection per candidate).
    let (before, after, ref_out, opt_out) = ab(
        reps,
        || {
            SimilarityJoin::new(JoinConfig::new(XI).without_sketch_prefilter(), &metric)
                .join_dataset(&ds)
        },
        || SimilarityJoin::new(JoinConfig::new(XI), &metric).join_dataset(&ds),
    );
    assert_eq!(ref_out, opt_out, "sketch prefilter must not change pairs");
    out.push(opt_entry(
        "gram_sketch_prefilter",
        "join",
        &ds.name,
        before,
        after,
        "exact merge-intersection on every candidate",
        "128-bit occupancy-sketch Jaccard upper bound rejects first",
    ));

    // 3. Bulk (sorted-run) index construction vs per-pair insertion.
    // hera_index::ValuePair is the join's pair type re-exported, so the
    // join output feeds the index directly.
    let pairs = SimilarityJoin::new(JoinConfig::new(XI), &metric).join_dataset(&ds);
    let (before, after, ref_out, opt_out) = ab(
        reps,
        || ValuePairIndex::build_incremental(pairs.iter().copied()),
        || ValuePairIndex::build(pairs.iter().copied()),
    );
    assert_eq!(
        ref_out.to_json().to_string_compact(),
        opt_out.to_json().to_string_compact(),
        "bulk build must match the incremental reference"
    );
    out.push(opt_entry(
        "bulk_index_build",
        "index_build",
        &ds.name,
        before,
        after,
        "per-pair tree insertion with group re-sorting",
        "single sort, then one insertion per sorted record-pair run",
    ));
    out
}

/// Gram signatures of a dataset's distinct values (the join's candidate
///-generation input), reproduced here so the accumulator can be timed in
/// isolation.
fn distinct_signatures(ds: &Dataset) -> Vec<Vec<u64>> {
    let mut texts: Vec<String> = ds
        .iter()
        .flat_map(|r| r.values.iter())
        .filter(|v| !v.is_null())
        .map(|v| v.to_text())
        .collect();
    texts.sort_unstable();
    texts.dedup();
    texts
        .iter()
        .map(|t| hera_sim::text::folded_qgram_set(t, 2))
        .collect()
}

/// Best-of-`reps` wall-clock for the reference and optimized closures;
/// returns both timings and both last outputs so the caller can assert
/// they are identical.
fn ab<T>(
    reps: usize,
    mut reference: impl FnMut() -> T,
    mut optimized: impl FnMut() -> T,
) -> (f64, f64, T, T) {
    let mut before = f64::INFINITY;
    let mut after = f64::INFINITY;
    let mut ref_out = None;
    let mut opt_out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        ref_out = Some(reference());
        before = before.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        opt_out = Some(optimized());
        after = after.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (
        before,
        after,
        ref_out.expect("reps >= 1"),
        opt_out.expect("reps >= 1"),
    )
}

fn opt_entry(
    name: &str,
    stage: &str,
    dataset: &str,
    before_ms: f64,
    after_ms: f64,
    before_desc: &str,
    after_desc: &str,
) -> Json {
    let speedup = before_ms / after_ms.max(1e-9);
    row(&[
        name.to_string(),
        stage.to_string(),
        format!("{before_ms:.1}"),
        format!("{after_ms:.1}"),
        format!("{speedup:.2}"),
    ]);
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("stage".into(), Json::Str(stage.into())),
        ("dataset".into(), Json::Str(dataset.into())),
        ("before".into(), Json::Str(before_desc.into())),
        ("after".into(), Json::Str(after_desc.into())),
        ("before_ms".into(), Json::Float(before_ms)),
        ("after_ms".into(), Json::Float(after_ms)),
        ("speedup".into(), Json::Float(speedup)),
        ("outputs_identical".into(), Json::Bool(true)),
    ])
}
