//! Common envelope for the `results/BENCH_*.json` artifacts.
//!
//! The experiment binaries used to assemble their JSON documents by hand,
//! and the envelopes drifted (`records` at the top level in one file,
//! missing in another; `entities` sometimes present, sometimes not).
//! [`BenchReport`] fixes the shared fields once: every artifact now opens
//! with the same envelope —
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "experiment": "...",
//!   "dataset": { "name": "...", "records": N, "entities": N? },
//!   "reps": N,
//!   "host_cpus": N,
//!   "note": "..."
//! }
//! ```
//!
//! — followed by the experiment's own named sections in insertion order.
//! `perf_gate` and external tooling key off `schema_version` and the
//! envelope fields.

use hera_types::json::Json;

/// Version stamp written into every artifact; bump on envelope changes.
pub const BENCH_SCHEMA_VERSION: i64 = 1;

/// Builder for one `results/BENCH_*.json` document.
pub struct BenchReport {
    experiment: String,
    dataset: Option<(String, usize, Option<usize>)>,
    reps: usize,
    candidates: Option<(u64, f64)>,
    note: String,
    sections: Vec<(String, Json)>,
}

impl BenchReport {
    /// Starts a report for the named experiment.
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_owned(),
            dataset: None,
            reps: 1,
            candidates: None,
            note: String::new(),
            sections: Vec::new(),
        }
    }

    /// Records the dataset the experiment ran on.
    pub fn dataset(mut self, name: &str, records: usize) -> Self {
        self.dataset = Some((name.to_owned(), records, None));
        self
    }

    /// Records the dataset with its ground-truth entity count.
    pub fn dataset_with_entities(mut self, name: &str, records: usize, entities: usize) -> Self {
        self.dataset = Some((name.to_owned(), records, Some(entities)));
        self
    }

    /// Repetitions per measurement (best-of semantics are the caller's).
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Records the candidate-pair funnel of the experiment's headline
    /// configuration: how many record pairs went into verification and
    /// the reduction ratio vs the quadratic pair space
    /// (`1 − candidate_pairs / (n·(n−1)/2)`; negative when label
    /// expansion outgrows the record-pair space). `perf_gate` keys off
    /// these to catch candidate blowups that throughput alone can hide.
    pub fn candidates(mut self, candidate_pairs: u64, reduction_ratio: f64) -> Self {
        self.candidates = Some((candidate_pairs, reduction_ratio));
        self
    }

    /// Free-form methodology note.
    pub fn note(mut self, note: &str) -> Self {
        self.note = note.to_owned();
        self
    }

    /// Appends a named experiment-specific section (kept in insertion
    /// order after the envelope).
    pub fn section(mut self, name: &str, value: Json) -> Self {
        self.sections.push((name.to_owned(), value));
        self
    }

    /// Assembles the full document: envelope first, then the sections.
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = vec![
            ("schema_version".into(), Json::Int(BENCH_SCHEMA_VERSION)),
            ("experiment".into(), Json::Str(self.experiment.clone())),
        ];
        if let Some((name, records, entities)) = &self.dataset {
            let mut ds = vec![
                ("name".into(), Json::Str(name.clone())),
                ("records".into(), Json::Int(*records as i64)),
            ];
            if let Some(e) = entities {
                ds.push(("entities".into(), Json::Int(*e as i64)));
            }
            obj.push(("dataset".into(), Json::Obj(ds)));
        }
        obj.push(("reps".into(), Json::Int(self.reps as i64)));
        obj.push(("host_cpus".into(), Json::Int(host_cpus() as i64)));
        if let Some((pairs, rr)) = self.candidates {
            obj.push(("candidate_pairs".into(), Json::Int(pairs as i64)));
            obj.push(("reduction_ratio".into(), Json::Float(rr)));
        }
        if !self.note.is_empty() {
            obj.push(("note".into(), Json::Str(self.note.clone())));
        }
        obj.extend(self.sections.iter().cloned());
        Json::Obj(obj)
    }

    /// Writes the pretty-printed document, creating the parent directory.
    pub fn write(&self, path: &str) {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
        std::fs::write(path, self.to_json().to_string_pretty())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote {path}");
    }
}

/// The host's available parallelism (recorded in every envelope so a
/// reader can judge the thread-scaling numbers).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_fields_come_first_and_sections_keep_order() {
        let doc = BenchReport::new("demo")
            .dataset_with_entities("d", 10, 7)
            .reps(3)
            .note("n")
            .section("beta", Json::Int(1))
            .section("alpha", Json::Int(2))
            .to_json();
        let Json::Obj(pairs) = &doc else {
            panic!("not an object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "experiment",
                "dataset",
                "reps",
                "host_cpus",
                "note",
                "beta",
                "alpha"
            ]
        );
        assert_eq!(doc.expect("schema_version").unwrap().as_i64().unwrap(), 1);
        let ds = doc.expect("dataset").unwrap();
        assert_eq!(ds.expect("records").unwrap().as_i64().unwrap(), 10);
        assert_eq!(ds.expect("entities").unwrap().as_i64().unwrap(), 7);
    }

    #[test]
    fn optional_fields_are_omitted() {
        let doc = BenchReport::new("demo").to_json();
        assert!(doc.get("dataset").is_none());
        assert!(doc.get("note").is_none());
        assert!(doc.get("candidate_pairs").is_none());
        assert!(doc.get("reduction_ratio").is_none());
        assert_eq!(doc.expect("reps").unwrap().as_i64().unwrap(), 1);
    }

    #[test]
    fn candidates_land_in_the_envelope() {
        let doc = BenchReport::new("demo")
            .candidates(1234, 0.975)
            .section("s", Json::Int(0))
            .to_json();
        let Json::Obj(pairs) = &doc else {
            panic!("not an object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema_version",
                "experiment",
                "reps",
                "host_cpus",
                "candidate_pairs",
                "reduction_ratio",
                "s"
            ]
        );
        assert_eq!(
            doc.expect("candidate_pairs").unwrap().as_i64().unwrap(),
            1234
        );
        let rr = doc.expect("reduction_ratio").unwrap().as_f64().unwrap();
        assert!((rr - 0.975).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_the_parser() {
        let doc = BenchReport::new("demo")
            .dataset("d", 5)
            .section("s", Json::Arr(vec![Json::Float(1.5)]))
            .to_json();
        let back = hera_types::json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(back.to_string_compact(), doc.to_string_compact());
    }
}
