//! A reproducible verify-stage workload for the memoization benches.
//!
//! The similarity memo cache earns its keep on *re-verification*: every
//! compare-and-merge round sweeps the surviving candidate pairs again,
//! and super records only grow, so most value-pair similarities were
//! already computed the round before. This module replays that shape
//! deterministically — sweep all candidate pairs, merge each entity's
//! surviving roots pairwise along the ground truth, repeat — so
//! `exp_verify` and the `verify_throughput` Criterion bench measure the
//! same thing the driver's hot loop does, without the driver's
//! thresholds hiding the stage behind candidate pruning.

use hera_core::{InstanceVerifier, SchemaVoter, SimCache, SuperRecord, VerifyScratch};
use hera_index::{UnionFind, ValuePairIndex};
use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::ValueSimilarity;
use hera_types::{Dataset, RecordId, SourceAttrId};
use rustc_hash::FxHashMap;

/// Mid-resolution state: the value-pair index, the surviving super
/// records, and a voter pre-seeded with the ground-truth attribute
/// classes (so verification exercises the forced-pair path — the one
/// that calls `metric.sim`).
pub struct VerifyWorkload {
    /// The generated dataset (kept for registry and ground truth).
    pub ds: Dataset,
    /// Value-pair index, maintained through the merges.
    pub index: ValuePairIndex,
    /// Surviving super records by root rid.
    pub supers: FxHashMap<u32, SuperRecord>,
    /// Union–find over record ids.
    pub uf: UnionFind,
    /// Voter with every true attribute pair decided.
    pub voter: SchemaVoter,
}

impl VerifyWorkload {
    /// Joins the dataset at `xi`, builds the index and singleton super
    /// records, and decides every ground-truth attribute matching.
    pub fn build(ds: Dataset, xi: f64, metric: &dyn ValueSimilarity) -> Self {
        let pairs = SimilarityJoin::new(JoinConfig::new(xi), metric).join_dataset(&ds);
        let index = ValuePairIndex::build(pairs);
        let supers: FxHashMap<u32, SuperRecord> = ds
            .iter()
            .map(|r| (r.id.raw(), SuperRecord::from_record(&ds, r)))
            .collect();
        let uf = UnionFind::new(ds.len());
        let mut voter = SchemaVoter::new();
        let n_attrs = ds.registry.attr_count();
        for a in 0..n_attrs as u32 {
            for b in 0..n_attrs as u32 {
                let (sa, sb) = (SourceAttrId::new(a), SourceAttrId::new(b));
                if a != b
                    && ds.registry.attr_schema(sa) != ds.registry.attr_schema(sb)
                    && ds.truth.canon_of(sa) == ds.truth.canon_of(sb)
                {
                    for _ in 0..30 {
                        voter.add_vote(&ds.registry, sa, sb);
                    }
                }
            }
        }
        voter.decide(0.8, 0.6, 3);
        Self {
            ds,
            index,
            supers,
            uf,
            voter,
        }
    }

    /// Surviving candidate pairs: index record pairs whose sides are
    /// still distinct roots, in index order.
    pub fn candidates(&mut self) -> Vec<(u32, u32)> {
        let pairs: Vec<(u32, u32)> = self.index.record_pairs().collect();
        pairs
            .into_iter()
            .filter(|&(i, j)| self.uf.find(i) != self.uf.find(j))
            .collect()
    }

    /// One tree-reduction round along the ground truth: pairs up each
    /// entity's surviving roots (ascending rid) and merges them, keeping
    /// the index — and the cache, when given — consistent through the
    /// same label remap. Returns `false` once every entity is a single
    /// root.
    pub fn merge_truth_round(
        &mut self,
        verifier: &InstanceVerifier,
        cache: &mut Option<SimCache>,
        scratch: &mut VerifyScratch,
    ) -> bool {
        let mut by_entity: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for rid in 0..self.ds.len() as u32 {
            if self.uf.find(rid) == rid {
                by_entity
                    .entry(self.ds.truth.entity_of(RecordId::new(rid)).raw())
                    .or_default()
                    .push(rid);
            }
        }
        let mut plan: Vec<(u32, u32)> = Vec::new();
        for roots in by_entity.into_values() {
            for pair in roots.chunks(2) {
                if let [i, j] = *pair {
                    plan.push((i.min(j), i.max(j)));
                }
            }
        }
        plan.sort_unstable();
        let merged_any = !plan.is_empty();
        for (i, j) in plan {
            let v = verifier.verify_with(
                &self.index,
                &self.supers[&i],
                &self.supers[&j],
                &self.ds.registry,
                Some(&self.voter),
                cache.as_ref(),
                scratch,
            );
            if let Some(c) = cache.as_mut() {
                c.apply(&scratch.delta);
            }
            let k = self.uf.union(i, j);
            let loser_rid = if k == i { j } else { i };
            let loser = self.supers.remove(&loser_rid).expect("loser exists");
            let winner = self.supers.get_mut(&k).expect("winner exists");
            let m: Vec<(u32, u32)> = if k == i {
                v.matching.iter().map(|&(l, r, _)| (l, r)).collect()
            } else {
                v.matching.iter().map(|&(l, r, _)| (r, l)).collect()
            };
            let remap = winner.absorb(&loser, &m);
            self.index.merge(i, j, k, |l| remap.apply(l));
            if let Some(c) = cache.as_mut() {
                c.merge(i, j, k, |l| remap.apply(l));
            }
        }
        merged_any
    }
}
