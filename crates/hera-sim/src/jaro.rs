//! Jaro and Jaro–Winkler similarity.

use crate::ValueSimilarity;
use hera_types::Value;

/// Raw Jaro similarity over char sequences.
///
/// Matching window is `max(|a|, |b|) / 2 − 1`; transpositions are counted
/// between matched characters in order. Returns 0 when either string is
/// empty.
pub fn jaro_str(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    let mut b_match_flags = vec![false; b.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                b_match_flags[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = b
        .iter()
        .zip(&b_match_flags)
        .filter(|(_, &f)| f)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(&b_matches)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro similarity over case-folded text.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaro;

impl ValueSimilarity for Jaro {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        jaro_str(&a.to_text().to_lowercase(), &b.to_text().to_lowercase())
    }

    fn name(&self) -> &'static str {
        "jaro"
    }
}

/// Jaro–Winkler: Jaro boosted by a common-prefix bonus
/// `jw = j + ℓ·p·(1 − j)` with prefix length `ℓ ≤ 4` and scale `p`.
#[derive(Debug, Clone, Copy)]
pub struct JaroWinkler {
    /// Prefix scale, conventionally 0.1, must satisfy `p ≤ 0.25` so the
    /// result stays in `[0, 1]`.
    pub prefix_scale: f64,
}

impl JaroWinkler {
    /// Creates a Jaro–Winkler metric.
    ///
    /// # Panics
    /// Panics if `prefix_scale` is outside `[0, 0.25]`.
    pub fn new(prefix_scale: f64) -> Self {
        assert!(
            (0.0..=0.25).contains(&prefix_scale),
            "prefix scale must be in [0, 0.25]"
        );
        Self { prefix_scale }
    }

    /// Similarity of two case-folded strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let j = jaro_str(a, b);
        let prefix = a
            .chars()
            .zip(b.chars())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count();
        j + prefix as f64 * self.prefix_scale * (1.0 - j)
    }
}

impl Default for JaroWinkler {
    fn default() -> Self {
        Self { prefix_scale: 0.1 }
    }
}

impl ValueSimilarity for JaroWinkler {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text().to_lowercase(), &b.to_text().to_lowercase())
    }

    fn name(&self) -> &'static str {
        "jaro-winkler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    #[test]
    fn classic_examples() {
        // Standard worked examples from the record-linkage literature.
        assert!((jaro_str("martha", "marhta") - 0.944_444).abs() < 1e-4);
        assert!((jaro_str("dixon", "dicksonx") - 0.766_667).abs() < 1e-4);
        assert!((jaro_str("jellyfish", "smellyfish") - 0.896_296).abs() < 1e-4);
    }

    #[test]
    fn jaro_winkler_boosts_shared_prefix() {
        let jw = JaroWinkler::default();
        let j = jaro_str("martha", "marhta");
        let w = jw.sim_str("martha", "marhta");
        assert!(w > j);
        assert!((w - 0.961_111).abs() < 1e-4);
    }

    #[test]
    fn disjoint_strings() {
        assert_eq!(jaro_str("abc", "xyz"), 0.0);
        assert_eq!(jaro_str("", "abc"), 0.0);
    }

    #[test]
    #[should_panic(expected = "prefix scale")]
    fn bad_prefix_scale_panics() {
        JaroWinkler::new(0.5);
    }

    proptest! {
        #[test]
        fn jaro_invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&Jaro, &a, &b);
        }

        #[test]
        fn jw_invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&JaroWinkler::default(), &a, &b);
        }

        #[test]
        fn jw_dominates_jaro(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
            let jw = JaroWinkler::default();
            prop_assert!(jw.sim_str(&a, &b) + 1e-12 >= jaro_str(&a, &b));
        }
    }
}
