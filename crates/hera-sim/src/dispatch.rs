//! Kind-aware metric composition — the concrete `simv` HERA runs with.

use crate::{NumericProximity, QGramJaccard, ValueSimilarity};
use hera_types::{Value, ValueKind};
use std::sync::Arc;

/// Dispatches to a per-kind metric:
///
/// * string × string → the configured string metric (default:
///   [`QGramJaccard`] with q = 2, the paper's choice);
/// * number × number → the configured numeric metric (default:
///   [`NumericProximity`] with scale 1);
/// * string × number → the string metric over text renderings (a year
///   stored as `"1984"` in one source and `1984` in another should still
///   match);
/// * anything × null → 0.
///
/// This is the "black box" handed to the index builder, the verifier, and
/// the baselines, so every system in the evaluation scores values
/// identically.
#[derive(Clone)]
pub struct TypeDispatch {
    string_metric: Arc<dyn ValueSimilarity>,
    numeric_metric: Arc<dyn ValueSimilarity>,
}

impl std::fmt::Debug for TypeDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypeDispatch")
            .field("string", &self.string_metric.name())
            .field("numeric", &self.numeric_metric.name())
            .finish()
    }
}

impl TypeDispatch {
    /// Composes explicit per-kind metrics.
    pub fn new(
        string_metric: Arc<dyn ValueSimilarity>,
        numeric_metric: Arc<dyn ValueSimilarity>,
    ) -> Self {
        Self {
            string_metric,
            numeric_metric,
        }
    }

    /// The paper's configuration: 2-gram Jaccard for strings, exact-ish
    /// numeric proximity for numbers.
    pub fn paper_default() -> Self {
        Self::new(
            Arc::new(QGramJaccard::default()),
            Arc::new(NumericProximity::default()),
        )
    }

    /// Replaces the string metric.
    pub fn with_string_metric(mut self, m: Arc<dyn ValueSimilarity>) -> Self {
        self.string_metric = m;
        self
    }

    /// Replaces the numeric metric.
    pub fn with_numeric_metric(mut self, m: Arc<dyn ValueSimilarity>) -> Self {
        self.numeric_metric = m;
        self
    }
}

impl Default for TypeDispatch {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl ValueSimilarity for TypeDispatch {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        let (ka, kb) = (a.kind(), b.kind());
        if ka == ValueKind::Null || kb == ValueKind::Null {
            return 0.0;
        }
        let a_num = matches!(ka, ValueKind::Int | ValueKind::Float);
        let b_num = matches!(kb, ValueKind::Int | ValueKind::Float);
        if a_num && b_num {
            self.numeric_metric.sim(a, b)
        } else {
            self.string_metric.sim(a, b)
        }
    }

    fn name(&self) -> &'static str {
        "type-dispatch"
    }

    /// Gram-compatible iff the string leg is; numeric pairs still go
    /// through [`ValueSimilarity::sim`] (the join checks kinds).
    fn qgram_compatible(&self) -> Option<usize> {
        self.string_metric.qgram_compatible()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    #[test]
    fn routes_by_kind() {
        let m = TypeDispatch::paper_default();
        // numbers → numeric proximity (exact only at scale 1)
        assert_eq!(m.sim(&Value::from(1984i64), &Value::from(1984i64)), 1.0);
        assert_eq!(m.sim(&Value::from(1984i64), &Value::from(1990i64)), 0.0);
        // strings → q-gram jaccard
        assert!(
            (m.sim(&Value::from("Electronic"), &Value::from("electronics")) - 0.9).abs() < 1e-9
        );
        // mixed → string metric over text renderings
        assert_eq!(m.sim(&Value::from("1984"), &Value::from(1984i64)), 1.0);
        // nulls → 0
        assert_eq!(m.sim(&Value::Null, &Value::from("x")), 0.0);
    }

    #[test]
    fn metric_swapping() {
        let m = TypeDispatch::paper_default()
            .with_numeric_metric(Arc::new(NumericProximity::new(10.0)));
        assert!((m.sim(&Value::from(1984i64), &Value::from(1985i64)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn debug_names_components() {
        let dbg = format!("{:?}", TypeDispatch::paper_default());
        assert!(dbg.contains("qgram-jaccard"));
        assert!(dbg.contains("numeric"));
    }

    proptest! {
        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&TypeDispatch::paper_default(), &a, &b);
        }
    }
}
