//! Set-overlap coefficient family over q-gram sets: Dice, overlap, and
//! token-level Jaccard — standard alternatives to the paper's default
//! gram Jaccard, useful when tuning ξ against different value styles.

use crate::text::{folded_qgram_set, intersection_size, word_tokens};
use crate::ValueSimilarity;
use hera_types::Value;

/// Sørensen–Dice over q-gram sets: `2|A∩B| / (|A|+|B|)`. Always ≥
/// Jaccard on the same sets; gentler on length differences.
#[derive(Debug, Clone, Copy)]
pub struct DiceQGram {
    /// Gram length.
    pub q: usize,
}

impl DiceQGram {
    /// Creates a Dice metric.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        Self { q }
    }

    /// Similarity of two raw strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let sa = folded_qgram_set(a, self.q);
        let sb = folded_qgram_set(b, self.q);
        if sa.is_empty() && sb.is_empty() {
            return 0.0;
        }
        let inter = intersection_size(&sa, &sb);
        2.0 * inter as f64 / (sa.len() + sb.len()) as f64
    }
}

impl Default for DiceQGram {
    fn default() -> Self {
        Self { q: 2 }
    }
}

impl ValueSimilarity for DiceQGram {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "dice-qgram"
    }
}

/// Overlap coefficient over q-gram sets: `|A∩B| / min(|A|,|B|)`. Scores
/// 1 whenever one value's grams are a subset of the other's — the right
/// tool for abbreviation-heavy data (`"J. Smith"` inside
/// `"John Smith"`-ish), and far too generous as a general default.
#[derive(Debug, Clone, Copy)]
pub struct OverlapQGram {
    /// Gram length.
    pub q: usize,
}

impl OverlapQGram {
    /// Creates an overlap metric.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        Self { q }
    }

    /// Similarity of two raw strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let sa = folded_qgram_set(a, self.q);
        let sb = folded_qgram_set(b, self.q);
        let min = sa.len().min(sb.len());
        if min == 0 {
            return 0.0;
        }
        intersection_size(&sa, &sb) as f64 / min as f64
    }
}

impl Default for OverlapQGram {
    fn default() -> Self {
        Self { q: 2 }
    }
}

impl ValueSimilarity for OverlapQGram {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "overlap-qgram"
    }
}

/// Jaccard over whole word tokens (not grams): the classic set-semantics
/// metric for list-valued attributes (`"Drama, Crime"` vs
/// `"Crime, Drama"` → 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenJaccard;

impl TokenJaccard {
    /// Similarity of two raw strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let norm = |s: &str| -> Vec<String> {
            let mut t: Vec<String> = word_tokens(s)
                .into_iter()
                .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()).to_owned())
                .filter(|w| !w.is_empty())
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let (ta, tb) = (norm(a), norm(b));
        if ta.is_empty() && tb.is_empty() {
            return 0.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < ta.len() && j < tb.len() {
            match ta[i].cmp(&tb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter as f64 / (ta.len() + tb.len() - inter) as f64
    }
}

impl ValueSimilarity for TokenJaccard {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "token-jaccard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::QGramJaccard;
    use proptest::prelude::*;

    #[test]
    fn dice_known_value() {
        // "night" vs "nacht": folded grams {ni,ig,gh,ht} vs {na,ac,ch,ht}
        // → inter 1, dice = 2·1/8 = 0.25.
        let d = DiceQGram::default();
        assert!((d.sim_str("night", "nacht") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overlap_rewards_containment() {
        let o = OverlapQGram::default();
        // Every gram of "norman" appears in "west norman".
        assert_eq!(o.sim_str("norman", "west norman"), 1.0);
        let j = QGramJaccard::default();
        assert!(j.sim_str("norman", "west norman") < 1.0);
    }

    #[test]
    fn token_jaccard_is_order_and_punctuation_blind() {
        let t = TokenJaccard;
        assert_eq!(t.sim_str("Drama, Crime", "Crime, Drama"), 1.0);
        assert!((t.sim_str("Drama, Crime", "Drama") - 0.5).abs() < 1e-12);
        assert_eq!(t.sim_str("a b", "c d"), 0.0);
    }

    proptest! {
        #[test]
        fn dice_dominates_jaccard(a in "[a-z ]{0,16}", b in "[a-z ]{0,16}") {
            let d = DiceQGram::default().sim_str(&a, &b);
            let j = QGramJaccard::default().sim_str(&a, &b);
            prop_assert!(d + 1e-12 >= j);
        }

        #[test]
        fn overlap_dominates_dice(a in "[a-z ]{0,16}", b in "[a-z ]{0,16}") {
            let o = OverlapQGram::default().sim_str(&a, &b);
            let d = DiceQGram::default().sim_str(&a, &b);
            prop_assert!(o + 1e-12 >= d);
        }

        #[test]
        fn dice_invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&DiceQGram::default(), &a, &b);
        }

        #[test]
        fn overlap_invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&OverlapQGram::default(), &a, &b);
        }
    }

    #[test]
    fn token_jaccard_null_and_empty() {
        let t = TokenJaccard;
        assert_eq!(t.sim(&Value::Null, &Value::from("x")), 0.0);
        assert_eq!(t.sim_str("", ""), 0.0);
        assert_eq!(t.sim(&Value::from("abc"), &Value::from("abc")), 1.0);
    }
}
