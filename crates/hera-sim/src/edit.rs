//! Edit-distance similarity (one of the paper's named alternatives).

use crate::ValueSimilarity;
use hera_types::Value;

/// Levenshtein distance between two char sequences, computed with the
/// classic two-row dynamic program (`O(|a|·|b|)` time, `O(min)` space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string as the row to minimize memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized edit similarity: `1 − lev(a, b) / max(|a|, |b|)` over
/// case-folded text. Two empty strings score 0 (informationless).
#[derive(Debug, Clone, Copy, Default)]
pub struct EditSimilarity;

impl EditSimilarity {
    /// Similarity of two raw strings (after case folding).
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return 0.0;
        }
        1.0 - levenshtein(&a, &b) as f64 / max_len as f64
    }
}

impl ValueSimilarity for EditSimilarity {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "edit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn similarity_values() {
        let m = EditSimilarity;
        assert!((m.sim_str("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(m.sim_str("ABC", "abc"), 1.0); // case-folded
        assert_eq!(m.sim_str("", ""), 0.0);
    }

    proptest! {
        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn distance_symmetry(a in "[ -~]{0,12}", b in "[ -~]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn distance_bounds(a in "[ -~]{0,12}", b in "[ -~]{0,12}") {
            let d = levenshtein(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d >= la.abs_diff(lb));
            prop_assert!(d <= la.max(lb));
        }

        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&EditSimilarity, &a, &b);
        }
    }
}
