//! Numeric proximity — the "numeric data" black box of §II-A.

use crate::ValueSimilarity;
use hera_types::Value;

/// Scale-based numeric proximity: `max(0, 1 − |a − b| / scale)`.
///
/// `scale` is the difference at which two numbers are considered completely
/// dissimilar; e.g. `scale = 5.0` for movie years makes a ±1-year
/// transcription slip score 0.8. Non-numeric values fall back to exact text
/// comparison (so a numeric column polluted by strings does not panic).
#[derive(Debug, Clone, Copy)]
pub struct NumericProximity {
    /// Difference at which similarity reaches zero. Must be positive.
    pub scale: f64,
}

impl NumericProximity {
    /// Creates a metric with the given zero-similarity scale.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive and finite"
        );
        Self { scale }
    }

    /// Similarity of two raw numbers.
    pub fn sim_num(&self, a: f64, b: f64) -> f64 {
        let d = (a - b).abs();
        if !d.is_finite() {
            return 0.0;
        }
        (1.0 - d / self.scale).max(0.0)
    }
}

impl Default for NumericProximity {
    /// Scale of 1: only exact numeric equality scores 1, anything at
    /// distance ≥ 1 scores 0.
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

impl ValueSimilarity for NumericProximity {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => self.sim_num(x, y),
            _ => {
                if a.is_null() || b.is_null() {
                    0.0
                } else if a.same(b) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "numeric"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    #[test]
    fn linear_falloff() {
        let m = NumericProximity::new(5.0);
        assert_eq!(m.sim_num(1984.0, 1984.0), 1.0);
        assert!((m.sim_num(1984.0, 1985.0) - 0.8).abs() < 1e-12);
        assert_eq!(m.sim_num(1984.0, 1990.0), 0.0);
    }

    #[test]
    fn mixed_kinds_fall_back_to_exact() {
        let m = NumericProximity::default();
        assert_eq!(m.sim(&Value::from("x"), &Value::from(3i64)), 0.0);
        assert_eq!(m.sim(&Value::from("x"), &Value::from("x")), 1.0);
        assert_eq!(m.sim(&Value::Null, &Value::from(3i64)), 0.0);
    }

    #[test]
    fn int_float_interop() {
        let m = NumericProximity::new(2.0);
        assert_eq!(m.sim(&Value::from(3i64), &Value::from(3.0)), 1.0);
        assert!((m.sim(&Value::from(3i64), &Value::from(4.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        NumericProximity::new(0.0);
    }

    proptest! {
        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value(),
            scale in 0.1..100.0f64
        ) {
            test_support::check_invariants(&NumericProximity::new(scale), &a, &b);
        }
    }
}
