//! Q-gram Jaccard — the paper's default string metric.

use crate::text::{folded_qgram_set, jaccard_of_sets};
use crate::ValueSimilarity;
use hera_types::Value;

/// Jaccard similarity over q-gram sets of the text rendering of a value
/// (`|𝔙₁ ∩ 𝔙₂| / |𝔙₁ ∪ 𝔙₂|`, §II-A).
///
/// The paper sets `q = 2` ("we set 2 q-grams"), which is this type's
/// [`Default`]. Text is case-folded before gramming by default — required
/// to reproduce Example 4's `simv(Electronic, electronics) = 0.9` — but
/// folding can be disabled, which reproduces Example 3's case-sensitive
/// `0.37` instead (the paper's two worked examples use inconsistent
/// conventions). Non-string values are compared through their text
/// rendering; nulls score 0.
#[derive(Debug, Clone, Copy)]
pub struct QGramJaccard {
    /// Gram length.
    pub q: usize,
    /// Case-fold text before gramming (default true).
    pub fold: bool,
}

impl QGramJaccard {
    /// Creates a case-folding metric with the given gram length.
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        Self { q, fold: true }
    }

    /// Disables case folding (Example 3's convention).
    pub fn case_sensitive(mut self) -> Self {
        self.fold = false;
        self
    }

    /// Similarity of two raw strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        if self.fold {
            jaccard_of_sets(&folded_qgram_set(a, self.q), &folded_qgram_set(b, self.q))
        } else {
            jaccard_of_sets(
                &crate::text::qgram_set(a, self.q),
                &crate::text::qgram_set(b, self.q),
            )
        }
    }
}

impl Default for QGramJaccard {
    /// The paper's configuration: 2-grams, case-folded.
    fn default() -> Self {
        Self { q: 2, fold: true }
    }
}

impl ValueSimilarity for QGramJaccard {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "qgram-jaccard"
    }

    fn qgram_compatible(&self) -> Option<usize> {
        self.fold.then_some(self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn paper_values() {
        let m = QGramJaccard::default();
        assert_eq!(m.sim_str("Electronic", "Electronic"), 1.0);
        assert!((m.sim_str("Electronic", "electronics") - 0.9).abs() < 1e-9);
        // Example 3's 0.37 uses case-sensitive grams.
        let cs = QGramJaccard::new(2).case_sensitive();
        assert!((cs.sim_str("2 Norman Street", "2 West Norman") - 7.0 / 19.0).abs() < 1e-9);
        assert!((cs.sim_str("Electronic", "electronics") - 8.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn identical_phone_numbers() {
        let m = QGramJaccard::default();
        assert_eq!(m.sim(&Value::from("831-432"), &Value::from("831-432")), 1.0);
    }

    #[test]
    fn numbers_compare_via_text() {
        let m = QGramJaccard::default();
        assert_eq!(m.sim(&Value::from(1984i64), &Value::from(1984i64)), 1.0);
        let s = m.sim(&Value::from(1984i64), &Value::from(1985i64));
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn nulls_score_zero() {
        let m = QGramJaccard::default();
        assert_eq!(m.sim(&Value::Null, &Value::from("x")), 0.0);
        assert_eq!(m.sim(&Value::Null, &Value::Null), 0.0);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        QGramJaccard::new(0);
    }

    proptest::proptest! {
        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value(),
            q in 1usize..4
        ) {
            test_support::check_invariants(&QGramJaccard::new(q), &a, &b);
        }
    }
}
