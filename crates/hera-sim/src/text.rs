//! Text normalization, q-gram extraction, and tokenization.
//!
//! The paper's worked examples (Example 3/4) imply the following q-gram
//! convention, which we reproduce exactly:
//!
//! * grams are taken over the raw character sequence **including spaces**
//!   (no `#`-padding): `"2 Norman Street"` has the 2-gram `"2 "`;
//! * text is **case-folded** before gramming: `jaccard2("Electronic",
//!   "electronics") = 9/10 = 0.9`, matching Example 4's `0.9`;
//! * gram multiplicity is ignored (set semantics), matching
//!   `jaccard2("2 Norman Street", "2 West Norman") = 7/19 ≈ 0.37` from
//!   Example 3.
//!
//! Grams are hashed to `u64` tokens (FxHash) so that gram sets are cheap to
//! store, sort, and intersect, and so the similarity-join inverted index can
//! key on them directly. Collisions are possible in principle but the token
//! space is 2⁶⁴ against at most a few hundred thousand distinct grams per
//! dataset, so the probability is negligible; the differential tests in
//! `jaccard.rs` compare against a string-set oracle to catch any regression.

use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};

/// Case-folds text for gram extraction (Unicode-aware lowercase).
pub fn fold(s: &str) -> String {
    s.to_lowercase()
}

/// Hashes one gram (a char window) into a token.
#[inline]
fn hash_gram(chars: &[char]) -> u64 {
    let mut h = FxHasher::default();
    for &c in chars {
        c.hash(&mut h);
    }
    h.finish()
}

/// Extracts the **set** of q-gram tokens of `s` (already-folded text),
/// sorted ascending and deduplicated.
///
/// Strings shorter than `q` contribute a single gram covering the whole
/// string (so `"a"` still has a signature and `sim("a","a") == 1`); the
/// empty string has the empty set.
pub fn qgram_set(s: &str, q: usize) -> Vec<u64> {
    assert!(q >= 1, "q must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    let mut grams: Vec<u64> = if chars.len() < q {
        vec![hash_gram(&chars)]
    } else {
        chars.windows(q).map(hash_gram).collect()
    };
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Convenience: fold then extract the q-gram set.
pub fn folded_qgram_set(s: &str, q: usize) -> Vec<u64> {
    qgram_set(&fold(s), q)
}

/// Size of the intersection of two sorted, deduplicated token slices.
pub fn intersection_size(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity of two sorted, deduplicated token sets.
/// Two empty sets score 0 (an empty string is treated as informationless,
/// consistent with the null semantics of the data model).
pub fn jaccard_of_sets(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Splits folded text into whitespace-delimited word tokens.
pub fn word_tokens(s: &str) -> Vec<String> {
    fold(s).split_whitespace().map(|t| t.to_owned()).collect()
}

/// A 128-bit occupancy sketch of a gram-token set: bit `t mod 128` is set
/// for every token `t`. Two sketches give a **sound upper bound** on the
/// Jaccard similarity of the underlying sets in a handful of word ops, so
/// the join's verifier can reject most below-threshold candidates without
/// running the full merge-intersection.
///
/// Soundness: every set bit of `a & !b` is occupied by at least one gram
/// of `A`, and none of those grams can be in `B` (their bit would be set
/// in `b`). Distinct bits are occupied by distinct grams, so at least
/// `popcount(a & !b)` grams of `A` lie outside `B`, giving
/// `|A ∩ B| ≤ |A| − popcount(a & !b)` (and symmetrically for `B`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GramSketch {
    lo: u64,
    hi: u64,
}

impl GramSketch {
    /// Sketches a token set (sorted or not; only membership matters).
    pub fn of(sig: &[u64]) -> Self {
        let (mut lo, mut hi) = (0u64, 0u64);
        for &t in sig {
            let b = (t & 127) as u32;
            if b < 64 {
                lo |= 1u64 << b;
            } else {
                hi |= 1u64 << (b - 64);
            }
        }
        Self { lo, hi }
    }

    /// Upper bound on `|A ∩ B|` given the two set cardinalities.
    pub fn intersection_upper_bound(self, a_len: usize, other: Self, b_len: usize) -> usize {
        let miss_a =
            ((self.lo & !other.lo).count_ones() + (self.hi & !other.hi).count_ones()) as usize;
        let miss_b =
            ((other.lo & !self.lo).count_ones() + (other.hi & !self.hi).count_ones()) as usize;
        a_len
            .saturating_sub(miss_a)
            .min(b_len.saturating_sub(miss_b))
    }

    /// Upper bound on the Jaccard similarity of the underlying sets:
    /// `jaccard_of_sets(A, B) ≤ a.jaccard_upper_bound(|A|, b, |B|)`
    /// always holds, so `bound < ξ` soundly rejects a candidate.
    pub fn jaccard_upper_bound(self, a_len: usize, other: Self, b_len: usize) -> f64 {
        let inter = self.intersection_upper_bound(a_len, other, b_len);
        let union = a_len + b_len - inter;
        if union == 0 {
            return 0.0;
        }
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Oracle: q-gram set as actual strings.
    fn qgram_strings(s: &str, q: usize) -> BTreeSet<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return BTreeSet::new();
        }
        if chars.len() < q {
            return BTreeSet::from([chars.iter().collect()]);
        }
        chars.windows(q).map(|w| w.iter().collect()).collect()
    }

    #[test]
    fn paper_example3_address_jaccard() {
        // The paper reports 0.37 = 7/19 for "2 Norman Street" vs
        // "2 West Norman", which corresponds to case-SENSITIVE grams
        // ("St" vs "st" do not match). Case-folded grams give 8/18 ≈ 0.444.
        // (Example 4's 0.9 requires folding, so the paper's two examples
        // use inconsistent conventions; we support both.)
        let a = qgram_set("2 Norman Street", 2);
        let b = qgram_set("2 West Norman", 2);
        assert!((jaccard_of_sets(&a, &b) - 7.0 / 19.0).abs() < 1e-9);

        let fa = folded_qgram_set("2 Norman Street", 2);
        let fb = folded_qgram_set("2 West Norman", 2);
        assert!((jaccard_of_sets(&fa, &fb) - 8.0 / 18.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example4_contype_jaccard() {
        // folded "electronic" vs "electronics" → 9/10 = 0.9
        let a = folded_qgram_set("Electronic", 2);
        let b = folded_qgram_set("electronics", 2);
        let sim = jaccard_of_sets(&a, &b);
        assert!((sim - 0.9).abs() < 1e-9, "got {sim}");
    }

    #[test]
    fn short_strings_have_whole_string_gram() {
        assert_eq!(qgram_set("a", 2).len(), 1);
        assert_eq!(jaccard_of_sets(&qgram_set("a", 2), &qgram_set("a", 2)), 1.0);
        assert_eq!(jaccard_of_sets(&qgram_set("a", 2), &qgram_set("b", 2)), 0.0);
    }

    #[test]
    fn empty_string_has_empty_set() {
        assert!(qgram_set("", 2).is_empty());
        assert_eq!(jaccard_of_sets(&[], &[]), 0.0);
    }

    #[test]
    fn grams_are_set_semantics() {
        // "aaaa" has only one distinct 2-gram "aa".
        assert_eq!(qgram_set("aaaa", 2).len(), 1);
    }

    #[test]
    fn intersection_size_basic() {
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
    }

    #[test]
    fn word_tokens_fold_and_split() {
        assert_eq!(word_tokens("Product  Manager"), vec!["product", "manager"]);
        assert!(word_tokens("   ").is_empty());
    }

    #[test]
    fn sketch_bound_is_exact_on_identical_sets() {
        let a = folded_qgram_set("electronic", 2);
        let s = GramSketch::of(&a);
        assert_eq!(s.intersection_upper_bound(a.len(), s, a.len()), a.len());
        assert_eq!(s.jaccard_upper_bound(a.len(), s, a.len()), 1.0);
    }

    #[test]
    fn sketch_bound_rejects_disjoint_small_sets() {
        // Disjoint sets landing on disjoint bits: bound is 0.
        let a = [1u64, 2, 3];
        let b = [10u64, 11, 12];
        let (sa, sb) = (GramSketch::of(&a), GramSketch::of(&b));
        assert_eq!(sa.intersection_upper_bound(a.len(), sb, b.len()), 0);
        assert_eq!(sa.jaccard_upper_bound(a.len(), sb, b.len()), 0.0);
    }

    #[test]
    fn empty_sketch_bounds_zero() {
        let s = GramSketch::of(&[]);
        assert_eq!(s.jaccard_upper_bound(0, s, 0), 0.0);
        let t = GramSketch::of(&[5]);
        assert_eq!(s.jaccard_upper_bound(0, t, 1), 0.0);
    }

    proptest::proptest! {
        /// The sketch bound must dominate the exact Jaccard on arbitrary
        /// string pairs (soundness: a `bound < ξ` reject is never wrong).
        #[test]
        fn sketch_bound_dominates_exact_jaccard(
            a in "[ -~]{0,30}",
            b in "[ -~]{0,30}",
            q in 1usize..4
        ) {
            let ha = qgram_set(&fold(&a), q);
            let hb = qgram_set(&fold(&b), q);
            let exact = jaccard_of_sets(&ha, &hb);
            let bound = GramSketch::of(&ha)
                .jaccard_upper_bound(ha.len(), GramSketch::of(&hb), hb.len());
            prop_assert!(bound >= exact - 1e-12, "bound {bound} < exact {exact}");
            let inter = intersection_size(&ha, &hb);
            let iub = GramSketch::of(&ha)
                .intersection_upper_bound(ha.len(), GramSketch::of(&hb), hb.len());
            prop_assert!(iub >= inter);
        }

        /// Hashed gram sets must have the same cardinality as string gram
        /// sets (i.e. no observed collisions), and jaccard must match the
        /// string-set oracle.
        #[test]
        fn hashed_matches_string_oracle(
            a in "[ -~]{0,20}",
            b in "[ -~]{0,20}",
            q in 1usize..4
        ) {
            let (fa, fb) = (fold(&a), fold(&b));
            let ha = qgram_set(&fa, q);
            let hb = qgram_set(&fb, q);
            let sa = qgram_strings(&fa, q);
            let sb = qgram_strings(&fb, q);
            prop_assert_eq!(ha.len(), sa.len());
            prop_assert_eq!(hb.len(), sb.len());
            let inter_oracle = sa.intersection(&sb).count();
            prop_assert_eq!(intersection_size(&ha, &hb), inter_oracle);
        }

        #[test]
        fn jaccard_bounds_and_symmetry(a in "[ -~]{0,20}", b in "[ -~]{0,20}") {
            let ha = folded_qgram_set(&a, 2);
            let hb = folded_qgram_set(&b, 2);
            let s = jaccard_of_sets(&ha, &hb);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(s, jaccard_of_sets(&hb, &ha));
        }
    }

    use proptest::prelude::*;
}
