//! Cosine similarity over word-token term frequencies (the paper's
//! "cosine" alternative).

use crate::text::word_tokens;
use crate::ValueSimilarity;
use hera_types::Value;
use rustc_hash::FxHashMap;

/// Cosine similarity between TF vectors of case-folded word tokens.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineTf;

impl CosineTf {
    /// Similarity of two raw strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let tf = |s: &str| -> FxHashMap<String, f64> {
            let mut m = FxHashMap::default();
            for t in word_tokens(s) {
                *m.entry(t).or_insert(0.0) += 1.0;
            }
            m
        };
        let (va, vb) = (tf(a), tf(b));
        if va.is_empty() || vb.is_empty() {
            return 0.0;
        }
        let dot: f64 = va
            .iter()
            .filter_map(|(t, x)| vb.get(t).map(|y| x * y))
            .sum();
        let na: f64 = va.values().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|x| x * x).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

impl ValueSimilarity for CosineTf {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "cosine-tf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    #[test]
    fn identical_token_multisets() {
        let m = CosineTf;
        assert!((m.sim_str("product manager", "manager product") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_overlap() {
        let m = CosineTf;
        // {a,b} vs {a,c}: dot=1, norms √2·√2 → 0.5
        assert!((m.sim_str("a b", "a c") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_and_empty() {
        let m = CosineTf;
        assert_eq!(m.sim_str("x y", "z w"), 0.0);
        assert_eq!(m.sim_str("", "z"), 0.0);
        assert_eq!(m.sim_str("", ""), 0.0);
    }

    #[test]
    fn case_insensitive() {
        let m = CosineTf;
        assert!((m.sim_str("Product Manager", "product manager") - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&CosineTf, &a, &b);
        }
    }
}
