//! Pluggable value-similarity metrics (`simv` in the paper).
//!
//! HERA "could handle records with various data types … and view the
//! similarity metric of corresponding data type as a black-box" (§I). This
//! crate is that black box: a [`ValueSimilarity`] trait with the paper's
//! default instantiation — **Jaccard over 2-grams** ([`QGramJaccard`]) — and
//! the alternatives the paper names (edit distance, Soft TF-IDF) plus a few
//! standard extras (Jaro/Jaro-Winkler, token cosine, numeric proximity).
//!
//! [`TypeDispatch`] composes per-kind metrics into one `simv` covering the
//! whole [`Value`] domain; it is what `hera-core` uses by default.
//!
//! All metrics guarantee:
//! * range: `sim(a, b) ∈ [0, 1]`,
//! * symmetry: `sim(a, b) == sim(b, a)`,
//! * identity on informative values: `sim(a, a) == 1` whenever `a` is
//!   neither null nor empty text,
//! * nulls (and empty strings) carry no evidence: they score `0` against
//!   everything, themselves included.
//!
//! These invariants are enforced by property tests in every module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cosine;
mod dispatch;
mod edit;
mod jaccard;
mod jaro;
mod monge_elkan;
mod numeric;
mod setsim;
mod softtfidf;
pub mod text;

pub use cosine::CosineTf;
pub use dispatch::TypeDispatch;
pub use edit::{levenshtein, EditSimilarity};
pub use jaccard::QGramJaccard;
pub use jaro::{Jaro, JaroWinkler};
pub use monge_elkan::MongeElkan;
pub use numeric::NumericProximity;
pub use setsim::{DiceQGram, OverlapQGram, TokenJaccard};
pub use softtfidf::SoftTfIdf;

use hera_types::Value;

/// A black-box value similarity function (`simv` of Definition 3).
pub trait ValueSimilarity: Send + Sync {
    /// Similarity of two values in `[0, 1]`.
    fn sim(&self, a: &Value, b: &Value) -> f64;

    /// Short metric name for reports.
    fn name(&self) -> &'static str;

    /// Declares that this metric's *string* comparison is exactly Jaccard
    /// over case-folded q-grams of the text rendering, returning the gram
    /// length. Consumers (the similarity join) may then score string
    /// pairs from precomputed gram signatures instead of calling
    /// [`ValueSimilarity::sim`], skipping re-tokenization in the hottest
    /// loop of index construction. Metrics that are not gram-Jaccard must
    /// return `None` (the default).
    fn qgram_compatible(&self) -> Option<usize> {
        None
    }
}

/// Exact equality metric: 1 if [`Value::same`] holds, else 0. Useful as a
/// strict baseline and for key-like attributes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMatch;

impl ValueSimilarity for ExactMatch {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.same(b) {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use hera_types::Value;
    use proptest::prelude::*;

    /// Strategy producing arbitrary values of every kind.
    pub fn any_value() -> BoxedStrategy<Value> {
        prop_oneof![
            "[ -~]{0,24}".prop_map(Value::from),
            any::<i64>().prop_map(Value::from),
            (-1.0e6..1.0e6f64).prop_map(Value::from),
            Just(Value::Null),
        ]
        .boxed()
    }

    /// Asserts the four metric invariants for a metric over a value pair.
    pub fn check_invariants<M: crate::ValueSimilarity>(m: &M, a: &Value, b: &Value) {
        let s_ab = m.sim(a, b);
        let s_ba = m.sim(b, a);
        assert!(
            (0.0..=1.0).contains(&s_ab),
            "{} out of range: {s_ab}",
            m.name()
        );
        assert!(
            (s_ab - s_ba).abs() < 1e-12,
            "{} asymmetric: {s_ab} vs {s_ba}",
            m.name()
        );
        // Identity holds for any value that carries information: non-null
        // with a non-empty text rendering. Empty strings are treated as
        // informationless, like nulls.
        if !a.is_null() && !a.to_text().trim().is_empty() {
            let s_aa = m.sim(a, a);
            assert!(
                (s_aa - 1.0).abs() < 1e-12,
                "{} identity violated: sim(a,a)={s_aa} for {a:?}",
                m.name()
            );
        }
        if a.is_null() || b.is_null() {
            assert_eq!(s_ab, 0.0, "{}: null must score 0", m.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let m = ExactMatch;
        assert_eq!(m.sim(&Value::from("a"), &Value::from("a")), 1.0);
        assert_eq!(m.sim(&Value::from("a"), &Value::from("b")), 0.0);
        assert_eq!(m.sim(&Value::Null, &Value::Null), 0.0);
        assert_eq!(m.sim(&Value::from(3i64), &Value::from(3.0)), 1.0);
        assert_eq!(m.name(), "exact");
    }

    proptest::proptest! {
        #[test]
        fn exact_invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&ExactMatch, &a, &b);
        }
    }
}
