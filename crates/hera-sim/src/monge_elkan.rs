//! Monge–Elkan: token-level composition of a character-level metric.

use crate::jaro::JaroWinkler;
use crate::text::word_tokens;
use crate::ValueSimilarity;
use hera_types::Value;

/// Monge–Elkan similarity: each token of one string is matched to its
/// best-scoring token in the other under an inner character metric
/// (Jaro–Winkler here), and the per-token maxima are averaged.
/// Symmetrized by averaging both directions (the raw definition is
/// asymmetric).
///
/// Stronger than whole-string metrics on reordered multi-token values
/// (`"Bush, John"` vs `"John Bush"`) and than token-set metrics on
/// per-token typos (`"Jhon Bush"` vs `"John Bush"`).
#[derive(Debug, Clone, Copy)]
pub struct MongeElkan {
    inner: JaroWinkler,
}

impl MongeElkan {
    /// Creates a Monge–Elkan metric over Jaro–Winkler with the given
    /// prefix scale.
    pub fn new(prefix_scale: f64) -> Self {
        Self {
            inner: JaroWinkler::new(prefix_scale),
        }
    }

    fn directed(&self, a: &[String], b: &[String]) -> f64 {
        let mut total = 0.0;
        for ta in a {
            let mut best = 0.0f64;
            for tb in b {
                let s = self.inner.sim_str(ta, tb);
                if s > best {
                    best = s;
                }
            }
            total += best;
        }
        total / a.len() as f64
    }

    /// Similarity of two raw strings.
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let ta = word_tokens(a);
        let tb = word_tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        0.5 * (self.directed(&ta, &tb) + self.directed(&tb, &ta))
    }
}

impl Default for MongeElkan {
    fn default() -> Self {
        Self::new(0.1)
    }
}

impl ValueSimilarity for MongeElkan {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "monge-elkan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    #[test]
    fn token_reordering_is_free() {
        let m = MongeElkan::default();
        // Punctuation stays attached to tokens, so compare clean swaps.
        assert!((m.sim_str("john bush", "bush john") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_token_typos_score_high() {
        let m = MongeElkan::default();
        let s = m.sim_str("Jhon Bush", "John Bush");
        assert!(s > 0.9, "got {s}");
        // Whole-string 2-gram jaccard is much harsher on the same pair.
        let jac = crate::QGramJaccard::default().sim_str("Jhon Bush", "John Bush");
        assert!(s > jac);
    }

    #[test]
    fn unrelated_strings_score_low() {
        let m = MongeElkan::default();
        assert!(m.sim_str("alpha beta", "zzz qqq") < 0.3);
        assert_eq!(m.sim_str("", "x"), 0.0);
    }

    proptest! {
        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&MongeElkan::default(), &a, &b);
        }
    }
}
