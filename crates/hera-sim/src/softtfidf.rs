//! Soft TF-IDF (Cohen, Ravikumar & Fienberg) — the paper's second named
//! alternative metric.
//!
//! Soft TF-IDF generalizes TF-IDF cosine by letting *near*-equal tokens
//! (under an inner character metric, here Jaro–Winkler) contribute, scaled
//! by their inner similarity. It is trained on a corpus to learn IDF
//! weights; unseen tokens receive the maximum observed IDF.

use crate::jaro::JaroWinkler;
use crate::text::word_tokens;
use crate::ValueSimilarity;
use hera_types::Value;
use rustc_hash::FxHashMap;

/// Trained Soft TF-IDF metric.
#[derive(Debug, Clone)]
pub struct SoftTfIdf {
    idf: FxHashMap<String, f64>,
    /// IDF assigned to tokens never seen in training.
    default_idf: f64,
    /// Inner-similarity threshold θ below which tokens do not soft-match.
    threshold: f64,
    inner: JaroWinkler,
}

impl SoftTfIdf {
    /// Trains IDF weights on a corpus of documents (each document is the
    /// text of one value). Uses the smoothed form
    /// `idf(t) = ln((1 + N) / (1 + df(t))) + 1`.
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(corpus: I, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        let mut df: FxHashMap<String, usize> = FxHashMap::default();
        let mut n_docs = 0usize;
        for doc in corpus {
            n_docs += 1;
            let mut tokens = word_tokens(doc);
            tokens.sort_unstable();
            tokens.dedup();
            for t in tokens {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        let n = n_docs as f64;
        let idf: FxHashMap<String, f64> = df
            .into_iter()
            .map(|(t, d)| (t, ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0))
            .collect();
        let default_idf = idf
            .values()
            .copied()
            .fold(((1.0 + n) / 1.0).ln() + 1.0, f64::max);
        Self {
            idf,
            default_idf,
            threshold,
            inner: JaroWinkler::default(),
        }
    }

    fn idf_of(&self, token: &str) -> f64 {
        self.idf.get(token).copied().unwrap_or(self.default_idf)
    }

    /// Unit-normalized TF-IDF weights for a token multiset.
    fn weights(&self, tokens: &[String]) -> Vec<(String, f64)> {
        let mut tf: FxHashMap<&str, f64> = FxHashMap::default();
        for t in tokens {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        let mut w: Vec<(String, f64)> = tf
            .into_iter()
            .map(|(t, f)| (t.to_owned(), f * self.idf_of(t)))
            .collect();
        let norm = w.iter().map(|(_, x)| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, x) in &mut w {
                *x /= norm;
            }
        }
        w.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        w
    }

    /// One direction of the soft match: each token of `a` grabs its best
    /// partner in `b` (≥ θ) and contributes `w_a · w_b · inner`.
    fn directed(&self, a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
        let mut total = 0.0;
        for (ta, wa) in a {
            let mut best = 0.0f64;
            let mut best_w = 0.0f64;
            for (tb, wb) in b {
                let s = if ta == tb {
                    1.0
                } else {
                    self.inner.sim_str(ta, tb)
                };
                if s >= self.threshold && s > best {
                    best = s;
                    best_w = *wb;
                }
            }
            total += wa * best_w * best;
        }
        total.clamp(0.0, 1.0)
    }

    /// Similarity of two raw strings (symmetrized: average of both
    /// directions).
    pub fn sim_str(&self, a: &str, b: &str) -> f64 {
        let ta = word_tokens(a);
        let tb = word_tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        let wa = self.weights(&ta);
        let wb = self.weights(&tb);
        0.5 * (self.directed(&wa, &wb) + self.directed(&wb, &wa))
    }
}

impl ValueSimilarity for SoftTfIdf {
    fn sim(&self, a: &Value, b: &Value) -> f64 {
        if a.is_null() || b.is_null() {
            return 0.0;
        }
        self.sim_str(&a.to_text(), &b.to_text())
    }

    fn name(&self) -> &'static str {
        "soft-tfidf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use proptest::prelude::*;

    fn trained() -> SoftTfIdf {
        SoftTfIdf::train(
            [
                "product manager",
                "manager",
                "senior product manager",
                "sales associate",
                "regional sales manager",
            ],
            0.9,
        )
    }

    #[test]
    fn identity_scores_one() {
        let m = trained();
        assert!((m.sim_str("product manager", "product manager") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_tokens_soft_match() {
        let m = trained();
        // "managr" ≈ "manager" under Jaro-Winkler (> 0.9), so the pair
        // scores well above plain cosine (which would give 0 overlap on
        // that token).
        let soft = m.sim_str("product managr", "product manager");
        assert!(soft > 0.85, "got {soft}");
        // Plain TF cosine scores the same pair at 0.5 (only "product"
        // overlaps exactly).
        let cos = crate::CosineTf.sim_str("product managr", "product manager");
        assert!(soft > cos, "soft {soft} should beat cosine {cos}");
    }

    #[test]
    fn rare_tokens_weigh_more() {
        let m = trained();
        // "product" (df 2) is rarer than "manager" (df 4): sharing the
        // rare token scores higher than sharing the common one.
        let share_rare = m.sim_str("product x", "product y");
        let share_common = m.sim_str("manager x", "manager y");
        assert!(share_rare > share_common, "{share_rare} vs {share_common}");
    }

    #[test]
    fn empty_scores_zero() {
        let m = trained();
        assert_eq!(m.sim_str("", "manager"), 0.0);
        assert_eq!(m.sim_str("", ""), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        SoftTfIdf::train(["x"], 1.5);
    }

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn invariants(
            a in test_support::any_value(),
            b in test_support::any_value()
        ) {
            test_support::check_invariants(&trained(), &a, &b);
        }
    }
}
