//! Durable snapshots for HERA session state.
//!
//! A snapshot is a named collection of JSON sections wrapped in a small
//! self-validating envelope:
//!
//! ```text
//! #hera-snapshot v1 crc32=89abcdef len=1234\n
//! {"registry":{…},"supers":[…],…}
//! ```
//!
//! * **versioned** — the header carries the format version; a reader
//!   built for a different version rejects the file with
//!   [`HeraError::VersionMismatch`] instead of misreading it;
//! * **CRC-checked** — `crc32` is the IEEE CRC-32 of the exact payload
//!   bytes and `len` is their count, so flipped bytes, truncation, and
//!   trailing garbage are all caught deterministically and reported as
//!   [`HeraError::Corrupt`];
//! * **atomically written** — [`Snapshot::write`] writes to a temporary
//!   sibling file, syncs it, renames it over the destination, and then
//!   syncs the parent directory so the rename itself is durable — a
//!   crash mid-write can never leave a half-written snapshot under the
//!   target path, and a crash right after the write cannot lose the
//!   rename.
//!
//! Every stage of the write and read paths carries a named failpoint
//! ([`hera_faults::points`]): [`Snapshot::write_with`] /
//! [`Snapshot::read_with`] accept a [`hera_faults::FaultInjector`] so the
//! chaos harness can fail any stage deterministically (including torn
//! writes — a partial payload followed by failure — and bit-rot reads).
//! The plain [`Snapshot::write`] / [`Snapshot::read`] entry points use a
//! disabled injector and pay one branch per stage.
//!
//! The payload is produced by the workspace's dependency-free
//! [`hera_types::json`] writer. Every producer serializes its maps in
//! sorted order, so equal state yields byte-identical snapshots.
//!
//! The crate knows nothing about sessions — it stores named [`Json`]
//! sections. `hera-core` assembles session state into sections and
//! consumes them on restore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hera_faults::{points, FaultInjector, FaultKind};
use hera_types::json::{self, Json};
use hera_types::{HeraError, Result};
use std::io::Write as _;
use std::path::Path;

/// Snapshot format version understood by this build.
pub const FORMAT_VERSION: u32 = 1;

/// Leading magic of every snapshot header.
const MAGIC: &str = "#hera-snapshot v";

/// IEEE CRC-32 lookup table (polynomial `0xEDB88320`), built at compile
/// time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of a byte slice (the checksum zip, gzip, and PNG use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Outcome of a successful [`Snapshot::write`], for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReport {
    /// Payload bytes written (header excluded).
    pub payload_bytes: usize,
    /// Number of sections in the snapshot.
    pub sections: usize,
}

/// A named collection of JSON sections with a versioned, CRC-checked
/// envelope (crate docs).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, section)` pairs in insertion order. Order is part of the
    /// byte format, so writers must insert sections deterministically.
    sections: Vec<(String, Json)>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Names must be unique; inserting a duplicate
    /// replaces the earlier section in place (keeping its position).
    pub fn insert(&mut self, name: impl Into<String>, section: Json) {
        let name = name.into();
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = section;
        } else {
            self.sections.push((name, section));
        }
    }

    /// Looks up a section by name.
    pub fn get(&self, name: &str) -> Option<&Json> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Looks up a section, failing with [`HeraError::Corrupt`] when it is
    /// missing (a snapshot without a required section is damaged, not
    /// merely incomplete).
    pub fn expect(&self, name: &str) -> Result<&Json> {
        self.get(name)
            .ok_or_else(|| HeraError::Corrupt(format!("snapshot section {name:?} missing")))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True if no section was inserted.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Section names in snapshot order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Renders the payload (compact JSON object of all sections, without
    /// the envelope header).
    fn payload(&self) -> String {
        Json::Obj(self.sections.clone()).to_string_compact()
    }

    /// Encodes the snapshot as envelope bytes (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.payload();
        let header = format!(
            "{MAGIC}{FORMAT_VERSION} crc32={:08x} len={}\n",
            crc32(payload.as_bytes()),
            payload.len()
        );
        let mut out = Vec::with_capacity(header.len() + payload.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(payload.as_bytes());
        out
    }

    /// Decodes and validates envelope bytes. Bad magic, length or CRC
    /// mismatches, and malformed payloads yield [`HeraError::Corrupt`]; a
    /// parsable header carrying a different format version yields
    /// [`HeraError::VersionMismatch`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| HeraError::Corrupt("snapshot is not valid UTF-8".into()))?;
        let Some(rest) = text.strip_prefix(MAGIC) else {
            return Err(HeraError::Corrupt(
                "missing #hera-snapshot magic header".into(),
            ));
        };
        let Some((header, payload)) = rest.split_once('\n') else {
            return Err(HeraError::Corrupt("snapshot header not terminated".into()));
        };
        let mut fields = header.split(' ');
        let version: u32 = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| HeraError::Corrupt("unparsable snapshot version".into()))?;
        if version != FORMAT_VERSION {
            return Err(HeraError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let crc_expected: u32 = fields
            .next()
            .and_then(|f| f.strip_prefix("crc32="))
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| HeraError::Corrupt("unparsable snapshot crc field".into()))?;
        let len_expected: usize = fields
            .next()
            .and_then(|f| f.strip_prefix("len="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| HeraError::Corrupt("unparsable snapshot len field".into()))?;
        if payload.len() != len_expected {
            return Err(HeraError::Corrupt(format!(
                "snapshot payload is {} bytes, header promises {len_expected} \
                 (truncated or padded file)",
                payload.len()
            )));
        }
        let crc_actual = crc32(payload.as_bytes());
        if crc_actual != crc_expected {
            return Err(HeraError::Corrupt(format!(
                "snapshot crc32 {crc_actual:08x} does not match header {crc_expected:08x}"
            )));
        }
        let Json::Obj(sections) = json::parse(payload)
            .map_err(|e| HeraError::Corrupt(format!("snapshot payload: {e}")))?
        else {
            return Err(HeraError::Corrupt(
                "snapshot payload is not a JSON object".into(),
            ));
        };
        Ok(Self { sections })
    }

    /// Writes the snapshot atomically: the bytes go to a `.tmp` sibling,
    /// are synced to disk, the file is renamed over `path`, and the
    /// parent directory is synced so the rename is durable — readers see
    /// either the old snapshot or the complete new one, never a partial
    /// write.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<WriteReport> {
        self.write_with(path, &FaultInjector::disabled())
    }

    /// [`Snapshot::write`] with a fault injector consulted at every
    /// stage (`store.write.create` / `.write` / `.sync` / `.rename` /
    /// `.dirsync`). On any failure — injected or real — the `.tmp`
    /// sibling is removed, so no partial snapshot file is left behind;
    /// the destination still holds whatever complete snapshot it held
    /// before.
    pub fn write_with(
        &self,
        path: impl AsRef<Path>,
        faults: &FaultInjector,
    ) -> Result<WriteReport> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let payload_bytes = bytes.len() - header_len(&bytes);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let io_err = |stage: &str, e: std::io::Error| {
            HeraError::Io(format!("{stage} {}: {e}", path.display()))
        };
        let injected = |point: &str| Err(FaultInjector::error(point, &path.display().to_string()));
        let result = (|| {
            if faults.hit(points::STORE_WRITE_CREATE).is_some() {
                return injected(points::STORE_WRITE_CREATE);
            }
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
            match faults.hit(points::STORE_WRITE_WRITE) {
                Some(FaultKind::Torn { keep_percent }) => {
                    // A torn write: part of the payload reaches the file,
                    // then the write "crashes". The partial tmp is synced
                    // so the simulation is what a real crash leaves.
                    let keep = bytes.len() * usize::from(keep_percent.min(100)) / 100;
                    let _ = f.write_all(&bytes[..keep]);
                    let _ = f.sync_all();
                    return injected(points::STORE_WRITE_WRITE);
                }
                Some(_) => return injected(points::STORE_WRITE_WRITE),
                None => f.write_all(&bytes).map_err(|e| io_err("write", e))?,
            }
            if faults.hit(points::STORE_WRITE_SYNC).is_some() {
                return injected(points::STORE_WRITE_SYNC);
            }
            f.sync_all().map_err(|e| io_err("sync", e))?;
            drop(f);
            if faults.hit(points::STORE_WRITE_RENAME).is_some() {
                return injected(points::STORE_WRITE_RENAME);
            }
            std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))?;
            if faults.hit(points::STORE_WRITE_DIRSYNC).is_some() {
                return injected(points::STORE_WRITE_DIRSYNC);
            }
            sync_parent_dir(path).map_err(|e| io_err("dirsync", e))
        })();
        if result.is_err() {
            // Best-effort cleanup; the original error is what matters.
            // (After a successful rename the tmp no longer exists and
            // the destination holds a complete snapshot.)
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        Ok(WriteReport {
            payload_bytes,
            sections: self.sections.len(),
        })
    }

    /// Reads and validates a snapshot file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        Self::read_report(path).map(|(snap, _)| snap)
    }

    /// [`Snapshot::read`] with a fault injector consulted at the
    /// `store.read` failpoint ([`FaultKind::Corrupt`] flips one byte of
    /// the read buffer — the validation layer must catch it).
    pub fn read_with(path: impl AsRef<Path>, faults: &FaultInjector) -> Result<Self> {
        Self::read_report_with(path, faults).map(|(snap, _)| snap)
    }

    /// Reads and validates a snapshot file, also reporting its payload
    /// size and section count (the counters `checkpoint_load` spans
    /// carry).
    pub fn read_report(path: impl AsRef<Path>) -> Result<(Self, WriteReport)> {
        Self::read_report_with(path, &FaultInjector::disabled())
    }

    /// [`Snapshot::read_report`] with a fault injector (see
    /// [`Snapshot::read_with`]).
    pub fn read_report_with(
        path: impl AsRef<Path>,
        faults: &FaultInjector,
    ) -> Result<(Self, WriteReport)> {
        let path = path.as_ref();
        let bytes = match faults.hit(points::STORE_READ) {
            Some(FaultKind::Corrupt) => {
                let mut b = std::fs::read(path)
                    .map_err(|e| HeraError::Io(format!("read {}: {e}", path.display())))?;
                if !b.is_empty() {
                    // Simulated bit rot: flip one payload bit mid-file.
                    let mid = b.len() / 2;
                    b[mid] ^= 0x20;
                }
                b
            }
            Some(_) => {
                return Err(FaultInjector::error(
                    points::STORE_READ,
                    &path.display().to_string(),
                ))
            }
            None => std::fs::read(path)
                .map_err(|e| HeraError::Io(format!("read {}: {e}", path.display())))?,
        };
        let snap = Self::from_bytes(&bytes)?;
        let report = WriteReport {
            payload_bytes: bytes.len() - header_len(&bytes),
            sections: snap.len(),
        };
        Ok((snap, report))
    }
}

/// Fsyncs the directory containing `path`, making a just-performed
/// rename durable across power loss. POSIX requires an fsync of the
/// *directory* to persist its entries; syncing only the file leaves the
/// rename in the page cache. No-op on platforms where directories cannot
/// be opened for syncing.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Ok(())
    }
}

/// Length of the envelope header line (through the first newline).
fn header_len(bytes: &[u8]) -> usize {
    bytes
        .iter()
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |p| p + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.insert("alpha", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        s.insert("beta", Json::Obj(vec![("x".into(), Json::Float(0.5))]));
        s
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_sections_and_bytes() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.names().collect::<Vec<_>>(), vec!["alpha", "beta"]);
        assert_eq!(
            back.expect("beta").unwrap().to_string_compact(),
            r#"{"x":0.5}"#
        );
        assert_eq!(back.to_bytes(), bytes, "re-encoding is a fixpoint");
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut s = sample();
        s.insert("alpha", Json::Int(9));
        assert_eq!(s.len(), 2);
        assert_eq!(s.names().next(), Some("alpha"));
        assert_eq!(s.expect("alpha").unwrap().as_i64().unwrap(), 9);
    }

    #[test]
    fn missing_section_is_corrupt() {
        let err = sample().expect("gamma").unwrap_err();
        assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
    }

    #[test]
    fn flipped_payload_byte_is_corrupt() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncation_is_corrupt() {
        let bytes = sample().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() - 10, 5] {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, HeraError::Corrupt(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut bytes = sample().to_bytes();
        bytes.extend_from_slice(b"junk");
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
    }

    #[test]
    fn version_skew_is_typed() {
        let bytes = sample().to_bytes();
        let skewed = String::from_utf8(bytes).unwrap().replacen(
            "#hera-snapshot v1 ",
            "#hera-snapshot v2 ",
            1,
        );
        let err = Snapshot::from_bytes(skewed.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            HeraError::VersionMismatch {
                found: 2,
                expected: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn foreign_file_is_corrupt() {
        for junk in [&b"not a snapshot"[..], b"", b"\x00\x01\x02"] {
            let err = Snapshot::from_bytes(junk).unwrap_err();
            assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
        }
    }

    #[test]
    fn write_read_roundtrip_and_tmp_cleanup() {
        let dir = std::env::temp_dir().join(format!("hera-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.hera");
        let report = sample().write(&path).unwrap();
        assert_eq!(report.sections, 2);
        assert!(report.payload_bytes > 0);
        assert!(!dir.join("snap.hera.tmp").exists(), "tmp file renamed away");
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back.to_bytes(), sample().to_bytes());
        // Overwrite is atomic too: write again over the existing file.
        sample().write(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_file_is_io() {
        let err = Snapshot::read("/nonexistent/dir/snap.hera").unwrap_err();
        assert!(matches!(err, HeraError::Io(_)), "{err}");
    }

    // -- failpoint-backed fault-injection tests ------------------------

    use hera_faults::{FaultPlan, FaultRule};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hera-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plan_for(point: &str, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: point.into(),
                hits: vec![1],
                kind,
            }],
        }
    }

    #[test]
    fn every_write_stage_fails_cleanly() {
        // Whichever stage fails, the result is an injected Io error, the
        // tmp sibling is gone, and a pre-existing destination snapshot
        // survives untouched.
        let dir = tmp_dir("stages");
        let path = dir.join("snap.hera");
        let mut old = Snapshot::new();
        old.insert("old", Json::Int(1));
        old.write(&path).unwrap();
        let old_bytes = std::fs::read(&path).unwrap();
        for point in [
            points::STORE_WRITE_CREATE,
            points::STORE_WRITE_WRITE,
            points::STORE_WRITE_SYNC,
            points::STORE_WRITE_RENAME,
        ] {
            let inj = FaultInjector::new(&plan_for(point, FaultKind::Error));
            let err = sample().write_with(&path, &inj).unwrap_err();
            assert!(err.to_string().contains("injected fault"), "{point}: {err}");
            assert!(err.to_string().contains(point), "{point}: {err}");
            assert!(
                !dir.join("snap.hera.tmp").exists(),
                "{point}: tmp left behind"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                old_bytes,
                "{point}: destination was disturbed"
            );
            assert_eq!(inj.fired().len(), 1, "{point}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_never_reaches_destination() {
        let dir = tmp_dir("torn");
        let path = dir.join("snap.hera");
        let mut old = Snapshot::new();
        old.insert("old", Json::Int(1));
        old.write(&path).unwrap();
        let old_bytes = std::fs::read(&path).unwrap();
        for keep in [0u8, 37, 99] {
            let inj = FaultInjector::new(&plan_for(
                points::STORE_WRITE_WRITE,
                FaultKind::Torn { keep_percent: keep },
            ));
            let err = sample().write_with(&path, &inj).unwrap_err();
            assert!(matches!(err, HeraError::Io(_)), "keep {keep}: {err}");
            assert!(
                !dir.join("snap.hera.tmp").exists(),
                "keep {keep}: partial tmp left behind"
            );
            assert_eq!(
                std::fs::read(&path).unwrap(),
                old_bytes,
                "keep {keep}: torn bytes reached the destination"
            );
            assert_eq!(Snapshot::read(&path).unwrap().to_bytes(), old.to_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirsync_edge_is_instrumented_and_runs() {
        // Regression test for the missing parent-directory fsync: the
        // dirsync failpoint must sit on the write path (a fault-free
        // write consults it exactly once per write), and a scheduled
        // fault there must surface as an error — proving the sync call
        // is actually reached after the rename.
        let dir = tmp_dir("dirsync");
        let path = dir.join("snap.hera");
        let inj = FaultInjector::new(&FaultPlan::none());
        sample().write_with(&path, &inj).unwrap();
        assert_eq!(
            inj.hits(points::STORE_WRITE_DIRSYNC),
            1,
            "dirsync edge not instrumented — parent fsync likely missing"
        );
        let inj = FaultInjector::new(&plan_for(points::STORE_WRITE_DIRSYNC, FaultKind::Error));
        let err = sample().write_with(&path, &inj).unwrap_err();
        assert!(err.to_string().contains("store.write.dirsync"), "{err}");
        // The rename already happened, so the destination holds the new
        // complete snapshot — only its durability was in question.
        assert_eq!(
            Snapshot::read(&path).unwrap().to_bytes(),
            sample().to_bytes()
        );
        assert!(!dir.join("snap.hera.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_read_is_caught_by_crc() {
        let dir = tmp_dir("bitrot");
        let path = dir.join("snap.hera");
        sample().write(&path).unwrap();
        let inj = FaultInjector::new(&plan_for(points::STORE_READ, FaultKind::Corrupt));
        let err = Snapshot::read_with(&path, &inj).unwrap_err();
        assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
        // The file itself is intact — only the read buffer was flipped.
        assert_eq!(
            Snapshot::read(&path).unwrap().to_bytes(),
            sample().to_bytes()
        );
        // A plain injected read error is Io, not Corrupt.
        let inj = FaultInjector::new(&plan_for(points::STORE_READ, FaultKind::Error));
        let err = Snapshot::read_with(&path, &inj).unwrap_err();
        assert!(matches!(err, HeraError::Io(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
