//! Structured observability for HERA: a JSON Lines run journal.
//!
//! The resolve pipeline emits *events* — one JSON object per line —
//! through a [`Recorder`] handle threaded from the driver down to the
//! join, index, and verification stages. Events come in two classes,
//! distinguished by their `"ev"` discriminator:
//!
//! * **Core events** (`run_start`, `span`, `merge`, `schema_decided`,
//!   `gauge`, `round_end`, `run_end`) describe *what the algorithm
//!   decided*: per-stage counter deltas, every merge `rid₁ ⊕ rid₂`, every
//!   schema matching the voter promoted. Because the pipeline's decisions
//!   are bit-identical at every thread count and with the similarity
//!   cache on or off (the PR 1/PR 2 determinism discipline), the core
//!   journal is **byte-identical** across all those configurations.
//! * **Diagnostic events** (`timing`, `diag`) describe *how the run went
//!   on this host*: wall-clock per stage, thread count, cache traffic.
//!   These legitimately vary run to run, so they are a separate line
//!   class that [`deterministic_view`] strips and
//!   [`Recorder::deterministic`] suppresses at the source.
//!
//! Per-worker aggregation never happens in the recorder: parallel stages
//! return per-item results in input order (`par_map_with`), the caller
//! folds them in that order, and emits **one** span per stage — so the
//! journal needs no locking discipline beyond the line sink itself.
//!
//! A disabled recorder ([`Recorder::disabled`]) is a `None` sink: every
//! emit method returns after one branch, no formatting, no allocation —
//! the hot path pays nothing. Call sites that must *build* data for an
//! event (e.g. resolve attribute names) guard on [`Recorder::enabled`].
//!
//! **Graceful degradation**: observability must never take a resolve run
//! down with it. When a sink write fails — for real, or through the
//! `obs.sink.write` failpoint of an attached
//! [`hera_faults::FaultInjector`] — the recorder *degrades*: it
//! best-effort appends exactly one `sink_degraded` event, warns once on
//! stderr, and silently drops every further line. The pipeline never
//! sees an error from its tracing calls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hera_faults::{points, FaultInjector};
use hera_types::json::{self, Json};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Event kinds that are *diagnostic*: host- and configuration-dependent
/// lines that [`deterministic_view`] removes.
pub const DIAGNOSTIC_EVENTS: [&str; 2] = ["timing", "diag"];

/// Where journal lines go.
enum Sink {
    /// Buffered file writer (flushed on [`Recorder::flush`] and drop).
    File(std::io::BufWriter<std::fs::File>),
    /// In-memory journal, shared with a [`JournalBuffer`].
    Memory(String),
    /// Encode and discard — exercises the serialization path (used by the
    /// `HERA_TRACE=1` test mode) without touching the filesystem.
    Null,
}

impl Sink {
    /// Appends one journal line; false on a write failure.
    fn append(&mut self, line: &str) -> bool {
        match self {
            Sink::File(w) => writeln!(w, "{line}").is_ok(),
            Sink::Memory(s) => {
                s.push_str(line);
                s.push('\n');
                true
            }
            Sink::Null => true,
        }
    }

    /// Flushes buffered bytes (file sinks only).
    fn flush(&mut self) {
        if let Sink::File(w) = self {
            let _ = w.flush();
        }
    }
}

/// Sink plus its degradation flag, behind one lock.
struct SinkState {
    sink: Sink,
    /// Set on the first write failure; all later lines are dropped.
    degraded: bool,
}

impl SinkState {
    fn new(sink: Sink) -> Self {
        Self {
            sink,
            degraded: false,
        }
    }
}

/// Read handle onto a memory-sink journal (see [`Recorder::to_memory`]).
#[derive(Clone)]
pub struct JournalBuffer(Arc<Mutex<SinkState>>);

impl JournalBuffer {
    /// The journal accumulated so far, as JSON Lines text.
    pub fn contents(&self) -> String {
        match &self.0.lock().expect("journal sink poisoned").sink {
            Sink::Memory(s) => s.clone(),
            _ => String::new(),
        }
    }
}

/// Handle for emitting journal events. Cheap to clone (an `Arc` plus two
/// flags); a disabled recorder makes every emit method a no-op.
#[derive(Clone, Default)]
pub struct Recorder {
    sink: Option<Arc<Mutex<SinkState>>>,
    /// Emit diagnostic (`timing` / `diag`) lines.
    diagnostics: bool,
    /// Mirror `round_end` summaries to stderr as live progress lines.
    progress: bool,
    /// Fault injector consulted at `obs.sink.write` (disabled by
    /// default).
    faults: FaultInjector,
    /// Attribution label stamped on every event this handle emits (see
    /// [`Recorder::scoped`]); `None` leaves lines byte-identical to the
    /// historical format.
    scope: Option<Arc<str>>,
}

impl Recorder {
    /// A recorder that records nothing — the zero-cost default.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Records to a file, creating or truncating it. Diagnostics on.
    pub fn to_file(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            sink: Some(Arc::new(Mutex::new(SinkState::new(Sink::File(
                std::io::BufWriter::new(file),
            ))))),
            diagnostics: true,
            ..Self::default()
        })
    }

    /// Records to an in-memory buffer; returns the recorder and a read
    /// handle. Diagnostics on (use [`Recorder::deterministic`] to strip).
    pub fn to_memory() -> (Self, JournalBuffer) {
        let sink = Arc::new(Mutex::new(SinkState::new(Sink::Memory(String::new()))));
        let rec = Self {
            sink: Some(sink.clone()),
            diagnostics: true,
            ..Self::default()
        };
        (rec, JournalBuffer(sink))
    }

    /// Encodes every event and discards the bytes — the serialization
    /// path runs, nothing is stored. Used by the `HERA_TRACE=1` test mode.
    pub fn to_null() -> Self {
        Self {
            sink: Some(Arc::new(Mutex::new(SinkState::new(Sink::Null)))),
            diagnostics: true,
            ..Self::default()
        }
    }

    /// Builds a recorder from the `HERA_TRACE` environment variable:
    /// a null-sink recorder when set (non-empty, not `"0"`), disabled
    /// otherwise. Lets CI drive the whole tracing path through ordinary
    /// test runs without per-process output files.
    pub fn from_env() -> Self {
        match std::env::var("HERA_TRACE") {
            Ok(v) if !v.is_empty() && v != "0" => Self::to_null(),
            _ => Self::disabled(),
        }
    }

    /// Suppresses diagnostic (`timing` / `diag`) lines at the source, so
    /// the journal contains only the byte-identical core events.
    pub fn deterministic(mut self) -> Self {
        self.diagnostics = false;
        self
    }

    /// Enables or disables live progress lines on stderr.
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Attaches a fault injector: every sink write consults the
    /// `obs.sink.write` failpoint, and an injected (or real) failure
    /// triggers graceful degradation instead of an error.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// A handle that stamps `"scope": label` on every event it emits,
    /// sharing this recorder's sink. Concurrent emitters (one session
    /// per shard worker, say) each take a scoped handle so their
    /// interleaved lines stay attributable — and round-counter
    /// monotonicity ([`check_rounds_monotonic`]) is checked *per scope*,
    /// so independent per-shard round counters interleaving in one
    /// journal are not a false violation. Unscoped recorders emit the
    /// historical byte-identical format.
    pub fn scoped(&self, label: &str) -> Recorder {
        let mut scoped = self.clone();
        scoped.scope = Some(Arc::from(label));
        scoped
    }

    /// True if any emit can have an effect — guard expensive event
    /// construction (name lookups, string formatting) on this.
    pub fn enabled(&self) -> bool {
        self.sink.is_some() || self.progress
    }

    /// True once the sink has failed and the recorder dropped into
    /// degraded (drop-everything) mode.
    pub fn degraded(&self) -> bool {
        self.sink
            .as_ref()
            .is_some_and(|s| s.lock().expect("journal sink poisoned").degraded)
    }

    /// Flushes a file sink. Memory/null sinks are always current.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("journal sink poisoned").sink.flush();
        }
    }

    fn write_line(&self, ev: &str, fields: Vec<(&str, Json)>) {
        let Some(sink) = &self.sink else { return };
        let mut obj = Vec::with_capacity(fields.len() + 2);
        obj.push(("ev".to_string(), Json::Str(ev.to_string())));
        if let Some(scope) = &self.scope {
            obj.push(("scope".to_string(), Json::Str(scope.to_string())));
        }
        obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        let line = Json::Obj(obj).to_string_compact();
        let mut state = sink.lock().expect("journal sink poisoned");
        if state.degraded {
            return;
        }
        let injected = self.faults.hit(points::OBS_SINK_WRITE).is_some();
        let ok = !injected && state.sink.append(&line);
        if !ok {
            // Degrade: one best-effort notice, one stderr warning, then
            // silence. Tracing must never fail the pipeline it observes.
            state.degraded = true;
            let reason = if injected {
                "injected fault"
            } else {
                "io error"
            };
            let notice = Json::Obj(vec![
                ("ev".into(), Json::Str("sink_degraded".into())),
                ("reason".into(), Json::Str(reason.into())),
                ("dropped_event".into(), Json::Str(ev.to_string())),
            ])
            .to_string_compact();
            let _ = state.sink.append(&notice);
            state.sink.flush();
            eprintln!(
                "[hera-obs] journal sink degraded ({reason}); \
                 further trace events are dropped"
            );
        }
    }

    /// Emits a core event (always, when a sink is attached).
    pub fn emit(&self, ev: &str, fields: Vec<(&str, Json)>) {
        if self.sink.is_some() {
            self.write_line(ev, fields);
        }
    }

    /// Emits a diagnostic event (skipped in [`Recorder::deterministic`]
    /// mode).
    pub fn emit_diag(&self, ev: &str, fields: Vec<(&str, Json)>) {
        if self.sink.is_some() && self.diagnostics {
            self.write_line(ev, fields);
        }
    }

    // ---- Typed conveniences over `emit` / `emit_diag`. --------------

    /// Start-of-run marker: which pipeline, on what input, under which
    /// thresholds.
    pub fn run_start(&self, pipeline: &str, dataset: &str, records: usize, delta: f64, xi: f64) {
        if !self.enabled() {
            return;
        }
        self.emit(
            "run_start",
            vec![
                ("pipeline", Json::Str(pipeline.to_string())),
                ("dataset", Json::Str(dataset.to_string())),
                ("records", Json::Int(records as i64)),
                ("delta", Json::Float(delta)),
                ("xi", Json::Float(xi)),
            ],
        );
    }

    /// One pipeline stage's counter deltas. `round` is `None` for stages
    /// outside the compare-and-merge loop (join, index build).
    pub fn span(&self, stage: &str, round: Option<usize>, counters: &[(&str, i64)]) {
        if self.sink.is_none() {
            return;
        }
        let mut fields: Vec<(&str, Json)> = vec![("stage", Json::Str(stage.to_string()))];
        if let Some(r) = round {
            fields.push(("round", Json::Int(r as i64)));
        }
        fields.extend(counters.iter().map(|&(k, v)| (k, Json::Int(v))));
        self.emit("span", fields);
    }

    /// One merge decision: `winner ⊕ loser` at record similarity `sim`
    /// over `matched_fields` matched field pairs.
    pub fn merge(&self, round: usize, winner: u32, loser: u32, sim: f64, matched_fields: usize) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "merge",
            vec![
                ("round", Json::Int(round as i64)),
                ("winner", Json::Int(winner as i64)),
                ("loser", Json::Int(loser as i64)),
                ("sim", Json::Float(sim)),
                ("matched_fields", Json::Int(matched_fields as i64)),
            ],
        );
    }

    /// One schema matching promoted by the voter, with its Theorem-2
    /// error bound at decision time.
    pub fn schema_decided(&self, round: usize, attr: &str, partner: &str, up_error: f64) {
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "schema_decided",
            vec![
                ("round", Json::Int(round as i64)),
                ("attr", Json::Str(attr.to_string())),
                ("partner", Json::Str(partner.to_string())),
                ("up_error", Json::Float(up_error)),
            ],
        );
    }

    /// A point-in-time measurement of a named quantity.
    pub fn gauge(&self, name: &str, round: Option<usize>, value: i64) {
        if self.sink.is_none() {
            return;
        }
        let mut fields: Vec<(&str, Json)> = vec![("name", Json::Str(name.to_string()))];
        if let Some(r) = round {
            fields.push(("round", Json::Int(r as i64)));
        }
        fields.push(("value", Json::Int(value)));
        self.emit("gauge", fields);
    }

    /// End-of-round summary; mirrors to stderr when progress is on.
    pub fn round_end(&self, round: usize, merges: i64, index_size: i64, open_buckets: i64) {
        if self.progress {
            eprintln!("[trace] round {round}: {merges} merges, index {index_size} pairs");
        }
        if self.sink.is_none() {
            return;
        }
        self.emit(
            "round_end",
            vec![
                ("round", Json::Int(round as i64)),
                ("merges", Json::Int(merges)),
                ("index_size", Json::Int(index_size)),
                ("open_vote_buckets", Json::Int(open_buckets)),
            ],
        );
    }

    /// End-of-run counters (deterministic totals only — host-dependent
    /// numbers belong in a [`Recorder::emit_diag`] event).
    pub fn run_end(&self, counters: &[(&str, i64)]) {
        if self.sink.is_none() {
            return;
        }
        let fields: Vec<(&str, Json)> = counters.iter().map(|&(k, v)| (k, Json::Int(v))).collect();
        self.emit("run_end", fields);
    }

    /// Wall-clock of one stage — diagnostic (host-dependent).
    pub fn timing(&self, stage: &str, round: Option<usize>, wall: Duration) {
        if self.sink.is_none() || !self.diagnostics {
            return;
        }
        let mut fields: Vec<(&str, Json)> = vec![("stage", Json::Str(stage.to_string()))];
        if let Some(r) = round {
            fields.push(("round", Json::Int(r as i64)));
        }
        fields.push(("wall_us", Json::Int(wall.as_micros() as i64)));
        self.emit_diag("timing", fields);
    }
}

/// Summary of a validated journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSummary {
    /// Total lines.
    pub lines: usize,
    /// Line counts per `"ev"` kind, sorted by kind.
    pub by_kind: BTreeMap<String, usize>,
}

impl JournalSummary {
    /// Lines of one event kind (0 when absent).
    pub fn count(&self, kind: &str) -> usize {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

/// Validates a journal: every line must parse as a JSON object with a
/// string `"ev"` key. Returns per-kind line counts.
pub fn validate(journal: &str) -> Result<JournalSummary, String> {
    let mut summary = JournalSummary {
        lines: 0,
        by_kind: BTreeMap::new(),
    };
    for (i, line) in journal.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = doc
            .get("ev")
            .ok_or_else(|| format!("line {}: missing \"ev\" key", i + 1))?
            .as_str()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        summary.lines += 1;
        *summary.by_kind.entry(kind.to_string()).or_insert(0) += 1;
    }
    Ok(summary)
}

/// The deterministic core of a journal: every line whose `"ev"` kind is
/// not diagnostic, in order. Two runs of the same dataset and config —
/// at any thread count, cache on or off — produce byte-identical views.
/// Unparseable lines are kept (validation is [`validate`]'s job).
pub fn deterministic_view(journal: &str) -> String {
    let mut out = String::new();
    for line in journal.lines() {
        let diagnostic = json::parse(line)
            .ok()
            .and_then(|doc| {
                doc.get("ev")
                    .and_then(|e| e.as_str().ok().map(String::from))
            })
            .is_some_and(|kind| DIAGNOSTIC_EVENTS.contains(&kind.as_str()));
        if !diagnostic {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Checks that the `"round"` field of every round-bearing journal line
/// never decreases *within its scope* — the invariant a
/// checkpoint-resumed progressive run must uphold (the session's round
/// counter is part of the snapshot, so a restored run continues the
/// numbering instead of restarting at 1). Lines are grouped by their
/// optional `"scope"` attribution field ([`Recorder::scoped`]): a
/// sharded service's per-shard sessions each keep an independent round
/// counter, so their interleaved lines are monotone per shard, not
/// globally. Unscoped lines form one group of their own, so
/// single-writer journals are checked exactly as before.
/// Returns the number of round-bearing lines checked; the error names
/// the first offending line. Unparseable lines are skipped (validation
/// is [`validate`]'s job). Note that a crash-*replay* journal — where
/// the writer re-executes pre-crash rounds — legitimately rewinds;
/// apply this to journals of a single resumed lineage.
pub fn check_rounds_monotonic(journal: &str) -> Result<usize, String> {
    let mut last: BTreeMap<String, i64> = BTreeMap::new();
    let mut checked = 0usize;
    for (i, line) in journal.lines().enumerate() {
        let Ok(doc) = json::parse(line) else { continue };
        let Some(round) = doc.get("round").and_then(|r| r.as_i64().ok()) else {
            continue;
        };
        let scope = doc
            .get("scope")
            .and_then(|s| s.as_str().ok())
            .unwrap_or("")
            .to_string();
        if let Some(&prev) = last.get(&scope) {
            if round < prev {
                let at = if scope.is_empty() {
                    String::new()
                } else {
                    format!(" in scope {scope:?}")
                };
                return Err(format!(
                    "line {}: round {round} after round {prev}{at}",
                    i + 1
                ));
            }
        }
        last.insert(scope, round);
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.run_start("batch", "d", 10, 0.5, 0.5);
        rec.span("verify", Some(1), &[("pairs", 3)]);
        rec.merge(1, 0, 5, 0.7, 4);
        rec.run_end(&[("merges", 1)]);
        rec.flush(); // no panic, no effect
    }

    #[test]
    fn memory_journal_round_trip() {
        let (rec, buf) = Recorder::to_memory();
        assert!(rec.enabled());
        rec.run_start("batch", "demo", 6, 0.5, 0.5);
        rec.span("index_build", None, &[("entries", 20)]);
        rec.span(
            "verify_candidates",
            Some(1),
            &[("pairs", 7), ("lookups", 42)],
        );
        rec.merge(1, 0, 5, 0.574, 4);
        rec.schema_decided(1, "S1.name", "S2.name", 0.57);
        rec.gauge("index_entries", Some(1), 18);
        rec.round_end(1, 1, 18, 2);
        rec.timing("verify_candidates", Some(1), Duration::from_micros(1234));
        rec.run_end(&[("iterations", 1), ("merges", 1)]);
        let text = buf.contents();
        let summary = validate(&text).unwrap();
        assert_eq!(summary.lines, 9);
        assert_eq!(summary.count("span"), 2);
        assert_eq!(summary.count("merge"), 1);
        assert_eq!(summary.count("timing"), 1);
        assert!(text.contains("\"ev\":\"run_start\""));
        assert!(text.contains("\"winner\":0"));
        assert!(text.contains("\"wall_us\":1234"));
    }

    #[test]
    fn deterministic_mode_drops_diagnostics_at_source() {
        let (rec, buf) = Recorder::to_memory();
        let rec = rec.deterministic();
        rec.span("verify", Some(1), &[("pairs", 3)]);
        rec.timing("verify", Some(1), Duration::from_millis(5));
        rec.emit_diag("diag", vec![("threads", Json::Int(4))]);
        let text = buf.contents();
        let summary = validate(&text).unwrap();
        assert_eq!(summary.lines, 1);
        assert_eq!(summary.count("timing"), 0);
        assert_eq!(summary.count("diag"), 0);
    }

    #[test]
    fn deterministic_view_strips_exactly_diagnostics() {
        let (rec, buf) = Recorder::to_memory();
        rec.span("verify", Some(1), &[("pairs", 3)]);
        rec.timing("verify", Some(1), Duration::from_millis(5));
        rec.emit_diag("diag", vec![("threads", Json::Int(4))]);
        rec.merge(1, 0, 2, 0.9, 1);
        let full = buf.contents();
        let core = deterministic_view(&full);
        assert_eq!(validate(&core).unwrap().lines, 2);
        assert!(!core.contains("\"ev\":\"timing\""));
        assert!(!core.contains("\"ev\":\"diag\""));
        assert!(core.contains("\"ev\":\"merge\""));
        // A second pass is a fixpoint.
        assert_eq!(deterministic_view(&core), core);
    }

    #[test]
    fn rounds_monotonic_accepts_resumed_numbering() {
        let (rec, buf) = Recorder::to_memory();
        rec.run_start("session", "d", 4, 0.5, 0.5);
        rec.span("resolve_verify", Some(1), &[("pairs", 2)]);
        rec.round_end(1, 1, 10, 0);
        rec.span("progressive", Some(1), &[("exhausted", 1)]);
        // Resumed lineage: the restored session continues at round 2.
        rec.span("resolve_verify", Some(2), &[("pairs", 1)]);
        rec.round_end(2, 0, 10, 0);
        let checked = check_rounds_monotonic(&buf.contents()).unwrap();
        assert_eq!(checked, 5);
    }

    #[test]
    fn rounds_monotonic_rejects_rewound_numbering() {
        let (rec, buf) = Recorder::to_memory();
        rec.round_end(3, 0, 10, 0);
        rec.round_end(1, 0, 10, 0); // restart-from-1 bug
        let err = check_rounds_monotonic(&buf.contents()).unwrap_err();
        assert!(err.contains("round 1 after round 3"), "{err}");
    }

    #[test]
    fn scoped_handles_stamp_and_partition_round_checks() {
        let (rec, buf) = Recorder::to_memory();
        let s0 = rec.scoped("shard0");
        let s1 = rec.scoped("shard1");
        // Interleaved per-shard counters: each shard is monotone on its
        // own, the merged journal is not globally monotone.
        s0.round_end(5, 1, 10, 0);
        s1.round_end(1, 0, 4, 0);
        s0.round_end(6, 0, 10, 0);
        s1.round_end(2, 2, 5, 0);
        let text = buf.contents();
        assert!(text.contains("\"scope\":\"shard0\""));
        assert!(text.contains("\"scope\":\"shard1\""));
        assert_eq!(check_rounds_monotonic(&text).unwrap(), 4);
        // The same interleaving without attribution is a violation.
        let unscoped = text
            .replace("\"scope\":\"shard0\",", "")
            .replace("\"scope\":\"shard1\",", "");
        let err = check_rounds_monotonic(&unscoped).unwrap_err();
        assert!(err.contains("round 1 after round 5"), "{err}");
    }

    #[test]
    fn rewind_within_one_scope_is_still_caught() {
        let (rec, buf) = Recorder::to_memory();
        let s0 = rec.scoped("shard0");
        rec.scoped("shard1").round_end(9, 0, 1, 0);
        s0.round_end(3, 0, 1, 0);
        s0.round_end(2, 0, 1, 0); // rewind inside shard0
        let err = check_rounds_monotonic(&buf.contents()).unwrap_err();
        assert!(err.contains("round 2 after round 3"), "{err}");
        assert!(err.contains("shard0"), "{err}");
    }

    #[test]
    fn unscoped_recorder_format_is_unchanged() {
        let (rec, buf) = Recorder::to_memory();
        rec.span("verify", Some(1), &[("pairs", 3)]);
        assert!(!buf.contents().contains("scope"));
    }

    #[test]
    fn rounds_monotonic_skips_roundless_lines() {
        let (rec, buf) = Recorder::to_memory();
        rec.run_start("batch", "d", 2, 0.5, 0.5);
        rec.run_end(&[("merges", 0)]);
        assert_eq!(check_rounds_monotonic(&buf.contents()).unwrap(), 0);
    }

    #[test]
    fn null_sink_encodes_and_discards() {
        let rec = Recorder::to_null();
        assert!(rec.enabled());
        rec.span("verify", Some(1), &[("pairs", 3)]);
        rec.flush();
    }

    #[test]
    fn clones_share_one_sink() {
        let (rec, buf) = Recorder::to_memory();
        let other = rec.clone();
        rec.span("a", None, &[]);
        other.span("b", None, &[]);
        assert_eq!(validate(&buf.contents()).unwrap().lines, 2);
    }

    #[test]
    fn file_sink_writes_and_flushes() {
        let path = std::env::temp_dir().join("hera_obs_test_journal.jsonl");
        let path = path.to_str().unwrap();
        let rec = Recorder::to_file(path).unwrap();
        rec.run_start("batch", "d", 1, 0.5, 0.5);
        rec.flush();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(validate(&text).unwrap().lines, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("not json\n").is_err());
        assert!(validate("{\"no_ev\":1}\n").is_err());
        assert!(validate("{\"ev\":7}\n").is_err());
        assert_eq!(validate("").unwrap().lines, 0);
    }

    // -- sink degradation ----------------------------------------------

    use hera_faults::{FaultKind, FaultPlan, FaultRule};

    fn sink_fault_on(hits: Vec<u64>) -> FaultInjector {
        FaultInjector::new(&FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: points::OBS_SINK_WRITE.into(),
                hits,
                kind: FaultKind::Error,
            }],
        })
    }

    #[test]
    fn sink_fault_degrades_with_exactly_one_notice() {
        let (rec, buf) = Recorder::to_memory();
        let rec = rec.with_faults(sink_fault_on(vec![3]));
        assert!(!rec.degraded());
        rec.span("a", None, &[]);
        rec.span("b", None, &[]);
        rec.merge(1, 0, 5, 0.7, 4); // third write: fault fires here
        rec.span("c", None, &[]); // dropped
        rec.run_end(&[("merges", 1)]); // dropped
        assert!(rec.degraded());
        let text = buf.contents();
        let summary = validate(&text).expect("degraded journal still parses");
        assert_eq!(summary.count("span"), 2, "lines before the fault survive");
        assert_eq!(summary.count("merge"), 0, "the faulted line is lost");
        assert_eq!(summary.count("sink_degraded"), 1, "exactly one notice");
        assert_eq!(summary.lines, 3);
        assert!(text.contains("\"dropped_event\":\"merge\""));
        assert!(text.contains("\"reason\":\"injected fault\""));
    }

    #[test]
    fn degraded_recorder_stays_silent_and_panic_free() {
        let (rec, buf) = Recorder::to_memory();
        let rec = rec.with_faults(sink_fault_on(vec![1]));
        rec.span("a", None, &[]);
        assert!(rec.degraded());
        for i in 0..50 {
            rec.merge(1, 0, i, 0.5, 1);
            rec.timing("x", None, Duration::from_micros(1));
        }
        rec.flush();
        let summary = validate(&buf.contents()).unwrap();
        assert_eq!(summary.lines, 1, "only the sink_degraded notice");
        assert_eq!(summary.count("sink_degraded"), 1);
    }

    #[test]
    fn empty_plan_injector_changes_nothing() {
        let (rec, buf) = Recorder::to_memory();
        let inj = FaultInjector::new(&FaultPlan::none());
        let rec = rec.with_faults(inj.clone());
        rec.span("a", None, &[]);
        rec.span("b", None, &[]);
        assert!(!rec.degraded());
        assert_eq!(validate(&buf.contents()).unwrap().lines, 2);
        assert_eq!(
            inj.hits(points::OBS_SINK_WRITE),
            2,
            "sink edge is instrumented"
        );
    }

    #[test]
    fn clones_degrade_together() {
        let (rec, buf) = Recorder::to_memory();
        let rec = rec.with_faults(sink_fault_on(vec![2]));
        let clone = rec.clone();
        rec.span("a", None, &[]);
        clone.span("b", None, &[]); // fault fires on the clone
        assert!(rec.degraded() && clone.degraded());
        rec.span("c", None, &[]);
        assert_eq!(validate(&buf.contents()).unwrap().count("span"), 1);
    }
}
