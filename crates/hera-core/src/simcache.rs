//! Merge-aware similarity memoization for the verification hot path.
//!
//! [`SimCache`] maps canonical value-label pairs `(Label, Label)` to
//! `metric.sim` results so that re-verifications across rounds (dirty
//! tracking re-verifies every touched pair after a merge) never recompute a
//! value-pair similarity they have already paid for. The cache is keyed by
//! the same labels the value-pair index uses, so it survives merges through
//! the *same* label-remap hook [`ValuePairIndex::merge`] consumes: entries
//! between the merged pair are invalidated (now intra-record), entries
//! toward third parties are re-homed under the winner rid.
//!
//! # Determinism
//!
//! The driver's parallel snapshot phase treats the cache as **read-only**:
//! workers record misses (label pair + computed sim) into a per-verification
//! [`SimDelta`] instead of writing shared state. Deltas are applied in the
//! sequential apply phase, in input order, and only for verdicts that are
//! actually used (stale verdicts are discarded together with their deltas —
//! their labels may reference pre-merge coordinates). Because every worker
//! sees the same frozen cache, each pair's hit/miss pattern — and therefore
//! every similarity ever produced — is bit-identical at every thread count.
//! Cached values are exact `metric.sim` outputs, so cache-on and cache-off
//! runs are bit-identical too.
//!
//! [`ValuePairIndex::merge`]: hera_index::ValuePairIndex::merge

use hera_types::json::Json;
use hera_types::{HeraError, Label, Result};
use rustc_hash::{FxHashMap, FxHashSet};

/// Orients a cross-record label pair canonically (smaller rid first).
#[inline]
fn canon(a: Label, b: Label) -> (Label, Label) {
    debug_assert_ne!(a.rid, b.rid, "sim cache stores cross-record pairs only");
    if a.rid < b.rid {
        (a, b)
    } else {
        (b, a)
    }
}

/// Memoized `metric.sim` results keyed by canonical value-label pairs,
/// grouped by record pair so merge maintenance mirrors the value-pair
/// index: delete the merged pair's group, re-home third-party groups
/// through the label remap.
#[derive(Debug, Default)]
pub struct SimCache {
    /// `(rid₁, rid₂)` with `rid₁ < rid₂` → canonical label pair → sim.
    groups: FxHashMap<(u32, u32), FxHashMap<(Label, Label), f64>>,
    /// rid → rids it shares a group with (for merge maintenance).
    partners: FxHashMap<u32, FxHashSet<u32>>,
    /// Total entries across all groups.
    len: usize,
    /// Entries dropped by [`SimCache::merge`] (now intra-record, or folded
    /// into an equal re-homed entry).
    invalidated: u64,
}

impl SimCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized value-pair similarities.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries invalidated by merges so far.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    /// Looks up the memoized similarity of a value-label pair (orientation
    /// insensitive).
    pub fn get(&self, a: Label, b: Label) -> Option<f64> {
        let (x, y) = canon(a, b);
        self.groups.get(&(x.rid, y.rid))?.get(&(x, y)).copied()
    }

    /// Memoizes one similarity. Overwriting an existing entry is a no-op
    /// for correctness (equal labels ⇒ equal values ⇒ equal sims) and does
    /// not grow the cache.
    pub fn insert(&mut self, a: Label, b: Label, sim: f64) {
        let (x, y) = canon(a, b);
        let key = (x.rid, y.rid);
        if self
            .groups
            .entry(key)
            .or_default()
            .insert((x, y), sim)
            .is_none()
        {
            self.len += 1;
            self.partners.entry(key.0).or_default().insert(key.1);
            self.partners.entry(key.1).or_default().insert(key.0);
        }
    }

    /// Applies the fills a worker recorded against the frozen snapshot.
    pub fn apply(&mut self, delta: &SimDelta) {
        self.apply_if(delta, |_| true);
    }

    /// Applies a snapshot delta, keeping only fills whose labels `keep`
    /// accepts. The apply phases pass `keep = "rid is still a union–find
    /// root"`: winner labels survive merges verbatim (the remap is the
    /// identity on them), so such fills are still current, while a fill
    /// naming a since-folded record would insert a label the next merge's
    /// remap has never heard of.
    pub fn apply_if(&mut self, delta: &SimDelta, keep: impl Fn(Label) -> bool) {
        for &(a, b, sim) in &delta.fills {
            if keep(a) && keep(b) {
                self.insert(a, b, sim);
            }
        }
    }

    /// Merge maintenance, mirroring [`ValuePairIndex::merge`]: records `i`
    /// and `j` merged into `k` (one of the two). The `(i, j)` group is
    /// dropped — those pairs are intra-record now — and every group toward
    /// a third party is relabeled through `remap` and re-homed under `k`.
    ///
    /// [`ValuePairIndex::merge`]: hera_index::ValuePairIndex::merge
    pub fn merge(&mut self, i: u32, j: u32, k: u32, remap: impl Fn(Label) -> Label) {
        assert!(
            k == i || k == j,
            "merge target must be one of the merged rids"
        );
        let (a, b) = if i < j { (i, j) } else { (j, i) };

        // 1. delete: entries between i and j are intra-record now.
        if let Some(gone) = self.groups.remove(&(a, b)) {
            self.len -= gone.len();
            self.invalidated += gone.len() as u64;
        }
        self.partners.entry(a).or_default().remove(&b);
        self.partners.entry(b).or_default().remove(&a);

        // 2. collect third-party partners of both rids.
        let mut affected: FxHashSet<u32> = FxHashSet::default();
        for rid in [i, j] {
            if let Some(ps) = self.partners.get(&rid) {
                affected.extend(ps.iter().copied());
            }
        }
        affected.remove(&i);
        affected.remove(&j);

        // 3. update: re-home each affected group under k, relabeling.
        for p in affected {
            let mut merged: FxHashMap<(Label, Label), f64> = FxHashMap::default();
            let mut moved = 0usize;
            for old in [i, j] {
                let key = if old < p { (old, p) } else { (p, old) };
                if let Some(entries) = self.groups.remove(&key) {
                    moved += entries.len();
                    for ((mut x, mut y), sim) in entries {
                        // Rewrite the side that belonged to old → k.
                        if x.rid == old {
                            x = remap(x);
                            debug_assert_eq!(x.rid, k, "remap must move labels to k");
                        } else {
                            y = remap(y);
                            debug_assert_eq!(y.rid, k, "remap must move labels to k");
                        }
                        let (x, y) = canon(x, y);
                        // Two old labels can fold into one (super-record
                        // value dedupe); equal labels ⇒ equal sims, keep one.
                        merged.insert((x, y), sim);
                    }
                }
                self.partners.entry(old).or_default().remove(&p);
                self.partners.entry(p).or_default().remove(&old);
            }
            if merged.is_empty() {
                continue;
            }
            self.len -= moved - merged.len();
            self.invalidated += (moved - merged.len()) as u64;
            let new_key = if k < p { (k, p) } else { (p, k) };
            // Both old groups were removed above; re-homing cannot collide
            // with an untouched group because any (k, p) group was one of
            // them (k ∈ {i, j}).
            let slot = self.groups.entry(new_key).or_default();
            debug_assert!(slot.is_empty(), "re-homed group collided");
            *slot = merged;
            self.partners.entry(k).or_default().insert(p);
            self.partners.entry(p).or_default().insert(k);
        }

        // Drop empty partner sets of the absorbed rid.
        let folded = if k == i { j } else { i };
        if self.partners.get(&folded).is_some_and(|s| s.is_empty()) {
            self.partners.remove(&folded);
        }
    }

    /// Encodes the cache as JSON: every memoized entry in sorted label
    /// order, plus the invalidation counter. Serializing the cache keeps
    /// a restored session's hit/miss history — and therefore its
    /// `RunStats` cache counters — bit-identical to an uninterrupted run.
    pub fn to_json(&self) -> Json {
        let mut entries: Vec<(&(Label, Label), &f64)> =
            self.groups.values().flat_map(|g| g.iter()).collect();
        entries.sort_unstable_by_key(|(&k, _)| k);
        Json::Obj(vec![
            ("invalidated".into(), Json::Int(self.invalidated as i64)),
            (
                "entries".into(),
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|(&(a, b), &sim)| {
                            Json::Obj(vec![
                                ("a".into(), a.to_json()),
                                ("b".into(), b.to_json()),
                                ("sim".into(), Json::Float(sim)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a cache from [`SimCache::to_json`] output.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut cache = Self::new();
        for e in json.expect("entries")?.as_arr()? {
            let a = Label::from_json(e.expect("a")?)?;
            let b = Label::from_json(e.expect("b")?)?;
            if a.rid == b.rid {
                return Err(HeraError::Corrupt(format!(
                    "sim-cache entry {a}-{b} is intra-record"
                )));
            }
            cache.insert(a, b, e.expect("sim")?.as_f64()?);
        }
        cache.invalidated = json
            .expect("invalidated")?
            .as_i64()?
            .try_into()
            .map_err(|_| HeraError::Corrupt("negative sim-cache invalidation count".into()))?;
        Ok(cache)
    }

    /// Checks internal bookkeeping (tests/debugging): `len` matches the
    /// stored entries, every entry is canonically oriented under its group
    /// key, and the partner map matches the group keys.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let mut count = 0usize;
        for (&(r1, r2), group) in &self.groups {
            if r1 >= r2 {
                return Err(format!("group key ({r1}, {r2}) not ascending"));
            }
            for &(x, y) in group.keys() {
                if (x.rid, y.rid) != (r1, r2) {
                    return Err(format!("entry ({x}, {y}) filed under ({r1}, {r2})"));
                }
            }
            count += group.len();
            let linked = self.partners.get(&r1).is_some_and(|s| s.contains(&r2))
                && self.partners.get(&r2).is_some_and(|s| s.contains(&r1));
            if !group.is_empty() && !linked {
                return Err(format!("partner map misses group ({r1}, {r2})"));
            }
        }
        if count != self.len {
            return Err(format!("len {} but {} entries stored", self.len, count));
        }
        Ok(())
    }
}

/// Per-verification record of cache traffic, produced by workers against a
/// frozen cache snapshot and applied sequentially (module docs).
#[derive(Debug, Default, Clone)]
pub struct SimDelta {
    /// Misses computed by the worker: `(label, label, sim)` to memoize.
    pub fills: Vec<(Label, Label, f64)>,
    /// Lookups answered by the snapshot.
    pub hits: u64,
    /// Lookups that fell through to the metric.
    pub misses: u64,
    /// `metric.sim` invocations (equals `misses` when the cache is on;
    /// counts every call when it is off).
    pub metric_calls: u64,
}

impl SimDelta {
    /// Resets the delta for reuse without dropping capacity.
    pub fn clear(&mut self) {
        self.fills.clear();
        self.hits = 0;
        self.misses = 0;
        self.metric_calls = 0;
    }

    /// Value-pair similarity lookups this verification performed,
    /// **identical with the cache on or off**: cache-on lookups are
    /// `hits + misses` (every miss also calls the metric, so
    /// `misses == metric_calls`); cache-off lookups all go straight to
    /// the metric (`hits = misses = 0`). The max folds both cases into
    /// one cache-invariant counter — the one journal spans report.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses.max(self.metric_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(rid: u32, fid: u32, vid: u32) -> Label {
        Label::new(rid, fid, vid)
    }

    #[test]
    fn get_is_orientation_insensitive() {
        let mut c = SimCache::new();
        c.insert(l(3, 0, 0), l(1, 2, 0), 0.7);
        assert_eq!(c.get(l(1, 2, 0), l(3, 0, 0)), Some(0.7));
        assert_eq!(c.get(l(3, 0, 0), l(1, 2, 0)), Some(0.7));
        assert_eq!(c.len(), 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut c = SimCache::new();
        c.insert(l(0, 0, 0), l(1, 0, 0), 0.5);
        c.insert(l(1, 0, 0), l(0, 0, 0), 0.5);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_drops_intra_pair_group() {
        let mut c = SimCache::new();
        c.insert(l(0, 0, 0), l(1, 0, 0), 0.9);
        c.insert(l(0, 1, 0), l(1, 1, 0), 0.8);
        c.merge(0, 1, 0, |x| x);
        assert_eq!(c.len(), 0);
        assert_eq!(c.invalidated(), 2);
        assert_eq!(c.get(l(0, 0, 0), l(1, 0, 0)), None);
        c.check_invariants().unwrap();
    }

    #[test]
    fn merge_rehomes_third_party_groups() {
        let mut c = SimCache::new();
        // 0–2 and 1–2 entries must both land under 0–2 after 0⊕1→0,
        // with 1's labels rewritten.
        c.insert(l(0, 0, 0), l(2, 0, 0), 0.6);
        c.insert(l(1, 3, 0), l(2, 0, 0), 0.4);
        c.merge(0, 1, 0, |x| {
            if x.rid == 1 {
                l(0, 5, x.vid) // pretend field 3 of r1 became field 5 of r0
            } else {
                x
            }
        });
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(l(0, 0, 0), l(2, 0, 0)), Some(0.6));
        assert_eq!(c.get(l(0, 5, 0), l(2, 0, 0)), Some(0.4));
        assert_eq!(c.get(l(1, 3, 0), l(2, 0, 0)), None);
        c.check_invariants().unwrap();
    }

    #[test]
    fn merge_dedupes_folded_labels() {
        let mut c = SimCache::new();
        // Both old entries remap to the same new label pair (value dedupe).
        c.insert(l(0, 0, 0), l(2, 0, 0), 0.6);
        c.insert(l(1, 0, 0), l(2, 0, 0), 0.6);
        c.merge(0, 1, 0, |x| if x.rid == 1 { l(0, 0, 0) } else { x });
        assert_eq!(c.len(), 1);
        assert_eq!(c.invalidated(), 1);
        assert_eq!(c.get(l(0, 0, 0), l(2, 0, 0)), Some(0.6));
        c.check_invariants().unwrap();
    }

    #[test]
    fn merge_survives_chain() {
        let mut c = SimCache::new();
        c.insert(l(0, 0, 0), l(1, 0, 0), 0.9);
        c.insert(l(0, 0, 0), l(2, 0, 0), 0.8);
        c.insert(l(1, 0, 0), l(3, 0, 0), 0.7);
        c.merge(0, 1, 0, |x| if x.rid == 1 { l(0, 6, 0) } else { x });
        c.check_invariants().unwrap();
        assert_eq!(c.get(l(0, 6, 0), l(3, 0, 0)), Some(0.7));
        c.merge(0, 2, 2, |x| {
            if x.rid == 0 {
                l(2, x.fid + 1, x.vid)
            } else {
                x
            }
        });
        c.check_invariants().unwrap();
        assert_eq!(c.get(l(2, 7, 0), l(3, 0, 0)), Some(0.7));
    }

    #[test]
    fn apply_installs_fills() {
        let mut c = SimCache::new();
        let delta = SimDelta {
            fills: vec![(l(0, 0, 0), l(1, 0, 0), 0.5), (l(0, 1, 0), l(2, 0, 0), 0.3)],
            hits: 0,
            misses: 2,
            metric_calls: 2,
        };
        c.apply(&delta);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(l(0, 1, 0), l(2, 0, 0)), Some(0.3));
        c.check_invariants().unwrap();
    }

    #[test]
    fn json_roundtrip_restores_entries_and_counter() {
        let mut c = SimCache::new();
        c.insert(l(0, 0, 0), l(1, 0, 0), 0.9);
        c.insert(l(0, 0, 0), l(2, 1, 0), 0.4);
        c.insert(l(1, 2, 0), l(3, 0, 0), 0.75);
        c.merge(0, 1, 0, |x| if x.rid == 1 { l(0, 9, x.vid) } else { x });
        let dump = c.to_json().to_string_compact();
        let back = SimCache::from_json(&hera_types::json::parse(&dump).unwrap()).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.invalidated(), c.invalidated());
        assert_eq!(back.get(l(0, 9, 0), l(3, 0, 0)), Some(0.75));
        assert_eq!(back.to_json().to_string_compact(), dump, "fixpoint");
    }

    #[test]
    fn json_rejects_intra_record_entry() {
        let json = hera_types::json::parse(
            r#"{"invalidated":0,"entries":[{"a":{"rid":1,"fid":0,"vid":0},"b":{"rid":1,"fid":1,"vid":0},"sim":0.5}]}"#,
        )
        .unwrap();
        let err = SimCache::from_json(&json).unwrap_err();
        assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
    }

    #[test]
    fn delta_clear_resets_counts() {
        let mut d = SimDelta {
            fills: vec![(l(0, 0, 0), l(1, 0, 0), 0.5)],
            hits: 3,
            misses: 1,
            metric_calls: 1,
        };
        d.clear();
        assert!(d.fills.is_empty());
        assert_eq!((d.hits, d.misses, d.metric_calls), (0, 0, 0));
    }
}
