//! The schema-based method (§IV-B): probabilistic majority voting over
//! field-matching predictions.
//!
//! Every verified-similar record pair yields field matchings; each field
//! matching predicts that its source attributes correspond. Under the
//! no-redundant-attributes assumption \[12\], a source attribute matches at
//! most one attribute of any other schema, so conflicting predictions are
//! resolved by majority vote. Theorem 2 bounds the error probability of a
//! vote over `n` trials with per-trial accuracy `p`:
//!
//! `UP_error = exp(−(n / 2p) · (p − ½)²)`
//!
//! Once `UP_error < ρ`, the winner is *decided* and injected back into
//! instance-based verification as a forced field pair.

use hera_types::json::Json;
use hera_types::{Result, SchemaId, SchemaRegistry, SourceAttrId};
use rustc_hash::FxHashMap;

/// Theorem 2's upper bound on majority-vote error probability.
///
/// With the paper's example numbers (`p = 0.8`, `n = 10`):
/// `exp(−(10/1.6)·0.09) = exp(−0.5625) ≈ 0.57`.
///
/// # Panics
/// Panics unless `0.5 < p ≤ 1` (majority voting is meaningless for
/// `p ≤ ½`).
pub fn vote_error_bound(n: u32, p: f64) -> f64 {
    assert!(
        p > 0.5 && p <= 1.0,
        "vote prior must be in (0.5, 1], got {p}"
    );
    (-(n as f64) / (2.0 * p) * (p - 0.5).powi(2)).exp()
}

/// A schema matching decided by the voter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecidedMatching {
    /// The voted-on attribute.
    pub attr: SourceAttrId,
    /// The schema the partner lives in.
    pub partner_schema: SchemaId,
    /// The decided partner attribute.
    pub partner: SourceAttrId,
    /// Confidence `1 − UP_error` at decision time.
    pub confidence: f64,
}

impl DecidedMatching {
    /// Theorem 2's error bound at decision time (`1 − confidence`).
    pub fn up_error(&self) -> f64 {
        1.0 - self.confidence
    }
}

/// Collects predictions and decides attribute matchings.
#[derive(Debug, Default)]
pub struct SchemaVoter {
    /// (attr, partner schema) → per-candidate vote counts.
    votes: FxHashMap<(SourceAttrId, SchemaId), FxHashMap<SourceAttrId, u32>>,
    /// Decided matchings, keyed like `votes`. Decisions are final.
    decided: FxHashMap<(SourceAttrId, SchemaId), DecidedMatching>,
}

impl SchemaVoter {
    /// Creates an empty voter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one field-matching prediction between source attributes of
    /// different schemas. Votes are cast symmetrically (`a` about `b`'s
    /// schema and vice versa).
    pub fn add_vote(&mut self, registry: &SchemaRegistry, a: SourceAttrId, b: SourceAttrId) {
        let (sa, sb) = (registry.attr_schema(a), registry.attr_schema(b));
        if sa == sb {
            // Same-schema predictions violate the no-redundant-attributes
            // assumption; they carry no cross-schema information.
            return;
        }
        *self.votes.entry((a, sb)).or_default().entry(b).or_insert(0) += 1;
        *self.votes.entry((b, sa)).or_default().entry(a).or_insert(0) += 1;
    }

    /// Runs the decision rule over all open votes: for each `(attr,
    /// partner-schema)` bucket with at least `min_n` trials, if the
    /// majority candidate's error bound beats `rho`, the matching is
    /// decided. Returns the newly decided matchings.
    pub fn decide(&mut self, p: f64, rho: f64, min_n: u32) -> Vec<DecidedMatching> {
        let mut fresh = Vec::new();
        for (&key, counts) in &self.votes {
            if self.decided.contains_key(&key) {
                continue;
            }
            let n: u32 = counts.values().sum();
            if n < min_n {
                continue;
            }
            let err = vote_error_bound(n, p);
            if err >= rho {
                continue;
            }
            // Majority candidate; deterministic tie-break by attr id.
            let (&winner, &wins) = counts
                .iter()
                .max_by_key(|(attr, c)| (**c, std::cmp::Reverse(attr.raw())))
                .expect("non-empty vote bucket");
            // Require a strict majority of the trials.
            if 2 * wins <= n {
                continue;
            }
            let d = DecidedMatching {
                attr: key.0,
                partner_schema: key.1,
                partner: winner,
                confidence: 1.0 - err,
            };
            self.decided.insert(key, d);
            fresh.push(d);
        }
        fresh.sort_unstable_by_key(|d| (d.attr, d.partner_schema));
        fresh
    }

    /// The decided partner of `attr` in `schema`, if any.
    pub fn decided_partner(&self, attr: SourceAttrId, schema: SchemaId) -> Option<SourceAttrId> {
        self.decided.get(&(attr, schema)).map(|d| d.partner)
    }

    /// True if `a ≈ b` has been decided in either direction.
    pub fn is_decided_pair(
        &self,
        registry: &SchemaRegistry,
        a: SourceAttrId,
        b: SourceAttrId,
    ) -> bool {
        self.decided_partner(a, registry.attr_schema(b)) == Some(b)
            || self.decided_partner(b, registry.attr_schema(a)) == Some(a)
    }

    /// All decided matchings, deterministic order.
    pub fn decided(&self) -> Vec<DecidedMatching> {
        let mut out: Vec<DecidedMatching> = self.decided.values().copied().collect();
        out.sort_unstable_by_key(|d| (d.attr, d.partner_schema));
        out
    }

    /// Encodes the voter as JSON: open vote tallies *and* decided
    /// matchings, both in sorted key order. Serializing the open votes is
    /// what makes a restored session continuation-equivalent — future
    /// decisions depend on every vote cast so far, not just on the
    /// decided set.
    pub fn to_json(&self) -> Json {
        let mut votes: Vec<_> = self.votes.iter().collect();
        votes.sort_unstable_by_key(|(&(attr, schema), _)| (attr, schema));
        let votes = votes
            .into_iter()
            .map(|(&(attr, schema), counts)| {
                let mut counts: Vec<_> = counts.iter().collect();
                counts.sort_unstable_by_key(|(&cand, _)| cand);
                Json::Obj(vec![
                    ("attr".into(), Json::Int(i64::from(attr.raw()))),
                    ("schema".into(), Json::Int(i64::from(schema.raw()))),
                    (
                        "counts".into(),
                        Json::Arr(
                            counts
                                .into_iter()
                                .map(|(&cand, &n)| {
                                    Json::Obj(vec![
                                        ("cand".into(), Json::Int(i64::from(cand.raw()))),
                                        ("n".into(), Json::Int(i64::from(n))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let mut decided: Vec<_> = self.decided.values().collect();
        decided.sort_unstable_by_key(|d| (d.attr, d.partner_schema));
        let decided = decided
            .into_iter()
            .map(|d| {
                Json::Obj(vec![
                    ("attr".into(), Json::Int(i64::from(d.attr.raw()))),
                    (
                        "partner_schema".into(),
                        Json::Int(i64::from(d.partner_schema.raw())),
                    ),
                    ("partner".into(), Json::Int(i64::from(d.partner.raw()))),
                    ("confidence".into(), Json::Float(d.confidence)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("votes".into(), Json::Arr(votes)),
            ("decided".into(), Json::Arr(decided)),
        ])
    }

    /// Decodes a voter from [`SchemaVoter::to_json`] output.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut voter = Self::default();
        for bucket in json.expect("votes")?.as_arr()? {
            let key = (
                SourceAttrId::new(bucket.expect("attr")?.as_u32()?),
                SchemaId::new(bucket.expect("schema")?.as_u32()?),
            );
            let mut counts = FxHashMap::default();
            for c in bucket.expect("counts")?.as_arr()? {
                counts.insert(
                    SourceAttrId::new(c.expect("cand")?.as_u32()?),
                    c.expect("n")?.as_u32()?,
                );
            }
            voter.votes.insert(key, counts);
        }
        for d in json.expect("decided")?.as_arr()? {
            let m = DecidedMatching {
                attr: SourceAttrId::new(d.expect("attr")?.as_u32()?),
                partner_schema: SchemaId::new(d.expect("partner_schema")?.as_u32()?),
                partner: SourceAttrId::new(d.expect("partner")?.as_u32()?),
                confidence: d.expect("confidence")?.as_f64()?,
            };
            voter.decided.insert((m.attr, m.partner_schema), m);
        }
        Ok(voter)
    }

    /// Number of open vote buckets (undecided).
    pub fn open_buckets(&self) -> usize {
        self.votes
            .keys()
            .filter(|k| !self.decided.contains_key(k))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::SchemaRegistry;

    fn registry() -> (SchemaRegistry, Vec<SourceAttrId>, Vec<SourceAttrId>) {
        let mut reg = SchemaRegistry::new();
        let s1 = reg.add_schema("S1", ["name", "mail"]);
        let s2 = reg.add_schema("S2", ["name", "mailbox"]);
        let a1: Vec<SourceAttrId> = reg.schema(s1).attrs.iter().map(|a| a.id).collect();
        let a2: Vec<SourceAttrId> = reg.schema(s2).attrs.iter().map(|a| a.id).collect();
        (reg, a1, a2)
    }

    #[test]
    fn paper_example_numbers() {
        // p = 0.8, n = 10 → UP_error ≈ 0.57 < ρ = 0.6 → decided with
        // confidence 0.43.
        let e = vote_error_bound(10, 0.8);
        assert!((e - 0.5698).abs() < 1e-3, "got {e}");
        assert!(e < 0.6);
    }

    #[test]
    fn bound_decreases_with_n() {
        let p = 0.8;
        let mut last = 1.0;
        for n in [1, 5, 10, 50, 100] {
            let e = vote_error_bound(n, p);
            assert!(e < last);
            last = e;
        }
        assert!(last < 0.01);
    }

    #[test]
    fn bound_decreases_with_p() {
        assert!(vote_error_bound(10, 0.9) < vote_error_bound(10, 0.7));
    }

    #[test]
    #[should_panic(expected = "vote prior")]
    fn coin_flip_prior_rejected() {
        vote_error_bound(10, 0.5);
    }

    #[test]
    fn majority_vote_decides() {
        let (reg, a1, a2) = registry();
        let mut voter = SchemaVoter::new();
        // name↔name seen 9 times, name↔mailbox once.
        for _ in 0..9 {
            voter.add_vote(&reg, a1[0], a2[0]);
        }
        voter.add_vote(&reg, a1[0], a2[1]);
        let fresh = voter.decide(0.8, 0.6, 3);
        // Both directions decided for name↔name; mailbox bucket (a2[1])
        // has n=1 < min_n.
        assert!(fresh.iter().any(|d| d.attr == a1[0] && d.partner == a2[0]));
        assert!(voter.is_decided_pair(&reg, a1[0], a2[0]));
        assert!(!voter.is_decided_pair(&reg, a1[0], a2[1]));
    }

    #[test]
    fn no_strict_majority_no_decision() {
        let (reg, a1, a2) = registry();
        let mut voter = SchemaVoter::new();
        for _ in 0..5 {
            voter.add_vote(&reg, a1[0], a2[0]);
            voter.add_vote(&reg, a1[0], a2[1]);
        }
        // 10 trials, 5/5 split: bound passes but no strict majority.
        let fresh = voter.decide(0.8, 0.6, 3);
        assert!(fresh.iter().all(|d| d.attr != a1[0]));
    }

    #[test]
    fn insufficient_votes_stay_open() {
        let (reg, a1, a2) = registry();
        let mut voter = SchemaVoter::new();
        voter.add_vote(&reg, a1[1], a2[1]);
        assert!(voter.decide(0.8, 0.6, 3).is_empty());
        assert_eq!(voter.open_buckets(), 2); // both directions open
    }

    #[test]
    fn decisions_are_final() {
        let (reg, a1, a2) = registry();
        let mut voter = SchemaVoter::new();
        for _ in 0..10 {
            voter.add_vote(&reg, a1[0], a2[0]);
        }
        let first = voter.decide(0.8, 0.6, 3);
        assert!(!first.is_empty());
        // Contradicting votes arrive later; the decision stands and
        // decide() does not re-emit it.
        for _ in 0..50 {
            voter.add_vote(&reg, a1[0], a2[1]);
        }
        let second = voter.decide(0.8, 0.6, 3);
        assert!(second.iter().all(|d| !(d.attr == a1[0]
            && reg.attr_schema(d.partner) == reg.attr_schema(a2[0])
            && d.partner == a2[0])));
        assert_eq!(
            voter.decided_partner(a1[0], reg.attr_schema(a2[0])),
            Some(a2[0])
        );
    }

    #[test]
    fn json_roundtrip_preserves_open_votes_and_decisions() {
        let (reg, a1, a2) = registry();
        let mut voter = SchemaVoter::new();
        for _ in 0..10 {
            voter.add_vote(&reg, a1[0], a2[0]);
        }
        voter.add_vote(&reg, a1[1], a2[1]); // stays open
        assert!(!voter.decide(0.8, 0.6, 3).is_empty());

        let dump = voter.to_json().to_string_compact();
        let mut back = SchemaVoter::from_json(&hera_types::json::parse(&dump).unwrap()).unwrap();
        assert_eq!(back.decided(), voter.decided());
        assert_eq!(back.open_buckets(), voter.open_buckets());
        assert_eq!(back.to_json().to_string_compact(), dump, "fixpoint");

        // Open votes keep accumulating after restore exactly as live.
        for v in [&mut voter, &mut back] {
            for _ in 0..9 {
                v.add_vote(&reg, a1[1], a2[1]);
            }
        }
        assert_eq!(
            back.decide(0.8, 0.6, 3),
            voter.decide(0.8, 0.6, 3),
            "continuation-equivalent decisions"
        );
    }

    #[test]
    fn same_schema_votes_ignored() {
        let (reg, a1, _) = registry();
        let mut voter = SchemaVoter::new();
        voter.add_vote(&reg, a1[0], a1[1]);
        assert_eq!(voter.open_buckets(), 0);
    }
}
