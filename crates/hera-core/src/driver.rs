//! The HERA driver — Algorithm 2 (§V).

use crate::config::HeraConfig;
use crate::simcache::SimCache;
use crate::stats::RunStats;
use crate::super_record::SuperRecord;
use crate::verify::{InstanceVerifier, VerifyScratch};
use crate::voter::{DecidedMatching, SchemaVoter};
use hera_index::{UnionFind, ValuePairIndex};
use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::{TypeDispatch, ValueSimilarity};
use hera_types::{Dataset, HeraError, Result};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;
use std::time::Instant;

/// Output of one HERA run.
#[derive(Debug, Clone)]
pub struct HeraResult {
    /// `entity_of[rid]` — the entity label of each base record: the rid of
    /// the super record it was folded into (Algorithm 2 lines 11–12).
    pub entity_of: Vec<u32>,
    /// Run counters (Table II / Fig. 10 / Fig. 12 inputs).
    pub stats: RunStats,
    /// Schema matchings decided by the schema-based method — a useful
    /// by-product ("HERA can generate some high-reliable schema
    /// matchings", §I).
    pub schema_matchings: Vec<DecidedMatching>,
}

impl HeraResult {
    /// Number of predicted entities.
    pub fn entity_count(&self) -> usize {
        let mut labels = self.entity_of.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Records grouped by predicted entity, ordered by entity label.
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        let mut by_label: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for (rid, &label) in self.entity_of.iter().enumerate() {
            by_label.entry(label).or_default().push(rid as u32);
        }
        by_label.into_values().collect()
    }

    /// True if two base records were resolved to the same entity.
    pub fn same_entity(&self, a: u32, b: u32) -> bool {
        self.entity_of[a as usize] == self.entity_of[b as usize]
    }
}

/// The Heterogeneous Entity Resolution Algorithm.
pub struct Hera {
    config: HeraConfig,
    metric: Arc<dyn ValueSimilarity>,
    recorder: hera_obs::Recorder,
}

/// Builder for [`Hera`] — the single construction path for every option
/// combination.
///
/// ```
/// use hera_core::{Hera, HeraConfig};
/// let hera = Hera::builder(HeraConfig::paper_example()).build();
/// assert_eq!(hera.config().delta, 0.5);
/// ```
pub struct HeraBuilder {
    config: HeraConfig,
    metric: Arc<dyn ValueSimilarity>,
    recorder: Option<hera_obs::Recorder>,
}

impl HeraBuilder {
    fn with_config(config: HeraConfig) -> Self {
        Self {
            config,
            metric: Arc::new(TypeDispatch::paper_default()),
            recorder: None,
        }
    }

    /// Replaces the paper-default metric stack
    /// ([`TypeDispatch::paper_default`]) with a custom black-box value
    /// similarity.
    pub fn metric(mut self, metric: Arc<dyn ValueSimilarity>) -> Self {
        self.metric = metric;
        self
    }

    /// Attaches a journal recorder; every stage of the run emits through
    /// it (see the `hera-obs` crate docs for the event schema). Defaults
    /// to [`hera_obs::Recorder::from_env`].
    pub fn recorder(mut self, recorder: hera_obs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the runner.
    pub fn build(self) -> Hera {
        Hera {
            config: self.config,
            metric: self.metric,
            recorder: self.recorder.unwrap_or_else(hera_obs::Recorder::from_env),
        }
    }
}

impl Hera {
    /// Starts building a runner; see [`HeraBuilder`].
    pub fn builder(config: HeraConfig) -> HeraBuilder {
        HeraBuilder::with_config(config)
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &HeraConfig {
        &self.config
    }

    /// Runs the similarity join that feeds the index (Algorithm 2 line 1,
    /// buildable offline per Prop. 1). The result can be shared across
    /// [`Hera::run_with_pairs`] calls — δ-sweeps reuse one join.
    pub fn join(&self, ds: &Dataset) -> Vec<hera_join::ValuePair> {
        let mut join_cfg = JoinConfig::new(self.config.xi);
        join_cfg.prefix_filter = self.config.prefix_filter;
        join_cfg.num_threads = self.config.num_threads;
        let join = SimilarityJoin::new(join_cfg, self.metric.as_ref())
            .with_recorder(self.recorder.clone());
        match &self.config.blocking {
            hera_block::BlockingScheme::None => join.join_dataset(ds),
            scheme => {
                let outcome = hera_block::Blocker::new(scheme.clone())
                    .with_recorder(self.recorder.clone())
                    .with_threads(self.config.num_threads)
                    .block(ds);
                join.join_dataset_with(ds, &hera_join::CandidateSource::Blocked(outcome.pairs))
            }
        }
    }

    /// Runs Algorithm 2 on a dataset.
    pub fn run(&self, ds: &Dataset) -> Result<HeraResult> {
        let t0 = Instant::now();
        let pairs = self.join(ds);
        let join_time = t0.elapsed();
        let mut result = self.run_with_pairs(ds, pairs)?;
        result.stats.index_build_time += join_time;
        Ok(result)
    }

    /// Runs Algorithm 2 with a precomputed similarity-join result (must
    /// come from [`Hera::join`] on the same dataset with the same ξ).
    /// Pairs naming unknown records are rejected with
    /// [`HeraError::UnknownId`]; non-normalized pairs (`a.rid >= b.rid`)
    /// with [`HeraError::InvalidConfig`].
    pub fn run_with_pairs(
        &self,
        ds: &Dataset,
        pairs: Vec<hera_join::ValuePair>,
    ) -> Result<HeraResult> {
        for p in &pairs {
            if p.a.rid as usize >= ds.len() || p.b.rid as usize >= ds.len() {
                return Err(HeraError::UnknownId(format!(
                    "value pair references record {} but the dataset has {} records",
                    p.a.rid.max(p.b.rid),
                    ds.len()
                )));
            }
            if p.a.rid >= p.b.rid {
                return Err(HeraError::InvalidConfig(format!(
                    "value pair ({}, {}) is not rid-normalized (expected a.rid < b.rid)",
                    p.a, p.b
                )));
            }
        }
        let mut stats = RunStats::default();
        let cfg = &self.config;
        let rec = &self.recorder;
        rec.run_start("batch", &ds.name, ds.len(), cfg.delta, cfg.xi);

        // ---- Line 1: build index (offline, Prop. 1).
        let t0 = Instant::now();
        let mut index = ValuePairIndex::build(pairs);
        stats.index_size = index.len();
        stats.index_build_time = t0.elapsed();
        index.record_span(rec, "index_build");
        rec.timing("index_build", None, stats.index_build_time);

        let t1 = Instant::now();
        let n = ds.len();
        let mut uf = UnionFind::new(n);
        let mut supers: FxHashMap<u32, SuperRecord> = ds
            .iter()
            .map(|r| (r.id.raw(), SuperRecord::from_record(ds, r)))
            .collect();
        let mut voter = SchemaVoter::new();
        let verifier = InstanceVerifier::new(self.metric.as_ref(), cfg.xi, cfg.use_kuhn_munkres);
        let threads = crate::parallel::effective_threads(cfg.num_threads);
        stats.threads = threads;
        // Merge-aware similarity memo cache (read-only during the parallel
        // snapshot phases; filled and invalidated in the sequential apply
        // phases, so results stay bit-identical at every thread count).
        let mut cache: Option<SimCache> = cfg.sim_cache.then(SimCache::new);
        // Scratch for the sequential re-verifications of the apply phases.
        let mut scratch = VerifyScratch::new();

        // ---- Lines 2–10: iterate until no two super records merge.
        //
        // Dirty tracking: a group whose two records did not change since
        // the last scan has unchanged bounds (its entries and both record
        // sizes are untouched), so a pair pruned or rejected once only
        // needs re-examination after one of its sides merges. The first
        // iteration scans everything; later iterations scan only groups
        // touching a record merged in the previous iteration.
        let mut dirty: Option<FxHashSet<u32>> = None;
        loop {
            if stats.iterations >= cfg.max_iterations {
                break;
            }
            stats.iterations += 1;
            let round = stats.iterations;
            let mut merged_any = false;
            let mut merged_rids: FxHashSet<u32> = FxHashSet::default();
            let round_metric_calls_before = stats.metric_sim_calls;
            let round_merges_before = stats.merges;
            let round_pruned_before = stats.pruned;

            // Candidate generation (line 3): scan every record pair that
            // shares at least one similar value. Groups snapshot — merges
            // re-home groups mid-iteration, so pairs are re-resolved
            // through union–find before use.
            let groups: Vec<(u32, u32)> = match &dirty {
                None => index.record_pairs().collect(),
                Some(d) => index
                    .record_pairs()
                    .filter(|(i, j)| d.contains(i) || d.contains(j))
                    .collect(),
            };
            let groups_scanned = groups.len();
            let mut direct: Vec<(u32, u32)> = Vec::new();
            let mut candidates: Vec<(u32, u32)> = Vec::new();
            for (i, j) in groups {
                let (si, sj) = (supers[&i].informative_size(), supers[&j].informative_size());
                let b = index.bounds(i, j, si, sj, cfg.bound_mode);
                if b.up < cfg.delta {
                    stats.pruned += 1;
                } else if b.is_exact() {
                    stats.direct_decisions += 1;
                    if b.up >= cfg.delta {
                        direct.push((i, j));
                    }
                } else {
                    candidates.push((i, j));
                }
            }
            rec.span(
                "candidates",
                Some(round),
                &[
                    ("groups", groups_scanned as i64),
                    ("pruned", (stats.pruned - round_pruned_before) as i64),
                    ("direct", direct.len() as i64),
                    ("deferred", candidates.len() as i64),
                ],
            );

            // Lines 4–5: merge the directly-decided pairs. Like the
            // candidate stage below, this runs as a parallel snapshot
            // phase (A) followed by a sequential apply phase (B): the
            // split is what keeps N-thread results bit-identical to the
            // 1-thread run — threads never influence which state a
            // verdict is computed from, only when.
            //
            // Phase A: deduplicate in pair order and verify the pairs
            // still under their original roots against the round-start
            // state. The rest fall through to the candidate stage —
            // their exact bounds are stale (the conflict-free
            // similar-field-pair argument no longer applies under merged
            // roots), so they need a full verification.
            let mut processed: FxHashSet<(u32, u32)> = FxHashSet::default();
            let mut direct_list: Vec<(u32, u32)> = Vec::new();
            for (i, j) in direct {
                let (ri, rj) = (uf.find(i), uf.find(j));
                if ri == rj {
                    continue;
                }
                let key = (ri.min(rj), ri.max(rj));
                if !processed.insert(key) {
                    continue;
                }
                if (ri, rj) == (i.min(j), i.max(j)) {
                    direct_list.push(key);
                } else {
                    candidates.push(key);
                }
            }
            let td = Instant::now();
            let direct_verifications = {
                let (index, supers, voter, cache) = (&index, &supers, &voter, &cache);
                crate::parallel::par_map_with(
                    threads,
                    &direct_list,
                    VerifyScratch::new,
                    |scratch, &(a, b)| {
                        let v = self.verify_pair(
                            &verifier,
                            index,
                            supers,
                            ds,
                            voter,
                            cache.as_ref(),
                            a,
                            b,
                            scratch,
                        );
                        (v, std::mem::take(&mut scratch.delta))
                    },
                )
            };
            let td_elapsed = td.elapsed();
            stats.verify_time += td_elapsed;
            // Per-worker aggregation: verdicts arrive in input order
            // regardless of thread count, so folding them here yields
            // one deterministic span per stage.
            let mut direct_agg = StageAgg::default();
            for (v, delta) in &direct_verifications {
                stats.simplified_nodes_sum += v.simplified_nodes;
                stats.graph_nodes_sum += v.graph_nodes;
                stats.matchings_run += 1;
                stats.record_cache_delta(delta);
                direct_agg.add(v, delta);
            }
            direct_agg.emit(rec, "verify_direct", round);
            rec.timing("verify_direct", Some(round), td_elapsed);

            // Phase B: merge in pair order. A pair re-rooted by an
            // earlier merge in this phase falls through to the candidate
            // stage; a pair whose super record grew (its root absorbed
            // another record) gets re-verified against the current state
            // so its field matching and votes are fresh.
            let mut touched: FxHashSet<u32> = FxHashSet::default();
            let mut direct_reverify = StageAgg::default();
            for (idx, &key) in direct_list.iter().enumerate() {
                // Memoize the snapshot verdict's metric calls — even when
                // the verdict itself goes stale below, its fills are exact
                // metric outputs, so the sequential re-verification can
                // reuse them. Fills naming a since-folded record are
                // filtered out (only root labels stay valid across merges).
                if let Some(c) = cache.as_mut() {
                    c.apply_if(&direct_verifications[idx].1, |l| {
                        uf.find_const(l.rid) == l.rid
                    });
                }
                let (ri, rj) = (uf.find(key.0), uf.find(key.1));
                if ri == rj {
                    continue;
                }
                let cur = (ri.min(rj), ri.max(rj));
                if cur != key {
                    if processed.insert(cur) {
                        candidates.push(cur);
                    }
                    continue;
                }
                let stale = touched.contains(&key.0) || touched.contains(&key.1);
                let reverified;
                let v = if stale {
                    let t = Instant::now();
                    reverified = self.verify_pair(
                        &verifier,
                        &index,
                        &supers,
                        ds,
                        &voter,
                        cache.as_ref(),
                        key.0,
                        key.1,
                        &mut scratch,
                    );
                    stats.verify_time += t.elapsed();
                    stats.simplified_nodes_sum += reverified.simplified_nodes;
                    stats.graph_nodes_sum += reverified.graph_nodes;
                    stats.matchings_run += 1;
                    stats.record_cache_delta(&scratch.delta);
                    direct_reverify.add(&reverified, &scratch.delta);
                    if let Some(c) = cache.as_mut() {
                        c.apply(&scratch.delta);
                    }
                    &reverified
                } else {
                    &direct_verifications[idx].0
                };
                // Directly-decided similar pairs are just as much
                // evidence for schema matchings as verified ones: the
                // schema-based method consumes every field matching of
                // a pair judged to co-refer (§IV-B).
                if cfg.schema_voting {
                    self.cast_votes(&mut voter, &supers, ds, key.0, key.1, v.predicted());
                    let fresh =
                        voter.decide(cfg.vote_prior, cfg.vote_error_threshold, cfg.vote_min_n);
                    stats.schema_matchings_decided += fresh.len();
                    self.emit_decided(ds, round, &fresh);
                }
                rec.merge(round, key.0, key.1, v.sim, v.matching.len());
                self.merge_pair(
                    &mut index,
                    &mut supers,
                    &mut uf,
                    &mut cache,
                    key.0,
                    key.1,
                    &v.matching,
                    &mut stats,
                );
                merged_any = true;
                merged_rids.insert(key.0);
                touched.insert(key.0);
                touched.insert(key.1);
            }
            rec.span(
                "apply_direct",
                Some(round),
                &[
                    ("merges", (stats.merges - round_merges_before) as i64),
                    ("reverified", direct_reverify.pairs),
                    ("lookups", direct_reverify.lookups),
                ],
            );

            // Lines 6–10: verify candidates, vote, merge — split into a
            // parallel snapshot phase (A) and a sequential apply phase
            // (B) so results are bit-identical for every thread count.
            //
            // Phase A: deduplicate candidate root-pairs in candidate
            // order (thread-count independent) and verify each against
            // the round's post-direct-phase state. Verification is
            // read-only, so the verdicts can be computed on any number
            // of workers without changing them.
            let mut verify_list: Vec<(u32, u32)> = Vec::new();
            for (i, j) in candidates {
                let (ri, rj) = (uf.find(i), uf.find(j));
                if ri == rj {
                    continue;
                }
                let key = (ri.min(rj), ri.max(rj));
                if !processed.insert(key) {
                    continue;
                }
                verify_list.push(key);
            }
            let tv = Instant::now();
            let verifications = {
                let (index, supers, voter, cache) = (&index, &supers, &voter, &cache);
                crate::parallel::par_map_with(
                    threads,
                    &verify_list,
                    VerifyScratch::new,
                    |scratch, &(a, b)| {
                        let v = self.verify_pair(
                            &verifier,
                            index,
                            supers,
                            ds,
                            voter,
                            cache.as_ref(),
                            a,
                            b,
                            scratch,
                        );
                        (v, std::mem::take(&mut scratch.delta))
                    },
                )
            };
            let tv_elapsed = tv.elapsed();
            stats.verify_time += tv_elapsed;
            let mut cand_agg = StageAgg::default();
            for (v, delta) in &verifications {
                stats.comparisons += 1;
                stats.simplified_nodes_sum += v.simplified_nodes;
                stats.graph_nodes_sum += v.graph_nodes;
                stats.matchings_run += 1;
                stats.record_cache_delta(delta);
                cand_agg.add(v, delta);
            }
            cand_agg.emit(rec, "verify_candidates", round);
            rec.timing("verify_candidates", Some(round), tv_elapsed);

            // Phase B: apply in candidate order. A merge earlier in this
            // phase can re-root or grow a super record a later snapshot
            // verdict was computed from; such stale pairs are re-verified
            // sequentially against the current state, so the decisions
            // match what a fully sequential pass would make.
            let mut touched: FxHashSet<u32> = FxHashSet::default();
            let mut cand_reverify = StageAgg::default();
            let apply_merges_before = stats.merges;
            for (idx, &key) in verify_list.iter().enumerate() {
                // Memoize this verdict's metric calls up front (filtered
                // to still-root labels) — see the direct phase above.
                if let Some(c) = cache.as_mut() {
                    c.apply_if(&verifications[idx].1, |l| uf.find_const(l.rid) == l.rid);
                }
                let (ri, rj) = (uf.find(key.0), uf.find(key.1));
                if ri == rj {
                    continue;
                }
                let cur = (ri.min(rj), ri.max(rj));
                if cur != key && !processed.insert(cur) {
                    continue;
                }
                let stale = cur != key || touched.contains(&cur.0) || touched.contains(&cur.1);
                let reverified;
                let v = if stale {
                    let t = Instant::now();
                    reverified = self.verify_pair(
                        &verifier,
                        &index,
                        &supers,
                        ds,
                        &voter,
                        cache.as_ref(),
                        cur.0,
                        cur.1,
                        &mut scratch,
                    );
                    stats.verify_time += t.elapsed();
                    stats.comparisons += 1;
                    stats.simplified_nodes_sum += reverified.simplified_nodes;
                    stats.graph_nodes_sum += reverified.graph_nodes;
                    stats.matchings_run += 1;
                    stats.record_cache_delta(&scratch.delta);
                    cand_reverify.add(&reverified, &scratch.delta);
                    if let Some(c) = cache.as_mut() {
                        c.apply(&scratch.delta);
                    }
                    &reverified
                } else {
                    &verifications[idx].0
                };
                if v.sim >= cfg.delta {
                    // Line 9: schema-based method on the new predictions.
                    if cfg.schema_voting {
                        self.cast_votes(&mut voter, &supers, ds, cur.0, cur.1, v.predicted());
                        let fresh =
                            voter.decide(cfg.vote_prior, cfg.vote_error_threshold, cfg.vote_min_n);
                        stats.schema_matchings_decided += fresh.len();
                        self.emit_decided(ds, round, &fresh);
                    }
                    // Line 10: merge.
                    rec.merge(round, cur.0, cur.1, v.sim, v.matching.len());
                    self.merge_pair(
                        &mut index,
                        &mut supers,
                        &mut uf,
                        &mut cache,
                        cur.0,
                        cur.1,
                        &v.matching,
                        &mut stats,
                    );
                    merged_any = true;
                    merged_rids.insert(cur.0);
                    touched.insert(cur.0);
                    touched.insert(cur.1);
                }
            }
            rec.span(
                "apply_candidates",
                Some(round),
                &[
                    ("merges", (stats.merges - apply_merges_before) as i64),
                    ("reverified", cand_reverify.pairs),
                    ("lookups", cand_reverify.lookups),
                ],
            );

            stats
                .metric_calls_by_round
                .push(stats.metric_sim_calls - round_metric_calls_before);
            rec.round_end(
                round,
                (stats.merges - round_merges_before) as i64,
                index.len() as i64,
                voter.open_buckets() as i64,
            );

            if cfg.validate_index {
                index.check_invariants().map_err(|e| {
                    HeraError::Corrupt(format!(
                        "index invariant broken after iteration {}: {e}",
                        stats.iterations
                    ))
                })?;
                if let Some(c) = &cache {
                    c.check_invariants().map_err(|e| {
                        HeraError::Corrupt(format!(
                            "sim-cache invariant broken after iteration {}: {e}",
                            stats.iterations
                        ))
                    })?;
                }
            }

            if !merged_any {
                break;
            }
            dirty = Some(merged_rids);
        }

        stats.final_index_size = index.len();
        if let Some(c) = &cache {
            stats.sim_cache_size = c.len();
            stats.sim_cache_invalidated = c.invalidated();
        }
        stats.resolve_time = t1.elapsed();

        rec.run_end(&[
            ("iterations", stats.iterations as i64),
            ("merges", stats.merges as i64),
            ("comparisons", stats.comparisons as i64),
            ("pruned", stats.pruned as i64),
            ("direct_decisions", stats.direct_decisions as i64),
            ("matchings_run", stats.matchings_run as i64),
            (
                "schema_matchings_decided",
                stats.schema_matchings_decided as i64,
            ),
            ("index_size", stats.index_size as i64),
            ("final_index_size", stats.final_index_size as i64),
            ("graph_nodes_sum", stats.graph_nodes_sum as i64),
            ("simplified_nodes_sum", stats.simplified_nodes_sum as i64),
            ("sim_lookups", stats.sim_lookups() as i64),
        ]);
        // Host- and configuration-dependent numbers go on a diagnostic
        // line: raw hit/miss counts differ with the cache off, thread
        // count differs per run — neither may touch the core journal.
        rec.emit_diag(
            "diag",
            vec![
                ("threads", hera_types::json::Json::Int(stats.threads as i64)),
                ("sim_cache", hera_types::json::Json::Bool(cfg.sim_cache)),
                (
                    "cache_hits",
                    hera_types::json::Json::Int(stats.sim_cache_hits as i64),
                ),
                (
                    "cache_misses",
                    hera_types::json::Json::Int(stats.sim_cache_misses as i64),
                ),
                (
                    "metric_sim_calls",
                    hera_types::json::Json::Int(stats.metric_sim_calls as i64),
                ),
                (
                    "cache_size",
                    hera_types::json::Json::Int(stats.sim_cache_size as i64),
                ),
                (
                    "cache_invalidated",
                    hera_types::json::Json::Int(stats.sim_cache_invalidated as i64),
                ),
            ],
        );
        rec.timing("resolve", None, stats.resolve_time);
        rec.timing("verify", None, stats.verify_time);
        rec.flush();

        // ---- Lines 11–12: entity labels via union–find.
        let entity_of: Vec<u32> = (0..n as u32).map(|r| uf.find(r)).collect();
        Ok(HeraResult {
            entity_of,
            stats,
            schema_matchings: voter.decided(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn verify_pair(
        &self,
        verifier: &InstanceVerifier<'_>,
        index: &ValuePairIndex,
        supers: &FxHashMap<u32, SuperRecord>,
        ds: &Dataset,
        voter: &SchemaVoter,
        cache: Option<&SimCache>,
        i: u32,
        j: u32,
        scratch: &mut VerifyScratch,
    ) -> crate::verify::Verification {
        let voter_opt = self.config.schema_voting.then_some(voter);
        verifier.verify_with(
            index,
            &supers[&i],
            &supers[&j],
            &ds.registry,
            voter_opt,
            cache,
            scratch,
        )
    }

    /// Journals freshly decided schema matchings. Name resolution only
    /// runs when a sink is attached.
    fn emit_decided(&self, ds: &Dataset, round: usize, fresh: &[DecidedMatching]) {
        if !self.recorder.enabled() || fresh.is_empty() {
            return;
        }
        for d in fresh {
            self.recorder.schema_decided(
                round,
                &ds.registry.attr_qualified_name(d.attr),
                &ds.registry.attr_qualified_name(d.partner),
                d.up_error(),
            );
        }
    }

    /// Casts schema-matching votes for every attribute pair aggregated by
    /// a predicted field matching.
    fn cast_votes(
        &self,
        voter: &mut SchemaVoter,
        supers: &FxHashMap<u32, SuperRecord>,
        ds: &Dataset,
        i: u32,
        j: u32,
        predicted: &[(u32, u32, f64)],
    ) {
        let (li, rj) = (&supers[&i], &supers[&j]);
        for &(lf, rf, _) in predicted {
            for &a in &li.fields[lf as usize].attrs {
                for &b in &rj.fields[rf as usize].attrs {
                    voter.add_vote(&ds.registry, a, b);
                }
            }
        }
    }

    /// Merges super records `i` and `j` (roots, `i < j`) using the field
    /// matching, and maintains the index (§III-B2).
    #[allow(clippy::too_many_arguments)]
    fn merge_pair(
        &self,
        index: &mut ValuePairIndex,
        supers: &mut FxHashMap<u32, SuperRecord>,
        uf: &mut UnionFind,
        cache: &mut Option<SimCache>,
        i: u32,
        j: u32,
        matching: &[(u32, u32, f64)],
        stats: &mut RunStats,
    ) {
        debug_assert!(i < j);
        let k = uf.union(i, j);
        debug_assert_eq!(k, i, "union keeps the smaller root");
        let loser = supers.remove(&j).expect("loser super record exists");
        let winner = supers.get_mut(&i).expect("winner super record exists");
        let field_matching: Vec<(u32, u32)> = matching.iter().map(|&(l, r, _)| (l, r)).collect();
        let remap = winner.absorb(&loser, &field_matching);
        index.merge(i, j, k, |l| remap.apply(l));
        // The memo cache survives the merge through the same remap: the
        // (i, j) group is invalidated, third-party groups are re-homed.
        if let Some(c) = cache.as_mut() {
            c.merge(i, j, k, |l| remap.apply(l));
        }
        stats.merges += 1;
    }
}

/// Deterministic per-stage aggregate over a list of verifications, folded
/// in input order (the `par_map_with` output order, which is independent
/// of thread count). `lookups` uses [`SimDelta::lookups`], the
/// cache-invariant counter, so the emitted span is byte-identical with
/// the similarity cache on or off.
#[derive(Debug, Default)]
pub(crate) struct StageAgg {
    pub(crate) pairs: i64,
    pub(crate) lookups: i64,
    graph_nodes: i64,
    simplified_nodes: i64,
    components: i64,
}

impl StageAgg {
    pub(crate) fn add(
        &mut self,
        v: &crate::verify::Verification,
        delta: &crate::simcache::SimDelta,
    ) {
        self.pairs += 1;
        self.lookups += delta.lookups() as i64;
        self.graph_nodes += v.graph_nodes as i64;
        self.simplified_nodes += v.simplified_nodes as i64;
        self.components += v.components as i64;
    }

    pub(crate) fn emit(&self, rec: &hera_obs::Recorder, stage: &str, round: usize) {
        rec.span(
            stage,
            Some(round),
            &[
                ("pairs", self.pairs),
                ("lookups", self.lookups),
                ("graph_nodes", self.graph_nodes),
                ("simplified_nodes", self.simplified_nodes),
                ("components", self.components),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_index::BoundMode;
    use hera_types::{motivating_example, CanonAttrId, DatasetBuilder, EntityId, Value};

    #[test]
    fn motivating_example_resolves_correctly() {
        // The paper's end-to-end walkthrough (Fig. 8): with ξ = δ = 0.5,
        // {r1, r2, r4, r6} and {r3, r5} (1-based) form the two entities.
        let ds = motivating_example();
        let result = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();
        assert_eq!(result.entity_count(), 2, "labels: {:?}", result.entity_of);
        // 0-based: {0, 1, 3, 5} and {2, 4}.
        assert!(result.same_entity(0, 1));
        assert!(result.same_entity(0, 3));
        assert!(result.same_entity(0, 5));
        assert!(result.same_entity(2, 4));
        assert!(!result.same_entity(0, 2));
        assert!(result.stats.merges == 4);
        assert!(result.stats.iterations >= 2);
    }

    #[test]
    fn high_threshold_merges_nothing_dissimilar() {
        let ds = motivating_example();
        let result = Hera::builder(HeraConfig::new(0.99, 0.9))
            .build()
            .run(&ds)
            .unwrap();
        // At δ=0.99 only near-identical records merge; r3/r5 do not.
        assert!(!result.same_entity(2, 4));
    }

    #[test]
    fn zero_iteration_on_empty_dataset() {
        let ds = DatasetBuilder::new("empty").build();
        let result = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();
        assert!(result.entity_of.is_empty());
        assert_eq!(result.entity_count(), 0);
    }

    #[test]
    fn singleton_records_stay_singletons() {
        let mut b = DatasetBuilder::new("t");
        let s = b.add_schema("S", [("x", CanonAttrId::new(0))]);
        b.add_record(s, vec![Value::from("alpha")], EntityId::new(0))
            .unwrap();
        b.add_record(s, vec![Value::from("omega")], EntityId::new(1))
            .unwrap();
        let ds = b.build();
        let result = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();
        assert_eq!(result.entity_count(), 2);
        assert_eq!(result.stats.merges, 0);
    }

    #[test]
    fn stats_are_populated() {
        let ds = motivating_example();
        let result = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();
        let s = &result.stats;
        assert!(s.index_size > 0);
        assert!(s.iterations >= 1);
        assert!(s.final_index_size <= s.index_size);
        assert!(s.merges >= s.comparisons.min(s.merges));
    }

    #[test]
    fn description_difference_needs_iterations() {
        // r1 and r2 share only "name"-ish evidence (Bush vs John — none!).
        // They can only merge after r1⊕r6 and r2⊕r4 exist. Verify the
        // run needed more than one iteration.
        let ds = motivating_example();
        let result = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();
        assert!(result.stats.iterations >= 2);
        assert!(result.same_entity(0, 1), "description difference resolved");
    }

    #[test]
    fn paper_bound_mode_also_resolves_example() {
        let ds = motivating_example();
        let cfg = HeraConfig::paper_example().with_bound_mode(BoundMode::Paper);
        let result = Hera::builder(cfg).build().run(&ds).unwrap();
        assert_eq!(result.entity_count(), 2);
    }

    #[test]
    fn greedy_matching_mode_runs() {
        let ds = motivating_example();
        let cfg = HeraConfig::paper_example().with_greedy_matching();
        let result = Hera::builder(cfg).build().run(&ds).unwrap();
        assert_eq!(result.entity_count(), 2);
    }

    #[test]
    fn voting_disabled_still_resolves_example() {
        let ds = motivating_example();
        let cfg = HeraConfig::paper_example().without_schema_voting();
        let result = Hera::builder(cfg).build().run(&ds).unwrap();
        assert_eq!(result.entity_count(), 2);
        assert!(result.schema_matchings.is_empty());
    }

    #[test]
    fn index_invariants_hold_throughout_run() {
        let ds = motivating_example();
        let cfg = HeraConfig::paper_example().with_index_validation();
        let result = Hera::builder(cfg).build().run(&ds).unwrap();
        assert_eq!(result.entity_count(), 2);
    }

    #[test]
    fn sim_cache_does_not_change_results() {
        let ds = motivating_example();
        // validate_index also exercises SimCache::check_invariants after
        // every iteration's merges.
        let on = Hera::builder(HeraConfig::paper_example().with_index_validation())
            .build()
            .run(&ds)
            .unwrap();
        let off = Hera::builder(HeraConfig::paper_example().without_sim_cache())
            .build()
            .run(&ds)
            .unwrap();
        assert_eq!(on.entity_of, off.entity_of);
        assert_eq!(on.stats.merges, off.stats.merges);
        assert_eq!(on.stats.comparisons, off.stats.comparisons);
        // The cache-off run never touches the cache…
        assert_eq!(off.stats.sim_cache_hits + off.stats.sim_cache_misses, 0);
        assert_eq!(off.stats.sim_cache_size, 0);
        // …and never calls the metric more often than the uncached run.
        assert!(on.stats.metric_sim_calls <= off.stats.metric_sim_calls);
        assert_eq!(on.stats.metric_calls_by_round.len(), on.stats.iterations);
    }

    #[test]
    fn bad_pairs_are_rejected_not_panicked() {
        use hera_types::Label;
        let ds = motivating_example();
        let hera = Hera::builder(HeraConfig::paper_example()).build();
        let out_of_range = vec![hera_join::ValuePair {
            a: Label::new(0, 0, 0),
            b: Label::new(99, 0, 0),
            sim: 1.0,
        }];
        assert!(matches!(
            hera.run_with_pairs(&ds, out_of_range),
            Err(HeraError::UnknownId(_))
        ));
        let unnormalized = vec![hera_join::ValuePair {
            a: Label::new(3, 0, 0),
            b: Label::new(1, 0, 0),
            sim: 1.0,
        }];
        assert!(matches!(
            hera.run_with_pairs(&ds, unnormalized),
            Err(HeraError::InvalidConfig(_))
        ));
    }

    #[test]
    fn clusters_partition_records() {
        let ds = motivating_example();
        let result = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();
        let clusters = result.clusters();
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, ds.len());
        let mut all: Vec<u32> = clusters.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<u32>>());
    }
}
