//! Instance-based verification (§IV-A): record similarity without schema
//! matchings.

use crate::simcache::{SimCache, SimDelta};
use crate::super_record::SuperRecord;
use crate::voter::SchemaVoter;
use hera_index::{FieldPairSim, ValuePairIndex};
use hera_matching::{
    greedy_matching_into, max_weight_matching_observed, BipartiteGraph, Edge, MatchScratch,
};
use hera_sim::ValueSimilarity;
use hera_types::{Label, SchemaRegistry};
use rustc_hash::{FxHashMap, FxHashSet};

/// Outcome of verifying one candidate record pair.
#[derive(Debug, Clone)]
pub struct Verification {
    /// `Sim(Rᵢ, Rⱼ)` per Definition 5.
    pub sim: f64,
    /// The field matching set `ℱᵢⱼ` as `(left_fid, right_fid, simf)`.
    /// One-to-one. Laid out as the forced pairs (first
    /// [`forced_count`](Self::forced_count) entries) followed by the
    /// matcher's predictions, each segment sorted by `(left, right)` —
    /// [`Verification::predicted`] is a slice into this vector, not a
    /// second allocation.
    pub matching: Vec<(u32, u32, f64)>,
    /// Nodes left after graph simplification (contributes to `m̄`).
    pub simplified_nodes: usize,
    /// Nodes of the bipartite graph *before* simplification (distinct
    /// fields covered by similar field pairs).
    pub graph_nodes: usize,
    /// Field pairs injected by decided schema matchings — the length of
    /// the forced prefix of [`matching`](Self::matching).
    pub forced_count: usize,
    /// Connected components the Kuhn–Munkres solver decomposed the
    /// simplified graph into (zero under greedy matching).
    pub components: usize,
}

impl Verification {
    /// The field pairs injected by decided schema matchings.
    pub fn forced(&self) -> &[(u32, u32, f64)] {
        &self.matching[..self.forced_count]
    }

    /// The subset of `matching` produced by the matcher (not forced) —
    /// these are the schema-matching *predictions* handed to the voter.
    pub fn predicted(&self) -> &[(u32, u32, f64)] {
        &self.matching[self.forced_count..]
    }

    /// Renders a human-readable breakdown of the decision: which fields
    /// matched, under which attributes, at what similarity — the
    /// explanation a data steward reviewing a merge wants to see.
    pub fn explain(
        &self,
        registry: &SchemaRegistry,
        left: &SuperRecord,
        right: &SuperRecord,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Sim(r{}, r{}) = {:.3} from {} matched field pair(s):",
            left.rid,
            right.rid,
            self.sim,
            self.matching.len()
        );
        let attr_names = |attrs: &[hera_types::SourceAttrId]| -> String {
            attrs
                .iter()
                .map(|&a| registry.attr_qualified_name(a))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let values = |f: &crate::super_record::Field| -> String {
            f.values
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(" / ")
        };
        for (idx, &(lf, rf, s)) in self.matching.iter().enumerate() {
            let forced = idx < self.forced_count;
            let lfield = &left.fields[lf as usize];
            let rfield = &right.fields[rf as usize];
            let _ = writeln!(
                out,
                "  {:.3}{} [{}] {:?} ≈ [{}] {:?}",
                s,
                if forced { " (schema-decided)" } else { "" },
                attr_names(&lfield.attrs),
                values(lfield),
                attr_names(&rfield.attrs),
                values(rfield),
            );
        }
        let denom = left.informative_size().min(right.informative_size()).max(1);
        let _ = writeln!(out, "  normalized by min(|R_i|, |R_j|) = {denom}");
        out
    }
}

/// Reusable per-worker buffers for [`InstanceVerifier::verify_with`]: all
/// intermediate state of one verification lives here, so the steady state
/// allocates nothing per verified pair beyond the returned
/// [`Verification::matching`] vector itself.
#[derive(Debug, Default)]
pub struct VerifyScratch {
    field_pairs: Vec<FieldPairSim>,
    sim_of: FxHashMap<(u32, u32), f64>,
    cands: Vec<(f64, u32, u32)>,
    forced: Vec<(u32, u32, f64)>,
    forced_left: FxHashSet<u32>,
    forced_right: FxHashSet<u32>,
    graph: BipartiteGraph,
    node_buf: Vec<u32>,
    edges: Vec<Edge>,
    matcher: MatchScratch,
    /// Cache traffic recorded by the last `verify_with` call: fills to
    /// apply (sequentially, if the verdict is used) plus hit/miss/metric
    /// counters. Take it with [`std::mem::take`] before the next call.
    pub delta: SimDelta,
}

impl VerifyScratch {
    /// Creates empty scratch; buffers grow to the working-set size over
    /// the first few verifications and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Verifies candidate record pairs using the value-pair index, bipartite
/// matching, and (optionally) decided schema matchings.
pub struct InstanceVerifier<'m> {
    metric: &'m dyn ValueSimilarity,
    xi: f64,
    use_kuhn_munkres: bool,
}

impl<'m> InstanceVerifier<'m> {
    /// Creates a verifier.
    pub fn new(metric: &'m dyn ValueSimilarity, xi: f64, use_kuhn_munkres: bool) -> Self {
        Self {
            metric,
            xi,
            use_kuhn_munkres,
        }
    }

    /// Computes `Sim(left, right)` (Definition 5) on fresh scratch, without
    /// memoization. Convenience wrapper over [`InstanceVerifier::verify_with`].
    pub fn verify(
        &self,
        index: &ValuePairIndex,
        left: &SuperRecord,
        right: &SuperRecord,
        registry: &SchemaRegistry,
        voter: Option<&SchemaVoter>,
    ) -> Verification {
        let mut scratch = VerifyScratch::new();
        self.verify_with(index, left, right, registry, voter, None, &mut scratch)
    }

    /// Computes `Sim(left, right)` (Definition 5).
    ///
    /// Pipeline (§IV-A): fetch the similar field pairs `𝒱′ᵢⱼ` from the
    /// index; inject decided schema matchings as *forced* field pairs
    /// ("once a matching is determined to be true … directly include the
    /// corresponding field pair into the field matching set"); solve the
    /// remaining pairs as a maximum-weight bipartite matching (after
    /// simplification + component decomposition); accumulate and normalize
    /// by `min(|Rᵢ|, |Rⱼ|)` over informative fields.
    ///
    /// `cache` is consulted read-only for `metric.sim` results on the
    /// forced-pair path; misses (and hit/miss/metric-call counts) are
    /// recorded into `scratch.delta` for the caller to apply sequentially.
    /// Cached values are exact metric outputs, so results are bit-identical
    /// with the cache on or off.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_with(
        &self,
        index: &ValuePairIndex,
        left: &SuperRecord,
        right: &SuperRecord,
        registry: &SchemaRegistry,
        voter: Option<&SchemaVoter>,
        cache: Option<&SimCache>,
        scratch: &mut VerifyScratch,
    ) -> Verification {
        scratch.delta.clear();
        index.similar_field_pairs_into(left.rid, right.rid, &mut scratch.field_pairs);

        // ---- Forced pairs from decided schema matchings.
        scratch.forced.clear();
        scratch.forced_left.clear();
        scratch.forced_right.clear();
        if let Some(voter) = voter {
            // Candidate forced pairs: any (lf, rf) whose attribute
            // provenances contain a decided pair. simf comes from the
            // index when available, else is computed directly (through
            // the memo cache when one is supplied).
            scratch.sim_of.clear();
            scratch.sim_of.extend(
                scratch
                    .field_pairs
                    .iter()
                    .map(|p| ((p.left_fid, p.right_fid), p.sim)),
            );
            scratch.cands.clear();
            for (lf, lfield) in left.fields.iter().enumerate() {
                for (rf, rfield) in right.fields.iter().enumerate() {
                    let decided = lfield.attrs.iter().any(|&a| {
                        rfield
                            .attrs
                            .iter()
                            .any(|&b| voter.is_decided_pair(registry, a, b))
                    });
                    if !decided {
                        continue;
                    }
                    let s = match scratch.sim_of.get(&(lf as u32, rf as u32)) {
                        Some(&s) => s,
                        None => self.field_sim(
                            left.rid,
                            lf as u32,
                            lfield,
                            right.rid,
                            rf as u32,
                            rfield,
                            cache,
                            &mut scratch.delta,
                        ),
                    };
                    if s > 0.0 {
                        scratch.cands.push((s, lf as u32, rf as u32));
                    }
                }
            }
            // Keep forced pairs one-to-one, heaviest first.
            scratch.cands.sort_unstable_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
            });
            for &(s, lf, rf) in scratch.cands.iter() {
                if !scratch.forced_left.contains(&lf) && !scratch.forced_right.contains(&rf) {
                    scratch.forced_left.insert(lf);
                    scratch.forced_right.insert(rf);
                    scratch.forced.push((lf, rf, s));
                }
            }
            scratch.forced.sort_unstable_by_key(|&(l, r, _)| (l, r));
        }

        // ---- Bipartite matching over the remaining similar field pairs.
        scratch.graph.clear();
        for p in &scratch.field_pairs {
            if p.sim >= self.xi
                && !scratch.forced_left.contains(&p.left_fid)
                && !scratch.forced_right.contains(&p.right_fid)
            {
                scratch.graph.add_edge(p.left_fid, p.right_fid, p.sim);
            }
        }
        scratch.graph.left_nodes_into(&mut scratch.node_buf);
        let mut graph_nodes = scratch.node_buf.len();
        scratch.graph.right_nodes_into(&mut scratch.node_buf);
        graph_nodes += scratch.node_buf.len();

        scratch.edges.clear();
        let outcome = if self.use_kuhn_munkres {
            max_weight_matching_observed(&scratch.graph, &mut scratch.matcher, &mut scratch.edges)
        } else {
            greedy_matching_into(&scratch.graph, &mut scratch.matcher, &mut scratch.edges);
            hera_matching::MatchOutcome::default()
        };
        let simplified_nodes = outcome.simplified_nodes;
        scratch.edges.sort_unstable_by_key(|e| (e.left, e.right));

        // ---- Assemble the result: one allocation, forced prefix then
        // predicted suffix; `predicted()` is a view, not a copy.
        let forced_count = scratch.forced.len();
        let mut matching: Vec<(u32, u32, f64)> =
            Vec::with_capacity(forced_count + scratch.edges.len());
        matching.extend_from_slice(&scratch.forced);
        matching.extend(scratch.edges.iter().map(|e| (e.left, e.right, e.weight)));

        let total: f64 = matching.iter().map(|&(_, _, s)| s).sum();
        let denom = left.informative_size().min(right.informative_size()).max(1) as f64;

        Verification {
            sim: total / denom,
            matching,
            simplified_nodes,
            graph_nodes,
            forced_count,
            components: outcome.components,
        }
    }

    /// Field similarity per Definition 3: max value-pair similarity.
    ///
    /// Each value pair is looked up in `cache` (when present) by its label
    /// pair before falling back to the metric; fallback results are pushed
    /// into `delta.fills` for deferred, deterministic memoization.
    #[allow(clippy::too_many_arguments)]
    fn field_sim(
        &self,
        left_rid: u32,
        left_fid: u32,
        a: &crate::super_record::Field,
        right_rid: u32,
        right_fid: u32,
        b: &crate::super_record::Field,
        cache: Option<&SimCache>,
        delta: &mut SimDelta,
    ) -> f64 {
        let mut best = 0.0f64;
        for (vai, va) in a.values.iter().enumerate() {
            for (vbi, vb) in b.values.iter().enumerate() {
                let s = match cache {
                    Some(cache) => {
                        let la = Label::new(left_rid, left_fid, vai as u32);
                        let lb = Label::new(right_rid, right_fid, vbi as u32);
                        match cache.get(la, lb) {
                            Some(s) => {
                                delta.hits += 1;
                                s
                            }
                            None => {
                                delta.misses += 1;
                                delta.metric_calls += 1;
                                let s = self.metric.sim(va, vb);
                                delta.fills.push((la, lb, s));
                                s
                            }
                        }
                    }
                    None => {
                        delta.metric_calls += 1;
                        self.metric.sim(va, vb)
                    }
                };
                if s > best {
                    best = s;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_join::{JoinConfig, SimilarityJoin};
    use hera_sim::TypeDispatch;
    use hera_types::motivating_example;

    fn setup(xi: f64) -> (hera_types::Dataset, ValuePairIndex, Vec<SuperRecord>) {
        let ds = motivating_example();
        let metric = TypeDispatch::paper_default();
        let pairs = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
        let index = ValuePairIndex::build(pairs);
        let supers: Vec<SuperRecord> = ds
            .iter()
            .map(|r| SuperRecord::from_record(&ds, r))
            .collect();
        (ds, index, supers)
    }

    #[test]
    fn example3_super_record_similarity() {
        // Build R1 = r1⊕r6 and R2 = r2⊕r4, then Sim(R1, R2) should land
        // near the paper's 0.56 (the paper's 0.37 address similarity is
        // case-sensitive; our folded metric gives 8/18 ≈ 0.444, so the
        // expected total is (0.444+1+1+1)/6 ≈ 0.574).
        let ds = motivating_example();
        let metric = TypeDispatch::paper_default();
        let mut supers: Vec<SuperRecord> = ds
            .iter()
            .map(|r| SuperRecord::from_record(&ds, r))
            .collect();
        // r1 ⊕ r6 (0-based 0, 5): name, addr, mail, Con.Type match.
        let r6 = supers[5].clone();
        let mut r1 = supers.remove(0);
        let remap16 = r1.absorb(&r6, &[(0, 0), (1, 1), (2, 2), (4, 4)]);
        // r2 ⊕ r4 (0-based 1, 3): name matches; Contact No ↔ Tel.
        let r4 = supers[2].clone(); // index shifted after remove
        let mut r2 = supers[0].clone();
        let remap24 = r2.absorb(&r4, &[(0, 0), (1, 3)]);

        // Rebuild index over the merged world.
        let join = SimilarityJoin::new(JoinConfig::new(0.35), &metric);
        let pairs = join.join_dataset(&ds);
        let mut index = ValuePairIndex::build(pairs);
        index.merge(0, 5, 0, |l| remap16.apply(l));
        index.merge(1, 3, 1, |l| remap24.apply(l));
        index.check_invariants().unwrap();

        let verifier = InstanceVerifier::new(&metric, 0.35, true);
        let v = verifier.verify(&index, &r1, &r2, &ds.registry, None);
        // Four matched field pairs, total ≈ 0.444+1+1+1 = 3.444, /6 ≈ 0.574.
        assert_eq!(v.matching.len(), 4, "matching: {:?}", v.matching);
        assert!((v.sim - 3.444 / 6.0).abs() < 0.01, "sim {}", v.sim);
    }

    #[test]
    fn identical_records_score_one() {
        use hera_types::{CanonAttrId, DatasetBuilder, EntityId, Value};
        let mut b = DatasetBuilder::new("t");
        let c = CanonAttrId::new;
        let s1 = b.add_schema("A", [("x", c(0)), ("y", c(1))]);
        let s2 = b.add_schema("B", [("x2", c(0)), ("y2", c(1))]);
        b.add_record(
            s1,
            vec![Value::from("hello world"), Value::from("goodbye")],
            EntityId::new(0),
        )
        .unwrap();
        b.add_record(
            s2,
            vec![Value::from("hello world"), Value::from("goodbye")],
            EntityId::new(0),
        )
        .unwrap();
        let ds = b.build();
        let metric = TypeDispatch::paper_default();
        let pairs = SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds);
        let index = ValuePairIndex::build(pairs);
        let supers: Vec<SuperRecord> = ds
            .iter()
            .map(|r| SuperRecord::from_record(&ds, r))
            .collect();
        let verifier = InstanceVerifier::new(&metric, 0.5, true);
        let v = verifier.verify(&index, &supers[0], &supers[1], &ds.registry, None);
        assert!((v.sim - 1.0).abs() < 1e-9);
        assert_eq!(v.matching.len(), 2);
    }

    #[test]
    fn disjoint_records_score_zero() {
        let (ds, index, supers) = setup(0.5);
        let metric = TypeDispatch::paper_default();
        let verifier = InstanceVerifier::new(&metric, 0.5, true);
        // r1 (0) and r3 (2) share nothing at ξ = 0.5.
        let v = verifier.verify(&index, &supers[0], &supers[2], &ds.registry, None);
        assert_eq!(v.sim, 0.0);
        assert!(v.matching.is_empty());
    }

    #[test]
    fn forced_matching_overrides_matcher() {
        let (ds, index, supers) = setup(0.5);
        let metric = TypeDispatch::paper_default();
        let verifier = InstanceVerifier::new(&metric, 0.5, true);

        // Decide Customer I.name ≈ Customer III.name via the voter.
        let name1 = ds.attr_of_field(hera_types::RecordId::new(0), 0);
        let name3 = ds.attr_of_field(hera_types::RecordId::new(5), 0);
        let mut voter = SchemaVoter::new();
        for _ in 0..20 {
            voter.add_vote(&ds.registry, name1, name3);
        }
        assert!(!voter.decide(0.8, 0.6, 3).is_empty());

        // r1 vs r6 with the forced pair: the name fields are pinned.
        let v = verifier.verify(&index, &supers[0], &supers[5], &ds.registry, Some(&voter));
        assert!(v.forced_count >= 1);
        assert!(v.matching.iter().any(|&(l, r, _)| l == 0 && r == 0));
        // Forced pairs are not re-predicted, and forced() holds them.
        assert!(v.predicted().iter().all(|&(l, r, _)| !(l == 0 && r == 0)));
        assert!(v.forced().iter().any(|&(l, r, _)| l == 0 && r == 0));
        assert_eq!(v.forced().len() + v.predicted().len(), v.matching.len());
        // Similarity unchanged vs the unforced run (the matcher would have
        // picked name↔name anyway).
        let v0 = verifier.verify(&index, &supers[0], &supers[5], &ds.registry, None);
        assert!((v.sim - v0.sim).abs() < 1e-9);
    }

    #[test]
    fn cached_verify_is_bit_identical_and_hits() {
        let (ds, index, supers) = setup(0.5);
        let metric = TypeDispatch::paper_default();
        let verifier = InstanceVerifier::new(&metric, 0.5, true);

        // Force the voter path so field_sim actually runs (index pairs at
        // ξ=0.5 miss the dissimilar cross products).
        let name1 = ds.attr_of_field(hera_types::RecordId::new(0), 0);
        let name3 = ds.attr_of_field(hera_types::RecordId::new(5), 0);
        let mut voter = SchemaVoter::new();
        for _ in 0..20 {
            voter.add_vote(&ds.registry, name1, name3);
        }
        assert!(!voter.decide(0.8, 0.6, 3).is_empty());

        let mut scratch = VerifyScratch::new();
        let mut cache = SimCache::new();

        let plain = verifier.verify(&index, &supers[0], &supers[5], &ds.registry, Some(&voter));
        let first = verifier.verify_with(
            &index,
            &supers[0],
            &supers[5],
            &ds.registry,
            Some(&voter),
            Some(&cache),
            &mut scratch,
        );
        assert_eq!(plain.sim.to_bits(), first.sim.to_bits());
        assert_eq!(plain.matching, first.matching);
        let first_misses = scratch.delta.misses;
        cache.apply(&scratch.delta);
        cache.check_invariants().unwrap();

        let second = verifier.verify_with(
            &index,
            &supers[0],
            &supers[5],
            &ds.registry,
            Some(&voter),
            Some(&cache),
            &mut scratch,
        );
        assert_eq!(first.sim.to_bits(), second.sim.to_bits());
        assert_eq!(first.matching, second.matching);
        assert_eq!(scratch.delta.misses, 0, "second pass must be all hits");
        assert_eq!(scratch.delta.hits, first_misses);
        assert_eq!(scratch.delta.metric_calls, 0);
    }

    #[test]
    fn scratch_reuse_across_pairs_is_clean() {
        let (ds, index, supers) = setup(0.5);
        let metric = TypeDispatch::paper_default();
        let verifier = InstanceVerifier::new(&metric, 0.5, true);
        let mut scratch = VerifyScratch::new();
        // Drive one scratch across every record pair and compare against
        // fresh-scratch verification.
        for i in 0..supers.len() {
            for j in (i + 1)..supers.len() {
                let reused = verifier.verify_with(
                    &index,
                    &supers[i],
                    &supers[j],
                    &ds.registry,
                    None,
                    None,
                    &mut scratch,
                );
                let fresh = verifier.verify(&index, &supers[i], &supers[j], &ds.registry, None);
                assert_eq!(fresh.sim.to_bits(), reused.sim.to_bits(), "pair {i},{j}");
                assert_eq!(fresh.matching, reused.matching, "pair {i},{j}");
                assert_eq!(fresh.graph_nodes, reused.graph_nodes);
                assert_eq!(fresh.simplified_nodes, reused.simplified_nodes);
            }
        }
    }

    #[test]
    fn explain_is_readable() {
        let (ds, index, supers) = setup(0.5);
        let metric = TypeDispatch::paper_default();
        let verifier = InstanceVerifier::new(&metric, 0.5, true);
        // r4 vs r6 (0-based 3, 5): three strong matches.
        let v = verifier.verify(&index, &supers[3], &supers[5], &ds.registry, None);
        let text = v.explain(&ds.registry, &supers[3], &supers[5]);
        assert!(text.contains("Sim(r3, r5)"), "{text}");
        assert!(text.contains("Customer III.work mailbox"), "{text}");
        assert!(text.contains("bush@gmail"), "{text}");
        assert!(text.contains("normalized by"), "{text}");
    }

    #[test]
    fn greedy_mode_runs() {
        let (ds, index, supers) = setup(0.5);
        let metric = TypeDispatch::paper_default();
        let km = InstanceVerifier::new(&metric, 0.5, true);
        let gr = InstanceVerifier::new(&metric, 0.5, false);
        let a = km.verify(&index, &supers[3], &supers[5], &ds.registry, None);
        let b = gr.verify(&index, &supers[3], &supers[5], &ds.registry, None);
        // Greedy never beats KM.
        assert!(b.sim <= a.sim + 1e-9);
        assert!(a.sim > 0.5); // r4 and r6 share three strong fields
    }
}
