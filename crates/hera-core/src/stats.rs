//! Run statistics — the counters behind Table II, Fig. 10, and Fig. 12.

use hera_types::json::Json;
use hera_types::Result;
use std::time::Duration;

/// Counters and timings collected during one [`Hera`](crate::Hera) run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Compare-and-merge iterations executed (`k` of Table II).
    pub iterations: usize,
    /// Initial index size `|𝒱|` (`|S|` of Table II).
    pub index_size: usize,
    /// Index size remaining when the run stopped.
    pub final_index_size: usize,
    /// Record pairs whose upper bound pruned them (`Up < δ`).
    pub pruned: usize,
    /// Record pairs decided directly from the index (`Up = Low`),
    /// similar *and* dissimilar.
    pub direct_decisions: usize,
    /// Full verifications executed (the "comparisons" of Fig. 10).
    pub comparisons: usize,
    /// Merges performed.
    pub merges: usize,
    /// Sum of simplified-bipartite-graph node counts over all
    /// Kuhn–Munkres invocations (for `m̄`).
    pub simplified_nodes_sum: usize,
    /// Sum of pre-simplification graph node counts (how big the field
    /// matching problems were before Theorem-1 peeling).
    pub graph_nodes_sum: usize,
    /// Number of Kuhn–Munkres invocations.
    pub matchings_run: usize,
    /// Schema matchings decided by the voter.
    pub schema_matchings_decided: usize,
    /// Wall-clock time spent building the index (similarity join
    /// included).
    pub index_build_time: Duration,
    /// Wall-clock time of the iterative phase.
    pub resolve_time: Duration,
    /// Wall-clock time spent verifying candidate pairs (the parallel
    /// snapshot phase plus sequential re-verifications; a subset of
    /// [`RunStats::resolve_time`]).
    pub verify_time: Duration,
    /// Worker threads used by the parallel stages.
    pub threads: usize,
    /// Similarity-cache lookups answered from the cache.
    pub sim_cache_hits: u64,
    /// Similarity-cache lookups that fell through to the metric.
    pub sim_cache_misses: u64,
    /// Cache entries invalidated or folded by merge maintenance.
    pub sim_cache_invalidated: u64,
    /// Entries held by the cache when the run finished.
    pub sim_cache_size: usize,
    /// Total `metric.sim` invocations on the verification path.
    pub metric_sim_calls: u64,
    /// `metric.sim` invocations per compare-and-merge iteration — with
    /// the cache on, this should fall across rounds as re-verifications
    /// hit memoized value pairs.
    pub metric_calls_by_round: Vec<u64>,
}

impl RunStats {
    /// Average simplified-graph size `m̄` (Table II). Zero when no
    /// matching ran.
    pub fn avg_simplified_nodes(&self) -> f64 {
        if self.matchings_run == 0 {
            0.0
        } else {
            self.simplified_nodes_sum as f64 / self.matchings_run as f64
        }
    }

    /// Average pre-simplification graph size (companion to
    /// [`RunStats::avg_simplified_nodes`]; the gap between the two is the
    /// Theorem-1 peeling payoff).
    pub fn avg_graph_nodes(&self) -> f64 {
        if self.matchings_run == 0 {
            0.0
        } else {
            self.graph_nodes_sum as f64 / self.matchings_run as f64
        }
    }

    /// Total wall-clock time (Fig. 12's metric).
    pub fn total_time(&self) -> Duration {
        self.index_build_time + self.resolve_time
    }

    /// Candidate-verification throughput: verified record pairs per
    /// second of [`RunStats::verify_time`]. Zero when nothing ran.
    pub fn verify_pairs_per_sec(&self) -> f64 {
        let secs = self.verify_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.comparisons as f64 / secs
        }
    }

    /// Fraction of similarity-cache lookups answered from the cache.
    /// Zero when no lookup happened (cache off or no forced-pair work).
    pub fn sim_cache_hit_rate(&self) -> f64 {
        let total = self.sim_cache_hits + self.sim_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.sim_cache_hits as f64 / total as f64
        }
    }

    /// Folds one verification's cache traffic into the counters.
    pub fn record_cache_delta(&mut self, delta: &crate::simcache::SimDelta) {
        self.sim_cache_hits += delta.hits;
        self.sim_cache_misses += delta.misses;
        self.metric_sim_calls += delta.metric_calls;
    }

    /// Index-construction throughput: indexed value pairs per second of
    /// [`RunStats::index_build_time`]. Zero when nothing ran.
    pub fn index_pairs_per_sec(&self) -> f64 {
        let secs = self.index_build_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.index_size as f64 / secs
        }
    }

    /// Cache-invariant count of value-pair similarity lookups on the
    /// verification path. With the cache on every lookup is a hit or a
    /// miss (`metric_sim_calls == sim_cache_misses`); with it off every
    /// lookup calls the metric directly (`hits = misses = 0`). The max
    /// folds both cases so the figure matches across cache modes — it is
    /// the number journal spans report.
    pub fn sim_lookups(&self) -> u64 {
        self.sim_cache_hits + self.sim_cache_misses.max(self.metric_sim_calls)
    }

    /// Encodes the counters as JSON. Durations are stored as integer
    /// microseconds; every other field is an exact integer, so the
    /// deterministic counters roundtrip bit-identically.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("iterations".into(), Json::Int(self.iterations as i64)),
            ("index_size".into(), Json::Int(self.index_size as i64)),
            (
                "final_index_size".into(),
                Json::Int(self.final_index_size as i64),
            ),
            ("pruned".into(), Json::Int(self.pruned as i64)),
            (
                "direct_decisions".into(),
                Json::Int(self.direct_decisions as i64),
            ),
            ("comparisons".into(), Json::Int(self.comparisons as i64)),
            ("merges".into(), Json::Int(self.merges as i64)),
            (
                "simplified_nodes_sum".into(),
                Json::Int(self.simplified_nodes_sum as i64),
            ),
            (
                "graph_nodes_sum".into(),
                Json::Int(self.graph_nodes_sum as i64),
            ),
            ("matchings_run".into(), Json::Int(self.matchings_run as i64)),
            (
                "schema_matchings_decided".into(),
                Json::Int(self.schema_matchings_decided as i64),
            ),
            (
                "index_build_us".into(),
                Json::Int(self.index_build_time.as_micros() as i64),
            ),
            (
                "resolve_us".into(),
                Json::Int(self.resolve_time.as_micros() as i64),
            ),
            (
                "verify_us".into(),
                Json::Int(self.verify_time.as_micros() as i64),
            ),
            ("threads".into(), Json::Int(self.threads as i64)),
            (
                "sim_cache_hits".into(),
                Json::Int(self.sim_cache_hits as i64),
            ),
            (
                "sim_cache_misses".into(),
                Json::Int(self.sim_cache_misses as i64),
            ),
            (
                "sim_cache_invalidated".into(),
                Json::Int(self.sim_cache_invalidated as i64),
            ),
            (
                "sim_cache_size".into(),
                Json::Int(self.sim_cache_size as i64),
            ),
            (
                "metric_sim_calls".into(),
                Json::Int(self.metric_sim_calls as i64),
            ),
            (
                "metric_calls_by_round".into(),
                Json::Arr(
                    self.metric_calls_by_round
                        .iter()
                        .map(|&c| Json::Int(c as i64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes counters from [`RunStats::to_json`] output.
    pub fn from_json(json: &Json) -> Result<Self> {
        let usize_of =
            |key: &str| -> Result<usize> { Ok(json.expect(key)?.as_i64()?.max(0) as usize) };
        let u64_of = |key: &str| -> Result<u64> { Ok(json.expect(key)?.as_i64()?.max(0) as u64) };
        let dur_of = |key: &str| -> Result<Duration> { Ok(Duration::from_micros(u64_of(key)?)) };
        let mut metric_calls_by_round = Vec::new();
        for c in json.expect("metric_calls_by_round")?.as_arr()? {
            metric_calls_by_round.push(c.as_i64()?.max(0) as u64);
        }
        Ok(Self {
            iterations: usize_of("iterations")?,
            index_size: usize_of("index_size")?,
            final_index_size: usize_of("final_index_size")?,
            pruned: usize_of("pruned")?,
            direct_decisions: usize_of("direct_decisions")?,
            comparisons: usize_of("comparisons")?,
            merges: usize_of("merges")?,
            simplified_nodes_sum: usize_of("simplified_nodes_sum")?,
            graph_nodes_sum: usize_of("graph_nodes_sum")?,
            matchings_run: usize_of("matchings_run")?,
            schema_matchings_decided: usize_of("schema_matchings_decided")?,
            index_build_time: dur_of("index_build_us")?,
            resolve_time: dur_of("resolve_us")?,
            verify_time: dur_of("verify_us")?,
            threads: usize_of("threads")?,
            sim_cache_hits: u64_of("sim_cache_hits")?,
            sim_cache_misses: u64_of("sim_cache_misses")?,
            sim_cache_invalidated: u64_of("sim_cache_invalidated")?,
            sim_cache_size: usize_of("sim_cache_size")?,
            metric_sim_calls: u64_of("metric_sim_calls")?,
            metric_calls_by_round,
        })
    }

    /// Checks the internal-consistency invariants the observability layer
    /// relies on. Returns a description of the first violated invariant.
    ///
    /// Invariants (for a finished run):
    /// - cache on: every metric call is a recorded cache miss;
    ///   cache off: no cache traffic and no retained entries
    /// - `metric_calls_by_round` partitions `metric_sim_calls`
    /// - one per-round entry per iteration
    /// - verify time is a subset of resolve time
    /// - every comparison runs at least one matching
    pub fn check_consistency(&self, cache_enabled: bool) -> std::result::Result<(), String> {
        if cache_enabled {
            if self.metric_sim_calls != self.sim_cache_misses {
                return Err(format!(
                    "cache on: metric_sim_calls ({}) != sim_cache_misses ({})",
                    self.metric_sim_calls, self.sim_cache_misses
                ));
            }
        } else {
            if self.sim_cache_hits != 0 || self.sim_cache_misses != 0 {
                return Err(format!(
                    "cache off: recorded cache traffic (hits {}, misses {})",
                    self.sim_cache_hits, self.sim_cache_misses
                ));
            }
            if self.sim_cache_size != 0 {
                return Err(format!(
                    "cache off: cache retained {} entries",
                    self.sim_cache_size
                ));
            }
        }
        let by_round: u64 = self.metric_calls_by_round.iter().sum();
        if by_round != self.metric_sim_calls {
            return Err(format!(
                "metric_calls_by_round sums to {by_round}, metric_sim_calls is {}",
                self.metric_sim_calls
            ));
        }
        if self.iterations != self.metric_calls_by_round.len() {
            return Err(format!(
                "iterations ({}) != metric_calls_by_round.len() ({})",
                self.iterations,
                self.metric_calls_by_round.len()
            ));
        }
        if self.verify_time > self.resolve_time {
            return Err(format!(
                "verify_time ({:?}) exceeds resolve_time ({:?})",
                self.verify_time, self.resolve_time
            ));
        }
        if self.matchings_run < self.comparisons {
            return Err(format!(
                "matchings_run ({}) < comparisons ({})",
                self.matchings_run, self.comparisons
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_simplified_nodes() {
        let mut s = RunStats::default();
        assert_eq!(s.avg_simplified_nodes(), 0.0);
        s.simplified_nodes_sum = 24;
        s.matchings_run = 3;
        assert!((s.avg_simplified_nodes() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn total_time_sums() {
        let s = RunStats {
            index_build_time: Duration::from_millis(30),
            resolve_time: Duration::from_millis(70),
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(100));
    }

    #[test]
    fn cache_hit_rate() {
        let mut s = RunStats::default();
        assert_eq!(s.sim_cache_hit_rate(), 0.0);
        s.record_cache_delta(&crate::simcache::SimDelta {
            fills: Vec::new(),
            hits: 3,
            misses: 1,
            metric_calls: 1,
        });
        assert!((s.sim_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.metric_sim_calls, 1);
    }

    #[test]
    fn json_roundtrip_preserves_counters() {
        let s = RunStats {
            iterations: 3,
            index_size: 120,
            final_index_size: 90,
            pruned: 14,
            comparisons: 33,
            merges: 7,
            matchings_run: 40,
            threads: 4,
            sim_cache_hits: 21,
            sim_cache_misses: 19,
            sim_cache_invalidated: 2,
            sim_cache_size: 17,
            metric_sim_calls: 19,
            metric_calls_by_round: vec![10, 6, 3],
            index_build_time: Duration::from_micros(1234),
            resolve_time: Duration::from_micros(5678),
            verify_time: Duration::from_micros(345),
            ..Default::default()
        };
        let dump = s.to_json().to_string_compact();
        let back = RunStats::from_json(&hera_types::json::parse(&dump).unwrap()).unwrap();
        assert_eq!(back.to_json().to_string_compact(), dump);
        assert_eq!(back.merges, 7);
        assert_eq!(back.metric_calls_by_round, vec![10, 6, 3]);
        assert_eq!(back.resolve_time, Duration::from_micros(5678));
        back.check_consistency(true).unwrap();
    }

    #[test]
    fn throughput_helpers() {
        let s = RunStats::default();
        assert_eq!(s.verify_pairs_per_sec(), 0.0);
        assert_eq!(s.index_pairs_per_sec(), 0.0);
        let s = RunStats {
            comparisons: 500,
            verify_time: Duration::from_millis(250),
            index_size: 1_000,
            index_build_time: Duration::from_millis(100),
            ..Default::default()
        };
        assert!((s.verify_pairs_per_sec() - 2_000.0).abs() < 1e-9);
        assert!((s.index_pairs_per_sec() - 10_000.0).abs() < 1e-9);
    }
}
