//! Streaming (incremental) entity resolution — HERA beyond the batch
//! Algorithm 2.
//!
//! The paper's framework is batch: build the index offline, iterate to a
//! fixpoint. Real heterogeneous sources *stream* — new exports arrive and
//! should resolve against everything already known without recomputing
//! from scratch. [`HeraSession`] maintains the algorithm's entire state
//! (incremental similarity join, value-pair index, super records,
//! union–find, schema voter) under record insertions:
//!
//! * [`HeraSession::add_record`] joins the new record's values against
//!   every live value, extends the index, and lifts the record into a
//!   super record;
//! * [`HeraSession::resolve`] runs compare-and-merge to a fixpoint, but
//!   only over groups touching records that changed since the last call
//!   (the same dirty-tracking argument the batch driver uses);
//! * decided schema matchings persist across insertions, so the session
//!   gets *better* at matching heterogeneous schemas as it ages — the
//!   schema-based method's intended long-run behavior.

use crate::config::HeraConfig;
use crate::simcache::SimCache;
use crate::stats::RunStats;
use crate::super_record::SuperRecord;
use crate::verify::{InstanceVerifier, VerifyScratch};
use crate::voter::{DecidedMatching, SchemaVoter};
use hera_block::StreamingBlocker;
use hera_faults::{io_retryable, BackoffPolicy, Clock, FaultInjector, SystemClock};
use hera_index::{UnionFind, ValuePairIndex};
use hera_join::IncrementalJoin;
use hera_sim::{TypeDispatch, ValueSimilarity};
use hera_store::Snapshot;
use hera_types::json::Json;
use hera_types::{HeraError, Label, RecordId, Result, SchemaId, SchemaRegistry, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Verification cap per resolve round (see
/// [`HeraSession::resolve_progressive`]): small enough that a big
/// cluster coalesces across rounds instead of burning Θ(k²) snapshot
/// verifications before its first super-record pair forms, large enough
/// that the parallel verify phase still amortizes its fan-out. Part of
/// the deterministic schedule — never derived from the budget.
const ROUND_CHUNK: usize = 64;

/// Relative priority floor for one resolve round: candidates below
/// `ROUND_FOCUS ×` the round's top priority wait for a later round even
/// when the matching has slots left. Without it every round *fills* with
/// low-value pairs — a k-record cluster contributes at most ⌊k/2⌋
/// disjoint pairs per round, so the filler burns most of the budget
/// while the top cluster crawls through its ~log k coalescence levels.
/// Deferral is free (deferred pairs stay unverified on the frontier), so
/// focusing a round only re-orders spending toward the highest expected
/// value. Like [`ROUND_CHUNK`], a pure function of the ranked list —
/// never of the budget.
const ROUND_FOCUS: f64 = 0.5;

/// Budget for one [`HeraSession::resolve_progressive`] call, in
/// verification comparisons, applied merges, and/or wall-clock time.
/// `None` on an axis means unlimited; the default is unlimited on all —
/// equivalent to [`HeraSession::resolve`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveBudget {
    /// Maximum pair verifications (snapshot + stale re-verifications)
    /// this call may spend.
    pub comparisons: Option<u64>,
    /// Maximum merges this call may apply.
    pub merges: Option<u64>,
    /// Maximum wall-clock time this call may spend. Unlike the two
    /// deterministic axes, a wall-clock cut is **best-effort, not
    /// bit-exact**: the schedule is still the same deterministic
    /// priority order, but *where* it is cut depends on host timing, so
    /// two runs with the same wall-clock budget may stop at different
    /// prefixes of it. The cut is enforced at round boundaries plus a
    /// per-round cap predicted by the session's verify cost model
    /// ([`HeraSession::per_comparison_cost`]); a call can therefore
    /// overshoot by roughly one round of verifications while the model
    /// warms up.
    pub wall_clock: Option<Duration>,
}

impl ResolveBudget {
    /// No limit on any axis: runs to the fixpoint, exactly like
    /// [`HeraSession::resolve`].
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit on verification comparisons only.
    pub fn comparisons(n: u64) -> Self {
        Self {
            comparisons: Some(n),
            ..Self::default()
        }
    }

    /// Limit on applied merges only.
    pub fn merges(n: u64) -> Self {
        Self {
            merges: Some(n),
            ..Self::default()
        }
    }

    /// Limit on wall-clock time only (best-effort; see
    /// [`ResolveBudget::wall_clock`] for the exactness caveat).
    pub fn wall_clock(d: Duration) -> Self {
        Self {
            wall_clock: Some(d),
            ..Self::default()
        }
    }

    /// Adds a merge limit to an existing budget.
    pub fn with_merges(mut self, n: u64) -> Self {
        self.merges = Some(n);
        self
    }

    /// Adds a wall-clock limit to an existing budget (best-effort; see
    /// [`ResolveBudget::wall_clock`] for the exactness caveat).
    pub fn with_wall_clock(mut self, d: Duration) -> Self {
        self.wall_clock = Some(d);
        self
    }

    /// True when any axis is limited.
    pub fn is_bounded(&self) -> bool {
        self.comparisons.is_some() || self.merges.is_some() || self.wall_clock.is_some()
    }
}

/// One applied merge, streamed by [`HeraSession::resolve_stream`] /
/// [`HeraSession::resolve_progressive_with`] as it happens. Events come
/// out in schedule order — the same confidence-ranked order a budgeted
/// [`HeraSession::resolve_progressive`] spends its budget in — so a
/// consumer that stops listening after `k` events has seen exactly the
/// merges a merge budget of `k` would have applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeEvent {
    /// Root record id that absorbed the loser (the surviving entity
    /// label).
    pub winner: u32,
    /// Root record id folded into the winner.
    pub loser: u32,
    /// Record-level similarity of the merged pair (the verifier's
    /// matching score; always ≥ the session's δ).
    pub confidence: f64,
    /// Cumulative comparisons spent by this call when the event was
    /// emitted — the x-axis of a progressive-recall curve.
    pub comparisons_spent: u64,
}

/// What one [`HeraSession::resolve_progressive`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressiveReport {
    /// Merges applied during this call.
    pub merges: usize,
    /// Comparisons (pair verifications) spent during this call.
    pub comparisons_spent: u64,
    /// Of `comparisons_spent`, verifications whose merge verdict could
    /// not be applied because the merge budget ran out mid-round: the
    /// pairs return to the frontier and a following call re-verifies
    /// them. Non-zero only on `exhausted` runs that bound both axes.
    pub comparisons_deferred: u64,
    /// Union–find roots still marked dirty when the call returned — a
    /// free proxy for remaining work, 0 exactly when the fixpoint was
    /// reached. For the exact count of ranked candidate pairs the next
    /// call will drain, ask [`HeraSession::frontier_len`] (an
    /// O(index-scan) computation this report deliberately skips).
    pub frontier: usize,
    /// True when the call stopped short of the fixpoint — a budget ran
    /// out, or the `HeraConfig::max_iterations` round cap ended the
    /// call with frontier work remaining. The session state is a clean
    /// boundary: checkpoint it and a restored session continues exactly
    /// where this call stopped.
    pub exhausted: bool,
}

/// Per-call state of a progressive resolve, threaded between rounds by
/// the callback ([`HeraSession::resolve_progressive_with`]) and
/// iterator ([`HeraSession::resolve_stream`]) frontends. Holds exactly
/// the locals the old monolithic loop kept on its stack, so splitting
/// the loop into resumable rounds cannot change the schedule.
struct ProgressiveState {
    report: ProgressiveReport,
    /// Rounds run by this call (bounded by `HeraConfig::max_iterations`).
    iterations: usize,
    /// Root pairs already verified this call whose evidence is
    /// unchanged (neither side merged since, no new schema matchings
    /// decided): a deferral that re-dirties a shared root must not
    /// re-verify them — the verdict is a pure function of the two
    /// super records (plus the voter's decided matchings), so it
    /// would come out identical and only waste budget. Each entry is
    /// stamped with both roots' merge epochs and the voter epoch at
    /// decision time; a merge bumps the winning root's epoch (and,
    /// when it decides fresh schema matchings, the voter epoch), so
    /// an entry whose evidence changed reads as stale and the pair
    /// is re-verified — an emergent merge (super[a] absorbing b
    /// makes a∪b match a previously-rejected c) is never skipped.
    decided: FxHashMap<(u32, u32), (u32, u32, u32)>,
    merge_epoch: FxHashMap<u32, u32>,
    voter_epoch: u32,
    /// Call start, for `RunStats::resolve_time`.
    started: Instant,
    /// Wall-clock cutoff derived from `ResolveBudget::wall_clock`.
    deadline: Option<Instant>,
    /// Guards `progressive_finish` so the seal runs exactly once.
    finished: bool,
}

/// Incremental HERA: owns the schema registry and all algorithm state.
///
/// A session is [`Send`]: every field is owned data or an
/// `Arc` of a `Send + Sync` trait object, so a built (or restored)
/// session can be handed to a dedicated worker thread — the ownership
/// model `hera-serve` uses to run one session per shard worker. It is
/// deliberately *not* `Sync`: all mutation goes through `&mut self`, so
/// concurrent access is structured as message passing to the owning
/// thread, never shared-memory mutation.
pub struct HeraSession {
    config: HeraConfig,
    metric: Arc<dyn ValueSimilarity>,
    registry: SchemaRegistry,
    record_count: usize,
    index: ValuePairIndex,
    join: IncrementalJoin,
    supers: FxHashMap<u32, SuperRecord>,
    uf: UnionFind,
    voter: SchemaVoter,
    /// Records whose evidence changed since the last `resolve`.
    dirty: FxHashSet<u32>,
    /// Streaming blocker gating the incremental join's candidate
    /// universe; `None` when [`HeraConfig::blocking`] is
    /// [`hera_block::BlockingScheme::None`] — that path is byte-for-byte
    /// the historical unfiltered ingest.
    blocker: Option<StreamingBlocker>,
    /// Merge-aware `metric.sim` memo cache; persists across `resolve`
    /// calls, so a long-lived session keeps amortizing its metric work.
    cache: Option<SimCache>,
    /// Journal recorder (disabled by default).
    recorder: hera_obs::Recorder,
    /// Fault injector threaded into snapshot IO (disabled by default).
    faults: FaultInjector,
    /// Retry policy for checkpoint writes.
    retry: BackoffPolicy,
    /// Delay source for the retry policy's backoff.
    clock: Arc<dyn Clock>,
    /// Lifetime counters; `stats.iterations` is the monotonic `round` of
    /// the session's journal events and survives checkpoint/restore.
    stats: RunStats,
}

/// Builder for [`HeraSession`] — the single construction path for every
/// option combination.
///
/// ```
/// use hera_core::{HeraConfig, HeraSession};
/// let session = HeraSession::builder(HeraConfig::paper_example()).build();
/// assert!(session.is_empty());
/// ```
pub struct HeraSessionBuilder {
    config: HeraConfig,
    metric: Arc<dyn ValueSimilarity>,
    recorder: Option<hera_obs::Recorder>,
    faults: FaultInjector,
    retry: BackoffPolicy,
    clock: Arc<dyn Clock>,
}

impl HeraSessionBuilder {
    fn with_config(config: HeraConfig) -> Self {
        Self {
            config,
            metric: Arc::new(TypeDispatch::paper_default()),
            recorder: None,
            faults: FaultInjector::disabled(),
            retry: BackoffPolicy::checkpoint_default(),
            clock: Arc::new(SystemClock),
        }
    }

    /// Replaces the paper-default value similarity metric.
    pub fn metric(mut self, metric: Arc<dyn ValueSimilarity>) -> Self {
        self.metric = metric;
        self
    }

    /// Attaches a journal recorder; every `resolve` round emits through
    /// it (see the `hera-obs` crate docs for the event schema). Defaults
    /// to [`hera_obs::Recorder::from_env`].
    pub fn recorder(mut self, recorder: hera_obs::Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Threads a fault injector into the session's snapshot IO: every
    /// checkpoint write and restore read consults the `store.*`
    /// failpoints. Defaults to [`FaultInjector::disabled`]. (The journal
    /// sink's failpoint lives on the recorder — see
    /// `hera_obs::Recorder::with_faults`.)
    pub fn faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the checkpoint-write retry policy (default
    /// [`BackoffPolicy::checkpoint_default`]; use
    /// [`BackoffPolicy::none`] to fail fast).
    pub fn retry(mut self, policy: BackoffPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Replaces the delay source behind retry backoff (default
    /// [`SystemClock`]; tests inject `hera_faults::ManualClock`).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Builds an empty session.
    pub fn build(self) -> HeraSession {
        HeraSession {
            join: IncrementalJoin::new(self.config.xi, 2, self.metric.clone()),
            cache: self.config.sim_cache.then(SimCache::new),
            blocker: StreamingBlocker::new(&self.config.blocking),
            config: self.config,
            metric: self.metric,
            registry: SchemaRegistry::new(),
            record_count: 0,
            index: ValuePairIndex::default(),
            supers: FxHashMap::default(),
            uf: UnionFind::new(0),
            voter: SchemaVoter::new(),
            dirty: FxHashSet::default(),
            recorder: self.recorder.unwrap_or_else(hera_obs::Recorder::from_env),
            faults: self.faults,
            retry: self.retry,
            clock: self.clock,
            stats: RunStats::default(),
        }
    }

    /// Builds a session whose algorithm state is loaded from a snapshot
    /// written by [`HeraSession::checkpoint`]. The builder's config and
    /// metric must be behaviorally compatible with the checkpointing
    /// session's (same `xi`, same metric) for the continuation to be
    /// equivalent to an uninterrupted run; a differing `xi` is rejected
    /// with [`HeraError::InvalidConfig`] because the live-value join
    /// universe depends on it.
    pub fn restore(self, path: impl AsRef<Path>) -> Result<HeraSession> {
        let start = std::time::Instant::now();
        let (snap, report) = Snapshot::read_report_with(&path, &self.faults)?;
        let mut session = self.build();

        let snap_xi = snap.expect("config")?.expect("xi")?.as_f64()?;
        if snap_xi != session.config.xi {
            return Err(HeraError::InvalidConfig(format!(
                "snapshot was taken at xi={snap_xi} but the restore config has xi={}; \
                 the live-value join universe is xi-dependent",
                session.config.xi
            )));
        }
        // Blocking is likewise universe-shaping: the scheme used at
        // checkpoint time must be the scheme restored under (pre-blocking
        // snapshots carry no key and mean "none").
        let snap_blocking = match snap.expect("config")?.get("blocking") {
            Some(j) => j.as_str()?,
            None => "none",
        };
        if snap_blocking != session.config.blocking.name() {
            return Err(HeraError::InvalidConfig(format!(
                "snapshot was taken with blocking '{snap_blocking}' but the restore config \
                 has '{}'; the join's candidate universe is blocking-dependent",
                session.config.blocking.name()
            )));
        }

        let mut registry = SchemaRegistry::from_json(snap.expect("registry")?)?;
        registry.rebuild_lookups();
        let record_count = snap.expect("record_count")?.as_i64()?;
        if record_count < 0 {
            return Err(HeraError::Corrupt("negative record_count".into()));
        }
        let record_count = record_count as usize;
        let uf = UnionFind::from_json(snap.expect("union_find")?)?;
        if uf.len() != record_count {
            return Err(HeraError::Corrupt(format!(
                "union-find covers {} records, snapshot has {record_count}",
                uf.len()
            )));
        }
        let mut supers: FxHashMap<u32, SuperRecord> = FxHashMap::default();
        for s_json in snap.expect("supers")?.as_arr()? {
            let s = SuperRecord::from_json(s_json)?;
            if (s.rid as usize) >= record_count || uf.find_const(s.rid) != s.rid {
                return Err(HeraError::Corrupt(format!(
                    "super record {} is not a live union-find root",
                    s.rid
                )));
            }
            supers.insert(s.rid, s);
        }
        for rid in 0..record_count as u32 {
            let root = uf.find_const(rid);
            if !supers.contains_key(&root) {
                return Err(HeraError::Corrupt(format!(
                    "record {rid} resolves to root {root} with no super record"
                )));
            }
        }
        let index = ValuePairIndex::from_json(snap.expect("index")?)?;
        let join = IncrementalJoin::from_json(snap.expect("join")?, session.metric.clone())?;
        let voter = SchemaVoter::from_json(snap.expect("voter")?)?;
        let mut dirty = FxHashSet::default();
        for d in snap.expect("dirty")?.as_arr()? {
            let rid = d.as_u32()?;
            if rid as usize >= record_count {
                return Err(HeraError::Corrupt(format!(
                    "dirty record {rid} out of range"
                )));
            }
            dirty.insert(rid);
        }
        let stats = RunStats::from_json(snap.expect("stats")?)?;
        // The cache is state *and* policy: restore it only when this
        // config runs with the cache on. A cache-off snapshot restored
        // into a cache-on config simply starts the memo empty.
        let cache = if session.config.sim_cache {
            match snap.get("sim_cache") {
                Some(j) => Some(SimCache::from_json(j)?),
                None => Some(SimCache::new()),
            }
        } else {
            None
        };

        match snap.get("blocker") {
            Some(j) => {
                session.blocker = Some(StreamingBlocker::from_json(&session.config.blocking, j)?);
            }
            None => {
                if session.blocker.is_some() {
                    return Err(HeraError::Corrupt(
                        "snapshot config enables blocking but carries no blocker section".into(),
                    ));
                }
            }
        }
        session.registry = registry;
        session.record_count = record_count;
        session.index = index;
        session.join = join;
        session.supers = supers;
        session.uf = uf;
        session.voter = voter;
        session.dirty = dirty;
        session.cache = cache;
        session.stats = stats;
        session.recorder.span(
            "checkpoint_load",
            None,
            &[
                ("bytes", report.payload_bytes as i64),
                ("sections", report.sections as i64),
            ],
        );
        session
            .recorder
            .timing("checkpoint_load", None, start.elapsed());
        session.recorder.flush();
        Ok(session)
    }
}

impl HeraSession {
    /// Starts building a session; see [`HeraSessionBuilder`].
    pub fn builder(config: HeraConfig) -> HeraSessionBuilder {
        HeraSessionBuilder::with_config(config)
    }

    /// Restores a session from a snapshot written by
    /// [`HeraSession::checkpoint`] — shorthand for
    /// [`HeraSessionBuilder::restore`].
    pub fn restore(
        path: impl AsRef<Path>,
        config: HeraConfig,
        metric: Arc<dyn ValueSimilarity>,
    ) -> Result<Self> {
        Self::builder(config).metric(metric).restore(path)
    }

    /// Writes the complete session state to `path` as a versioned,
    /// CRC-checked snapshot (see the `hera-store` crate docs for the
    /// envelope format). The write is atomic — a crash mid-checkpoint
    /// leaves any previous snapshot at `path` intact. A session restored
    /// from the snapshot continues exactly where this one stood:
    /// ingesting the same remaining records and resolving yields
    /// bit-identical entities, stats, and core journal events.
    ///
    /// Transient IO failures are retried under the builder's
    /// [`BackoffPolicy`] (default: 3 attempts with capped exponential
    /// backoff). When the policy is exhausted the error surfaces as
    /// [`HeraError::CheckpointFailed`] — the in-memory session is
    /// untouched, so the caller may keep resolving and checkpoint again
    /// later.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let start = std::time::Instant::now();
        let snap = self.to_snapshot();
        let path = path.as_ref();
        let (report, attempts) = hera_faults::retry(
            &self.retry,
            self.clock.as_ref(),
            |_| snap.write_with(path, &self.faults),
            io_retryable,
        )
        .map_err(|e| HeraError::CheckpointFailed {
            attempts: e.attempts,
            cause: Box::new(e.error),
        })?;
        self.recorder.span(
            "checkpoint_save",
            None,
            &[
                ("bytes", report.payload_bytes as i64),
                ("sections", report.sections as i64),
            ],
        );
        if attempts > 1 {
            // Host-dependent robustness detail, not part of the
            // deterministic core journal.
            self.recorder.emit_diag(
                "diag",
                vec![
                    ("what", Json::Str("checkpoint_retries".into())),
                    ("attempts", Json::Int(i64::from(attempts))),
                ],
            );
        }
        self.recorder
            .timing("checkpoint_save", None, start.elapsed());
        self.recorder.flush();
        Ok(())
    }

    /// Assembles the snapshot sections. Every map is emitted in sorted
    /// order so identical sessions produce identical bytes.
    fn to_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        snap.insert(
            "config",
            Json::Obj(vec![
                ("xi".into(), Json::Float(self.config.xi)),
                ("sim_cache".into(), Json::Bool(self.config.sim_cache)),
                (
                    "blocking".into(),
                    Json::Str(self.config.blocking.name().into()),
                ),
            ]),
        );
        if let Some(b) = &self.blocker {
            snap.insert("blocker", b.to_json());
        }
        snap.insert("registry", self.registry.to_json());
        snap.insert("record_count", Json::Int(self.record_count as i64));
        let mut roots: Vec<&SuperRecord> = self.supers.values().collect();
        roots.sort_unstable_by_key(|s| s.rid);
        snap.insert(
            "supers",
            Json::Arr(roots.iter().map(|s| s.to_json()).collect()),
        );
        snap.insert("union_find", self.uf.to_json());
        snap.insert("index", self.index.to_json());
        snap.insert("join", self.join.to_json());
        snap.insert("voter", self.voter.to_json());
        if let Some(c) = &self.cache {
            snap.insert("sim_cache", c.to_json());
        }
        let mut dirty: Vec<u32> = self.dirty.iter().copied().collect();
        dirty.sort_unstable();
        snap.insert(
            "dirty",
            Json::Arr(dirty.into_iter().map(|r| Json::Int(r as i64)).collect()),
        );
        snap.insert("stats", self.stats.to_json());
        snap
    }

    /// Registers a source schema (streaming sources can appear at any
    /// time).
    pub fn add_schema<S: Into<String>, I: IntoIterator<Item = S>>(
        &mut self,
        name: impl Into<String>,
        attrs: I,
    ) -> SchemaId {
        self.registry.add_schema(name, attrs)
    }

    /// Ingests one record under a registered schema: its values join
    /// against every live value and the index grows accordingly. Returns
    /// the record id. Call [`HeraSession::resolve`] to fold new evidence
    /// into entities (per record for lowest latency, or in batches for
    /// throughput).
    pub fn add_record(&mut self, schema: SchemaId, values: Vec<Value>) -> Result<RecordId> {
        if schema.index() >= self.registry.len() {
            return Err(HeraError::UnknownId(format!("{schema}")));
        }
        let expected = self.registry.schema(schema).arity();
        if values.len() != expected {
            return Err(HeraError::ArityMismatch {
                record: self.record_count as u32,
                expected,
                actual: values.len(),
            });
        }
        let rid = self.record_count as u32;
        self.record_count += 1;
        let pushed = self.uf.push();
        debug_assert_eq!(pushed, rid);

        // Lift into a super record (tracking attribute provenance).
        let schema_ref = self.registry.schema(schema);
        let fields: Vec<crate::super_record::Field> = values
            .iter()
            .zip(&schema_ref.attrs)
            .map(|(v, a)| crate::super_record::Field {
                values: if v.is_null() {
                    Vec::new()
                } else {
                    vec![v.clone()]
                },
                attrs: vec![a.id],
            })
            .collect();
        self.supers.insert(
            rid,
            SuperRecord {
                rid,
                fields,
                members: vec![rid],
            },
        );

        // With blocking on, the record's co-blocked candidates bound the
        // join's candidate universe. The blocker speaks in original rids;
        // the join's labels carry union-find roots (relabeled on every
        // merge), so the allow-list is the candidates' *current roots* —
        // and the join verifies against exactly those records
        // (`insert_among`), never probing its full posting lists, so
        // blocked insert cost tracks the co-blocked neighborhood instead
        // of the live-value universe.
        let allowed: Option<Vec<u32>> = self.blocker.as_mut().map(|b| {
            let uf = &mut self.uf;
            let mut roots: Vec<u32> = b
                .admit(rid, &values)
                .into_iter()
                .map(|r| uf.find(r))
                .collect();
            roots.sort_unstable();
            roots.dedup();
            roots
        });

        // Join each value against the live universe; labels of previously
        // merged records are already current (the join is relabeled on
        // every merge).
        let mut new_pairs = Vec::new();
        for (fid, v) in values.iter().enumerate() {
            if !v.is_null() {
                let label = Label::new(rid, fid as u32, 0);
                match &allowed {
                    Some(rids) => new_pairs.extend(self.join.insert_among(label, v.clone(), rids)),
                    None => new_pairs.extend(self.join.insert(label, v.clone())),
                }
            }
        }
        for p in &new_pairs {
            self.dirty.insert(p.a.rid);
            self.dirty.insert(p.b.rid);
        }
        self.index.extend(new_pairs);
        Ok(RecordId::new(rid))
    }

    /// Runs compare-and-merge to a fixpoint over the dirty region.
    /// Returns the number of merges performed.
    ///
    /// Equivalent to [`HeraSession::resolve_progressive`] with an
    /// unlimited [`ResolveBudget`] — both walk the same deterministic
    /// priority schedule, so a budgeted run's merges are always a prefix
    /// of this one's.
    pub fn resolve(&mut self) -> usize {
        self.resolve_progressive(ResolveBudget::unlimited()).merges
    }

    /// Budget-scheduled (progressive / anytime) compare-and-merge: spends
    /// up to `budget` on the highest-expected-value work first and stops
    /// at a clean, checkpointable boundary when a budget runs out.
    ///
    /// Each iteration uses the same two-phase structure as the batch
    /// driver: a parallel snapshot phase verifies surviving candidate
    /// root-pairs against the iteration-start state, then a sequential
    /// apply phase merges in candidate order, deferring any pair whose
    /// super records changed under an earlier merge back to the frontier
    /// (the next round re-ranks and re-verifies it). Each round verifies
    /// the maximal-matching prefix of the ranked list — no two selected
    /// pairs share a root — cut at a relative priority floor
    /// (`ROUND_FOCUS`) and capped at `ROUND_CHUNK` verifications, so
    /// merges collapse a big cluster's remaining intra-pairs into cheap
    /// super-record pairs *before* the schedule spends comparisons on
    /// them — without the matching, a cluster of k records burns Θ(k²)
    /// verifications to buy k/2 merges. Both constants are never derived
    /// from the budget, so every budget still walks the identical
    /// schedule. Candidates are ordered by the value-pair index's
    /// expected-value signal — Up/Low midpoint × frontier component size
    /// ([`hera_index::RankedCandidate::priority`], descending, with
    /// deterministic tie-breaks), so merges come out confidence-ranked
    /// and a small budget completes the biggest clusters first. The schedule is
    /// a pure function of session state: results are bit-identical for
    /// every [`HeraConfig::num_threads`] setting and cache on/off, and
    /// the merges emitted under budget `b` are a prefix of those emitted
    /// under any budget `b' > b` (a budget only truncates the schedule,
    /// never reorders it).
    ///
    /// On exhaustion, unprocessed candidates are returned to the frontier
    /// (their roots re-marked dirty), so the session state — entirely
    /// covered by [`HeraSession::checkpoint`] — is a clean boundary: a
    /// restored session's next call continues exactly where this one
    /// stopped, and journal rounds stay monotonic across the resume.
    /// When the merge budget runs out mid-round, already-verified
    /// below-δ verdicts are still consumed (the decision is
    /// budget-independent), but verified would-merge pairs must defer:
    /// their spent comparisons are reported in
    /// [`ProgressiveReport::comparisons_deferred`] so a caller bounding
    /// both axes can see the re-verification cost the next call pays.
    ///
    /// Implemented as [`HeraSession::resolve_progressive_with`] with a
    /// no-op merge observer, so the two are bit-identical by
    /// construction.
    pub fn resolve_progressive(&mut self, budget: ResolveBudget) -> ProgressiveReport {
        self.resolve_progressive_with(budget, |_| {})
    }

    /// [`HeraSession::resolve_progressive`] with a streaming observer:
    /// `on_merge` is invoked for every applied merge, in schedule order,
    /// the moment it lands (ROADMAP item 3(a)'s callback form). The
    /// schedule, the report, and the journal are bit-identical to
    /// [`HeraSession::resolve_progressive`] under the same budget — the
    /// observer only *watches* the run. For a pull-based iterator over
    /// the same events, see [`HeraSession::resolve_stream`].
    pub fn resolve_progressive_with<F: FnMut(MergeEvent)>(
        &mut self,
        budget: ResolveBudget,
        mut on_merge: F,
    ) -> ProgressiveReport {
        let mut st = self.progressive_start(budget);
        while self.progressive_round(budget, &mut st, &mut on_merge) {}
        self.progressive_finish(budget, &mut st);
        st.report
    }

    /// Pull-based streaming resolve: returns an iterator that advances
    /// the budget-scheduled fixpoint one round at a time and yields each
    /// [`MergeEvent`] as it is applied. Dropping the stream early is
    /// safe — rounds are atomic, so the session is left at the same
    /// clean checkpointable boundary a budget cut would produce, with
    /// unfinished work back on the frontier. The final
    /// [`ProgressiveReport`] is available from
    /// [`ResolveStream::report`] once the iterator is exhausted (or via
    /// [`ResolveStream::finish`], which drains the rest).
    pub fn resolve_stream(&mut self, budget: ResolveBudget) -> ResolveStream<'_> {
        let st = self.progressive_start(budget);
        ResolveStream {
            session: self,
            budget,
            st,
            buf: VecDeque::new(),
            done: false,
        }
    }

    /// Estimated wall-clock cost of one pair verification, from the
    /// session's lifetime verify-phase timings (the same quantity the
    /// journal records as `resolve_verify` timing spans): total verify
    /// time over total comparisons. `None` until the session has
    /// verified at least one pair. This is the cost model behind
    /// [`ResolveBudget::wall_clock`]'s per-round cap.
    pub fn per_comparison_cost(&self) -> Option<Duration> {
        (self.stats.comparisons > 0).then(|| {
            Duration::from_secs_f64(
                self.stats.verify_time.as_secs_f64() / self.stats.comparisons as f64,
            )
        })
    }

    /// Opens a progressive call: stamps thread/index stats and starts
    /// the wall-clock, returning the per-call state the round driver
    /// threads through.
    fn progressive_start(&mut self, budget: ResolveBudget) -> ProgressiveState {
        let started = Instant::now();
        self.stats.threads = crate::parallel::effective_threads(self.config.num_threads);
        self.stats.index_size = self.stats.index_size.max(self.index.len());
        ProgressiveState {
            report: ProgressiveReport::default(),
            iterations: 0,
            decided: FxHashMap::default(),
            merge_epoch: FxHashMap::default(),
            voter_epoch: 0,
            started,
            deadline: budget.wall_clock.map(|d| started + d),
            finished: false,
        }
    }

    /// Runs one resolve round (phase A verify + phase B apply) against
    /// `st`, reporting each applied merge through `on_merge`. Returns
    /// `false` when the call is over — fixpoint reached, iteration cap
    /// hit, or a budget ran out — after which
    /// [`HeraSession::progressive_finish`] must seal the call exactly
    /// once.
    fn progressive_round(
        &mut self,
        budget: ResolveBudget,
        st: &mut ProgressiveState,
        on_merge: &mut dyn FnMut(MergeEvent),
    ) -> bool {
        let cfg = self.config.clone();
        let rec = self.recorder.clone();
        let verifier = InstanceVerifier::new(self.metric.as_ref(), cfg.xi, cfg.use_kuhn_munkres);
        let threads = crate::parallel::effective_threads(cfg.num_threads);
        let epoch_of = |epochs: &FxHashMap<u32, u32>, r: u32| epochs.get(&r).copied().unwrap_or(0);
        if self.dirty.is_empty() || st.iterations >= cfg.max_iterations {
            return false;
        }
        // A merge budget met between rounds stops before the next
        // round spends any comparisons; the untouched dirty set *is*
        // the frontier state.
        if budget.merges.is_some_and(|m| st.report.merges as u64 >= m) {
            st.report.exhausted = true;
            return false;
        }
        // A wall-clock deadline met between rounds likewise ends the
        // call at the round boundary (best-effort — see
        // [`ResolveBudget::wall_clock`]).
        if st.deadline.is_some_and(|d| Instant::now() >= d) {
            st.report.exhausted = true;
            return false;
        }
        st.iterations += 1;
        let deadline = st.deadline;
        let ProgressiveState {
            report,
            decided,
            merge_epoch,
            voter_epoch,
            ..
        } = st;
        {
            self.stats.iterations += 1;
            let round = self.stats.iterations;
            let round_merges_before = self.stats.merges;
            let round_metric_before = self.stats.metric_sim_calls;
            let dirty = std::mem::take(&mut self.dirty);
            let groups: Vec<(u32, u32)> = self
                .index
                .record_pairs()
                .filter(|(i, j)| dirty.contains(i) || dirty.contains(j))
                .collect();

            // Phase A: dedup root-pairs in group order, then drain them
            // from the index in bound-priority order (pruning Up < δ),
            // and verify the survivors in parallel against the
            // iteration-start state (verification is read-only).
            let mut processed: FxHashSet<(u32, u32)> = FxHashSet::default();
            let mut keys: Vec<(u32, u32)> = Vec::new();
            for (i, j) in groups {
                let (ri, rj) = (self.uf.find(i), self.uf.find(j));
                if ri == rj {
                    continue;
                }
                let key = (ri.min(rj), ri.max(rj));
                let verdict_fresh = decided.get(&key).is_some_and(|&(ea, eb, ev)| {
                    ea == epoch_of(merge_epoch, key.0)
                        && eb == epoch_of(merge_epoch, key.1)
                        && ev == *voter_epoch
                });
                if verdict_fresh || !processed.insert(key) {
                    continue;
                }
                keys.push(key);
            }
            let (ranked, pruned) = {
                let supers = &self.supers;
                self.index.drain_ranked(
                    &keys,
                    |r| supers[&r].informative_size(),
                    |r| supers[&r].members.len() as u64,
                    cfg.bound_mode,
                    cfg.delta,
                )
            };
            self.stats.pruned += pruned;

            // Round schedule: the maximal-matching prefix of the ranked
            // list, cut at the ROUND_FOCUS priority floor and capped at
            // ROUND_CHUNK. Skipping a candidate whose root is already
            // claimed this round costs nothing — it defers back to the
            // frontier unverified — whereas verifying it would burn a
            // comparison on a verdict guaranteed to go stale under the
            // earlier, higher-priority merge (a big fragment's pairs all
            // share its root, so an unfiltered chunk buys one merge per
            // chunk). The schedule is a pure function of the ranked
            // list; the budget only truncates it, and only the budget's
            // cut marks exhaustion.
            let floor = ranked.first().map_or(0.0, |c| ROUND_FOCUS * c.priority());
            let mut claimed: FxHashSet<u32> = FxHashSet::default();
            let mut selected: Vec<(u32, u32)> = Vec::new();
            let mut unselected: Vec<(u32, u32)> = Vec::new();
            for c in &ranked {
                if selected.len() >= ROUND_CHUNK
                    || c.priority() < floor
                    || claimed.contains(&c.pair.0)
                    || claimed.contains(&c.pair.1)
                {
                    unselected.push(c.pair);
                    continue;
                }
                claimed.insert(c.pair.0);
                claimed.insert(c.pair.1);
                selected.push(c.pair);
            }
            let mut cap = match budget.comparisons {
                Some(c) => {
                    (c.saturating_sub(report.comparisons_spent) as usize).min(selected.len())
                }
                None => selected.len(),
            };
            // Wall-clock budgets additionally cap the round at the
            // number of verifications the cost model predicts still fit
            // before the deadline. Host timing feeds both inputs, so
            // this cut — unlike the two counters above — is best-effort
            // rather than bit-exact (see [`ResolveBudget::wall_clock`]).
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    cap = 0;
                } else if let Some(per) = self.per_comparison_cost() {
                    if !per.is_zero() {
                        let affordable =
                            (remaining.as_secs_f64() / per.as_secs_f64()).floor() as usize;
                        cap = cap.min(affordable);
                    }
                }
            }
            let verify_list: Vec<(u32, u32)> = selected[..cap].to_vec();
            let tv = std::time::Instant::now();
            let verifications = {
                let (index, supers, registry, cache) =
                    (&self.index, &self.supers, &self.registry, &self.cache);
                let voter_opt = cfg.schema_voting.then_some(&self.voter);
                crate::parallel::par_map_with(
                    threads,
                    &verify_list,
                    VerifyScratch::new,
                    |scratch, &(a, b)| {
                        let v = verifier.verify_with(
                            index,
                            &supers[&a],
                            &supers[&b],
                            registry,
                            voter_opt,
                            cache.as_ref(),
                            scratch,
                        );
                        (v, std::mem::take(&mut scratch.delta))
                    },
                )
            };
            let tv_elapsed = tv.elapsed();
            self.stats.verify_time += tv_elapsed;
            // Per-worker aggregation: verdicts are in input order for
            // every thread count, so one fold gives a deterministic span.
            let mut verify_agg = crate::driver::StageAgg::default();
            for (v, delta) in &verifications {
                self.stats.comparisons += 1;
                self.stats.simplified_nodes_sum += v.simplified_nodes;
                self.stats.graph_nodes_sum += v.graph_nodes;
                self.stats.matchings_run += 1;
                self.stats.record_cache_delta(delta);
                verify_agg.add(v, delta);
            }
            report.comparisons_spent += verifications.len() as u64;
            verify_agg.emit(&rec, "resolve_verify", round);
            rec.timing("resolve_verify", Some(round), tv_elapsed);

            // Phase B: apply sequentially in candidate (priority) order.
            // The matching filter guarantees no two candidates share a
            // root, so verdicts cannot go stale within the phase; the
            // stale branch below stays as a defensive safeguard (a stale
            // pair defers to the next round rather than merging on
            // outdated evidence).
            let mut touched: FxHashSet<u32> = FxHashSet::default();
            let mut deferred_stale = 0i64;
            let deferred_before = report.comparisons_deferred;
            for (idx, &key) in verify_list.iter().enumerate() {
                // Memoize this snapshot verdict's metric calls even if
                // the verdict goes stale below — the fills are exact
                // metric outputs, so the deferred re-verification next
                // round reuses them. Fills naming a since-folded record
                // are filtered out (only root labels stay valid).
                if let Some(c) = self.cache.as_mut() {
                    let uf = &self.uf;
                    c.apply_if(&verifications[idx].1, |l| uf.find_const(l.rid) == l.rid);
                }
                let (ri, rj) = (self.uf.find(key.0), self.uf.find(key.1));
                if ri == rj {
                    continue;
                }
                let cur = (ri.min(rj), ri.max(rj));
                if cur != key && !processed.insert(cur) {
                    continue;
                }
                if cur != key || touched.contains(&cur.0) || touched.contains(&cur.1) {
                    self.dirty.insert(cur.0);
                    self.dirty.insert(cur.1);
                    deferred_stale += 1;
                    continue;
                }
                let v = &verifications[idx].0;
                if v.sim < cfg.delta {
                    // A below-δ verdict consumes no merge budget, so a
                    // mid-phase merge cut still banks it — its
                    // comparison was already spent and the decision is
                    // budget-independent.
                    decided.insert(
                        cur,
                        (
                            epoch_of(merge_epoch, cur.0),
                            epoch_of(merge_epoch, cur.1),
                            *voter_epoch,
                        ),
                    );
                    continue;
                }
                if budget.merges.is_some_and(|m| report.merges as u64 >= m) {
                    // Verified, would merge, but the merge budget is
                    // spent: the pair returns to the frontier undecided
                    // and a following call re-verifies it. Its
                    // comparison is already in comparisons_spent;
                    // count the write-off so the waste is observable.
                    self.dirty.insert(cur.0);
                    self.dirty.insert(cur.1);
                    report.comparisons_deferred += 1;
                    continue;
                }
                if cfg.schema_voting {
                    for &(lf, rf, _) in v.predicted() {
                        let left = &self.supers[&cur.0];
                        let right = &self.supers[&cur.1];
                        // Collect votes before mutating.
                        let la = left.fields[lf as usize].attrs.clone();
                        let ra = right.fields[rf as usize].attrs.clone();
                        for a in &la {
                            for b in &ra {
                                self.voter.add_vote(&self.registry, *a, *b);
                            }
                        }
                    }
                    let fresh =
                        self.voter
                            .decide(cfg.vote_prior, cfg.vote_error_threshold, cfg.vote_min_n);
                    self.stats.schema_matchings_decided += fresh.len();
                    if !fresh.is_empty() {
                        // New matchings can flip any pair's verdict, not
                        // just the merging pair's: stale every memo.
                        *voter_epoch += 1;
                    }
                    if rec.enabled() {
                        for d in &fresh {
                            rec.schema_decided(
                                round,
                                &self.registry.attr_qualified_name(d.attr),
                                &self.registry.attr_qualified_name(d.partner),
                                d.up_error(),
                            );
                        }
                    }
                }
                // Merge.
                rec.merge(round, cur.0, cur.1, v.sim, v.matching.len());
                let k = self.uf.union(cur.0, cur.1);
                debug_assert_eq!(k, cur.0);
                let loser = self.supers.remove(&cur.1).expect("loser exists");
                let winner = self.supers.get_mut(&cur.0).expect("winner exists");
                let matching: Vec<(u32, u32)> =
                    v.matching.iter().map(|&(l, r, _)| (l, r)).collect();
                let remap = winner.absorb(&loser, &matching);
                self.index.merge(cur.0, cur.1, k, |l| remap.apply(l));
                if let Some(c) = self.cache.as_mut() {
                    c.merge(cur.0, cur.1, k, |l| remap.apply(l));
                }
                self.join.relabel(cur.0, cur.1, |l| remap.apply(l));
                *merge_epoch.entry(cur.0).or_insert(0) += 1;
                self.dirty.insert(k);
                touched.insert(cur.0);
                touched.insert(cur.1);
                report.merges += 1;
                self.stats.merges += 1;
                on_merge(MergeEvent {
                    winner: cur.0,
                    loser: cur.1,
                    confidence: v.sim,
                    comparisons_spent: report.comparisons_spent,
                });
            }
            self.stats
                .metric_calls_by_round
                .push(self.stats.metric_sim_calls - round_metric_before);
            rec.span(
                "resolve_apply",
                Some(round),
                &[
                    ("merges", (self.stats.merges - round_merges_before) as i64),
                    ("deferred_stale", deferred_stale),
                ],
            );
            rec.round_end(
                round,
                (self.stats.merges - round_merges_before) as i64,
                self.index.len() as i64,
                self.voter.open_buckets() as i64,
            );

            // Return every unprocessed candidate to the frontier by
            // re-marking its current roots dirty — the next round (or the
            // next call) regenerates and re-ranks them. Only a *budget*
            // cut ends the call: the chunk cut just rolls into the next
            // round. Either way the session state is a clean resume
            // boundary.
            let budget_truncated =
                cap < selected.len() || report.comparisons_deferred > deferred_before;
            let deferred_pairs = selected[cap..].iter().chain(&unselected).copied();
            for (a, b) in deferred_pairs {
                self.dirty.insert(self.uf.find(a));
                self.dirty.insert(self.uf.find(b));
            }
            if budget_truncated {
                report.exhausted = true;
                return false;
            }
        }
        true
    }

    /// Seals a progressive call exactly once: finalizes the report and
    /// lifetime stats and emits the per-call summary span. Idempotent —
    /// the second and later calls are no-ops, so the stream's `Drop` can
    /// invoke it unconditionally.
    fn progressive_finish(&mut self, budget: ResolveBudget, st: &mut ProgressiveState) {
        if st.finished {
            return;
        }
        st.finished = true;
        let report = &mut st.report;
        if !self.dirty.is_empty() {
            // Either a budget cut above (already flagged) or the
            // max_iterations elbow: work remains, so a partial result
            // must never read as a fixpoint.
            report.exhausted = true;
        }
        report.frontier = self.dirty.len();
        if budget.is_bounded() {
            // One deterministic summary event per bounded call; its
            // counters are pure functions of session state + budget, so
            // the line is byte-identical at every thread count. (A
            // wall-clock-only budget still gets the span, but its
            // counters then depend on where host timing cut the
            // schedule.)
            self.recorder.span(
                "progressive",
                Some(self.stats.iterations),
                &[
                    ("budget_spent", report.comparisons_spent as i64),
                    ("merges_emitted", report.merges as i64),
                    ("comparisons_deferred", report.comparisons_deferred as i64),
                    ("frontier_size", report.frontier as i64),
                    ("exhausted", i64::from(report.exhausted)),
                ],
            );
        }
        self.stats.final_index_size = self.index.len();
        if let Some(c) = &self.cache {
            self.stats.sim_cache_size = c.len();
            self.stats.sim_cache_invalidated = c.invalidated();
        }
        self.stats.resolve_time += st.started.elapsed();
        self.recorder.flush();
    }

    /// Candidate root pairs currently pending on the frontier: pairs in
    /// dirty-touching index groups whose upper bound clears `δ` — what
    /// the next [`HeraSession::resolve_progressive`] call will drain
    /// first. Read-only and deterministic.
    pub fn frontier_len(&self) -> usize {
        let mut processed: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut keys: Vec<(u32, u32)> = Vec::new();
        for (i, j) in self.index.record_pairs() {
            if !(self.dirty.contains(&i) || self.dirty.contains(&j)) {
                continue;
            }
            let (ri, rj) = (self.uf.find_const(i), self.uf.find_const(j));
            if ri == rj {
                continue;
            }
            let key = (ri.min(rj), ri.max(rj));
            if processed.insert(key) {
                keys.push(key);
            }
        }
        let supers = &self.supers;
        self.index
            .drain_ranked(
                &keys,
                |r| supers[&r].informative_size(),
                |r| supers[&r].members.len() as u64,
                self.config.bound_mode,
                self.config.delta,
            )
            .0
            .len()
    }

    /// Re-marks every live root dirty, returning the whole universe to
    /// the frontier: the next resolve call re-examines every candidate
    /// pair from scratch. A resolved session is a true fixpoint, so
    /// resolving again after this performs zero merges — the invariant
    /// `tests/progressive.rs` property-tests (it is what catches a
    /// schedule that silently skips an emergent merge).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.extend(self.supers.keys().copied());
    }

    /// Current entity label (super-record rid) of a record.
    pub fn entity_of(&self, rid: RecordId) -> u32 {
        self.uf.find_const(rid.raw())
    }

    /// Member record ids of the entity labeled `label`, in merge order
    /// (the winner's members followed by each absorbed loser's), or
    /// `None` when `label` is not a live entity label. O(1) — reads the
    /// super record.
    pub fn entity_members(&self, label: u32) -> Option<&[u32]> {
        self.supers.get(&label).map(|s| s.members.as_slice())
    }

    /// All records grouped by current entity.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        self.uf.clusters()
    }

    /// Number of records ingested.
    pub fn len(&self) -> usize {
        self.record_count
    }

    /// True if no records were ingested.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Total merges performed so far.
    pub fn merge_count(&self) -> usize {
        self.stats.merges
    }

    /// Lifetime run statistics (iterations, comparisons, cache traffic,
    /// …). Deterministic counters survive [`HeraSession::checkpoint`] /
    /// restore, so a restored-and-continued session reports the same
    /// numbers an uninterrupted one would.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Index size `|𝒱|` right now.
    pub fn index_size(&self) -> usize {
        self.index.len()
    }

    /// Entries currently held by the similarity memo cache (0 when the
    /// cache is disabled via [`HeraConfig::sim_cache`]).
    pub fn sim_cache_size(&self) -> usize {
        self.cache.as_ref().map_or(0, SimCache::len)
    }

    /// Schema matchings decided so far.
    pub fn schema_matchings(&self) -> Vec<DecidedMatching> {
        self.voter.decided()
    }

    /// The session's schema registry.
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }
}

/// Pull-based view of one progressive resolve call — see
/// [`HeraSession::resolve_stream`]. Yields [`MergeEvent`]s in schedule
/// order, advancing the session one round at a time as the consumer
/// pulls. While the stream is live it mutably borrows the session;
/// dropping it (drained or not) seals the call's report, stats, and
/// journal summary exactly as [`HeraSession::resolve_progressive`]
/// would.
pub struct ResolveStream<'s> {
    session: &'s mut HeraSession,
    budget: ResolveBudget,
    st: ProgressiveState,
    /// Events produced by the current round, drained before the next
    /// round runs.
    buf: VecDeque<MergeEvent>,
    /// True once the round driver reported no more rounds.
    done: bool,
}

impl ResolveStream<'_> {
    /// The call's report so far: complete (frontier, exhausted flag)
    /// once the iterator has returned `None` or the stream was dropped
    /// via [`ResolveStream::finish`]; a live snapshot before that.
    pub fn report(&self) -> ProgressiveReport {
        self.st.report
    }

    /// Drains the remaining events and returns the final report —
    /// `resolve_progressive` semantics for a caller that started
    /// streaming but stopped caring about individual merges.
    pub fn finish(mut self) -> ProgressiveReport {
        for _ in self.by_ref() {}
        self.session.progressive_finish(self.budget, &mut self.st);
        self.st.report
    }
}

impl Iterator for ResolveStream<'_> {
    type Item = MergeEvent;

    fn next(&mut self) -> Option<MergeEvent> {
        loop {
            if let Some(e) = self.buf.pop_front() {
                return Some(e);
            }
            if self.done {
                return None;
            }
            let mut buf = std::mem::take(&mut self.buf);
            let more = self
                .session
                .progressive_round(self.budget, &mut self.st, &mut |e| buf.push_back(e));
            self.buf = buf;
            if !more {
                self.done = true;
                self.session.progressive_finish(self.budget, &mut self.st);
            }
        }
    }
}

impl Drop for ResolveStream<'_> {
    fn drop(&mut self) {
        // An abandoned stream still seals the call (idempotent): rounds
        // are atomic, so the session sits at a clean budget-cut-style
        // boundary with unfinished work back on the frontier.
        self.session.progressive_finish(self.budget, &mut self.st);
    }
}

/// Compile-time proof of the worker-thread handoff contract: a session
/// (and everything a worker needs to return) crosses thread boundaries.
/// Breaking this — say by caching a `Rc` or a raw sink handle in a new
/// field — fails the build here rather than in hera-serve.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<HeraSession>();
    assert_send::<ProgressiveReport>();
    assert_send::<MergeEvent>();
    assert_send::<ResolveBudget>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hera, HeraConfig};
    use hera_types::motivating_example;

    /// Streams the motivating example record by record, resolving after
    /// each insertion; the final entities match the batch run.
    #[test]
    fn streaming_motivating_example() {
        let ds = motivating_example();
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        // Mirror the dataset's schemas.
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            session.resolve();
        }
        let clusters = session.clusters();
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        assert_eq!(
            session.entity_of(RecordId::new(0)),
            session.entity_of(RecordId::new(1))
        );
        assert_eq!(
            session.entity_of(RecordId::new(2)),
            session.entity_of(RecordId::new(4))
        );
    }

    /// Ingest-all-then-resolve reaches the same quality as the batch
    /// driver on the example.
    #[test]
    fn bulk_ingest_matches_batch() {
        let ds = motivating_example();
        let batch = Hera::builder(HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap();

        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        session.resolve();
        assert_eq!(session.clusters().len(), batch.entity_count());
        assert_eq!(session.merge_count(), batch.stats.merges);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let s = session.add_schema("S", ["a", "b"]);
        let err = session.add_record(s, vec![Value::from("x")]).unwrap_err();
        assert!(matches!(err, HeraError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_schema_rejected() {
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let err = session
            .add_record(SchemaId::new(3), vec![Value::from("x")])
            .unwrap_err();
        assert!(matches!(err, HeraError::UnknownId(_)));
    }

    #[test]
    fn empty_session() {
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        assert!(session.is_empty());
        assert_eq!(session.resolve(), 0);
        assert!(session.clusters().is_empty());
    }

    #[test]
    fn resolve_is_idempotent_without_new_evidence() {
        let ds = motivating_example();
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        let first = session.resolve();
        assert!(first > 0);
        assert_eq!(session.resolve(), 0, "no new evidence, no new merges");
        assert_eq!(session.resolve(), 0);
    }

    #[test]
    fn session_accessors() {
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let s = session.add_schema("S", ["name", "city"]);
        assert_eq!(session.registry().len(), 1);
        assert_eq!(session.registry().schema(s).arity(), 2);
        session
            .add_record(s, vec![Value::from("x y"), Value::from("LA")])
            .unwrap();
        assert_eq!(session.len(), 1);
        assert!(!session.is_empty());
        assert_eq!(session.index_size(), 0); // one record: nothing to pair
        assert_eq!(session.merge_count(), 0);
        assert_eq!(session.entity_of(RecordId::new(0)), 0);
    }

    #[test]
    fn session_index_stays_consistent() {
        let ds = motivating_example();
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            session.resolve();
            session.index.check_invariants().unwrap();
            if let Some(c) = &session.cache {
                c.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn session_cache_on_off_agree() {
        let ds = motivating_example();
        let stream = |cfg: HeraConfig| {
            let mut session = HeraSession::builder(cfg).build();
            let schemas: Vec<SchemaId> = ds
                .registry
                .schemas()
                .map(|s| {
                    session.add_schema(
                        s.name.clone(),
                        s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                    )
                })
                .collect();
            for rec in ds.iter() {
                session
                    .add_record(schemas[rec.schema.index()], rec.values.clone())
                    .unwrap();
                session.resolve();
            }
            session
        };
        let mut cached = stream(HeraConfig::paper_example());
        let mut uncached = stream(HeraConfig::paper_example().without_sim_cache());
        assert_eq!(cached.clusters(), uncached.clusters());
        assert_eq!(cached.merge_count(), uncached.merge_count());
        assert_eq!(uncached.sim_cache_size(), 0);
    }

    /// Mirrors the dataset's schemas into a session and returns the
    /// session-side schema ids in dataset order.
    fn mirror_schemas(session: &mut HeraSession, ds: &hera_types::Dataset) -> Vec<SchemaId> {
        ds.registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Stats rendering with the wall-clock fields zeroed — what must be
    /// bit-identical across an interrupted and an uninterrupted run.
    fn deterministic_stats(s: &RunStats) -> String {
        let mut s = s.clone();
        s.index_build_time = Default::default();
        s.resolve_time = Default::default();
        s.verify_time = Default::default();
        s.to_json().to_string_compact()
    }

    #[test]
    fn checkpoint_restore_midstream_is_continuation_equivalent() {
        let ds = motivating_example();
        let path =
            std::env::temp_dir().join(format!("hera-session-ckpt-{}.hera", std::process::id()));
        let records: Vec<_> = ds.iter().collect();

        let mut straight = HeraSession::builder(HeraConfig::paper_example()).build();
        let schemas = mirror_schemas(&mut straight, &ds);
        for rec in &records {
            straight
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            straight.resolve();
        }

        let mut first = HeraSession::builder(HeraConfig::paper_example()).build();
        let schemas = mirror_schemas(&mut first, &ds);
        for rec in &records[..3] {
            first
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            first.resolve();
        }
        first.checkpoint(&path).unwrap();
        drop(first);

        let mut resumed = HeraSession::restore(
            &path,
            HeraConfig::paper_example(),
            Arc::new(TypeDispatch::paper_default()),
        )
        .unwrap();
        for rec in &records[3..] {
            resumed
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            resumed.resolve();
        }
        std::fs::remove_file(&path).ok();

        assert_eq!(resumed.clusters(), straight.clusters());
        assert_eq!(resumed.merge_count(), straight.merge_count());
        assert_eq!(
            deterministic_stats(resumed.stats()),
            deterministic_stats(straight.stats())
        );
        assert_eq!(
            resumed.schema_matchings().len(),
            straight.schema_matchings().len()
        );
    }

    #[test]
    fn restore_rejects_xi_mismatch_with_typed_error() {
        let ds = motivating_example();
        let path =
            std::env::temp_dir().join(format!("hera-session-xi-{}.hera", std::process::id()));
        let mut session = HeraSession::builder(HeraConfig::paper_example()).build();
        let schemas = mirror_schemas(&mut session, &ds);
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        session.resolve();
        session.checkpoint(&path).unwrap();

        let skewed = HeraConfig::new(0.5, 0.9); // different xi
        let err = HeraSession::restore(&path, skewed, Arc::new(TypeDispatch::paper_default()))
            .err()
            .expect("xi mismatch must be rejected");
        assert!(matches!(err, HeraError::InvalidConfig(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_missing_file_is_io_error() {
        let err = HeraSession::restore(
            "/nonexistent/path/snapshot.hera",
            HeraConfig::paper_example(),
            Arc::new(TypeDispatch::paper_default()),
        )
        .err()
        .expect("missing file must fail");
        assert!(matches!(err, HeraError::Io(_)), "{err}");
    }

    // -- checkpoint retry and fault injection --------------------------

    use hera_faults::{points, FaultKind, FaultPlan, FaultRule, ManualClock};

    fn populated_session(builder: HeraSessionBuilder) -> HeraSession {
        let ds = motivating_example();
        let mut session = builder.build();
        let schemas = mirror_schemas(&mut session, &ds);
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        session.resolve();
        session
    }

    fn write_fault(point: &str, hits: Vec<u64>) -> FaultPlan {
        FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: point.into(),
                hits,
                kind: FaultKind::Error,
            }],
        }
    }

    #[test]
    fn checkpoint_retries_transient_faults_and_succeeds() {
        let path =
            std::env::temp_dir().join(format!("hera-session-retry-{}.hera", std::process::id()));
        // The sync stage fails on the first two write attempts only.
        let plan = write_fault(points::STORE_WRITE_SYNC, vec![1, 2]);
        let clock = Arc::new(ManualClock::new());
        let mut session = populated_session(
            HeraSession::builder(HeraConfig::paper_example())
                .faults(FaultInjector::new(&plan))
                .clock(clock.clone()),
        );
        session.checkpoint(&path).expect("third attempt succeeds");
        assert_eq!(clock.sleeps().len(), 2, "one backoff sleep per retry");
        assert_eq!(
            clock.sleeps(),
            vec![
                std::time::Duration::from_millis(5),
                std::time::Duration::from_millis(10)
            ]
        );
        // The snapshot on disk is complete and restorable.
        let resumed = HeraSession::restore(
            &path,
            HeraConfig::paper_example(),
            Arc::new(TypeDispatch::paper_default()),
        )
        .unwrap();
        assert_eq!(resumed.merge_count(), session.merge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_exhaustion_is_typed_and_session_survives() {
        let dir = std::env::temp_dir().join(format!("hera-session-exhaust-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.hera");
        // Every attempt fails: checkpoint_default allows 3.
        let plan = write_fault(points::STORE_WRITE_CREATE, vec![1, 2, 3, 4, 5, 6]);
        let clock = Arc::new(ManualClock::new());
        let mut session = populated_session(
            HeraSession::builder(HeraConfig::paper_example())
                .faults(FaultInjector::new(&plan))
                .clock(clock.clone()),
        );
        let merges_before = session.merge_count();
        let err = session.checkpoint(&path).unwrap_err();
        match &err {
            HeraError::CheckpointFailed { attempts, cause } => {
                assert_eq!(*attempts, 3);
                assert!(matches!(**cause, HeraError::Io(_)), "{cause}");
            }
            other => panic!("expected CheckpointFailed, got {other}"),
        }
        assert!(!path.exists(), "no file appears on total failure");
        assert!(!dir.join("snap.hera.tmp").exists(), "no stray tmp");
        // The session keeps working: resolve again and checkpoint later
        // (hits 4–6 also fire, so disable retries' fault by using a
        // fresh fault-free session write path via plan exhaustion).
        assert_eq!(session.merge_count(), merges_before);
        assert_eq!(session.resolve(), 0, "in-memory state intact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_non_retryable_fails_fast() {
        let path =
            std::env::temp_dir().join(format!("hera-session-failfast-{}.hera", std::process::id()));
        let plan = write_fault(points::STORE_WRITE_RENAME, vec![1]);
        let clock = Arc::new(ManualClock::new());
        let mut session = populated_session(
            HeraSession::builder(HeraConfig::paper_example())
                .faults(FaultInjector::new(&plan))
                .retry(hera_faults::BackoffPolicy::none())
                .clock(clock.clone()),
        );
        let err = session.checkpoint(&path).unwrap_err();
        assert!(
            matches!(err, HeraError::CheckpointFailed { attempts: 1, .. }),
            "{err}"
        );
        assert!(clock.sleeps().is_empty(), "none policy never sleeps");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_with_corrupt_read_fault_is_typed() {
        let path =
            std::env::temp_dir().join(format!("hera-session-bitrot-{}.hera", std::process::id()));
        let mut session = populated_session(HeraSession::builder(HeraConfig::paper_example()));
        session.checkpoint(&path).unwrap();
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: points::STORE_READ.into(),
                hits: vec![1],
                kind: FaultKind::Corrupt,
            }],
        };
        let err = HeraSession::builder(HeraConfig::paper_example())
            .faults(FaultInjector::new(&plan))
            .restore(&path)
            .err()
            .expect("bit rot must be rejected");
        assert!(matches!(err, HeraError::Corrupt(_)), "{err}");
        // The file itself is fine: a fault-free restore succeeds.
        HeraSession::builder(HeraConfig::paper_example())
            .restore(&path)
            .unwrap();
        std::fs::remove_file(&path).ok();
    }
}
