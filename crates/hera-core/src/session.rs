//! Streaming (incremental) entity resolution — HERA beyond the batch
//! Algorithm 2.
//!
//! The paper's framework is batch: build the index offline, iterate to a
//! fixpoint. Real heterogeneous sources *stream* — new exports arrive and
//! should resolve against everything already known without recomputing
//! from scratch. [`HeraSession`] maintains the algorithm's entire state
//! (incremental similarity join, value-pair index, super records,
//! union–find, schema voter) under record insertions:
//!
//! * [`HeraSession::add_record`] joins the new record's values against
//!   every live value, extends the index, and lifts the record into a
//!   super record;
//! * [`HeraSession::resolve`] runs compare-and-merge to a fixpoint, but
//!   only over groups touching records that changed since the last call
//!   (the same dirty-tracking argument the batch driver uses);
//! * decided schema matchings persist across insertions, so the session
//!   gets *better* at matching heterogeneous schemas as it ages — the
//!   schema-based method's intended long-run behavior.

use crate::config::HeraConfig;
use crate::simcache::SimCache;
use crate::super_record::SuperRecord;
use crate::verify::{InstanceVerifier, VerifyScratch};
use crate::voter::{DecidedMatching, SchemaVoter};
use hera_index::{UnionFind, ValuePairIndex};
use hera_join::IncrementalJoin;
use hera_sim::{TypeDispatch, ValueSimilarity};
use hera_types::{HeraError, Label, RecordId, Result, SchemaId, SchemaRegistry, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// Incremental HERA: owns the schema registry and all algorithm state.
pub struct HeraSession {
    config: HeraConfig,
    metric: Arc<dyn ValueSimilarity>,
    registry: SchemaRegistry,
    record_count: usize,
    index: ValuePairIndex,
    join: IncrementalJoin,
    supers: FxHashMap<u32, SuperRecord>,
    uf: UnionFind,
    voter: SchemaVoter,
    /// Records whose evidence changed since the last `resolve`.
    dirty: FxHashSet<u32>,
    merges: usize,
    /// Merge-aware `metric.sim` memo cache; persists across `resolve`
    /// calls, so a long-lived session keeps amortizing its metric work.
    cache: Option<SimCache>,
    /// Scratch for the sequential re-verifications of the apply phase.
    scratch: VerifyScratch,
    /// Journal recorder (disabled by default).
    recorder: hera_obs::Recorder,
    /// Compare-and-merge rounds executed over the session's lifetime —
    /// the monotonic `round` of its journal events.
    rounds: usize,
}

impl HeraSession {
    /// Creates an empty session with the paper-default metric.
    pub fn new(config: HeraConfig) -> Self {
        Self::with_metric(config, Arc::new(TypeDispatch::paper_default()))
    }

    /// Creates an empty session with a custom metric.
    pub fn with_metric(config: HeraConfig, metric: Arc<dyn ValueSimilarity>) -> Self {
        Self {
            join: IncrementalJoin::new(config.xi, 2, metric.clone()),
            cache: config.sim_cache.then(SimCache::new),
            scratch: VerifyScratch::new(),
            config,
            metric,
            registry: SchemaRegistry::new(),
            record_count: 0,
            index: ValuePairIndex::default(),
            supers: FxHashMap::default(),
            uf: UnionFind::new(0),
            voter: SchemaVoter::new(),
            dirty: FxHashSet::default(),
            merges: 0,
            recorder: hera_obs::Recorder::from_env(),
            rounds: 0,
        }
    }

    /// Attaches a journal recorder; every `resolve` round emits through
    /// it (see the `hera-obs` crate docs for the event schema).
    pub fn with_recorder(mut self, recorder: hera_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Registers a source schema (streaming sources can appear at any
    /// time).
    pub fn add_schema<S: Into<String>, I: IntoIterator<Item = S>>(
        &mut self,
        name: impl Into<String>,
        attrs: I,
    ) -> SchemaId {
        self.registry.add_schema(name, attrs)
    }

    /// Ingests one record under a registered schema: its values join
    /// against every live value and the index grows accordingly. Returns
    /// the record id. Call [`HeraSession::resolve`] to fold new evidence
    /// into entities (per record for lowest latency, or in batches for
    /// throughput).
    pub fn add_record(&mut self, schema: SchemaId, values: Vec<Value>) -> Result<RecordId> {
        if schema.index() >= self.registry.len() {
            return Err(HeraError::UnknownId(format!("{schema}")));
        }
        let expected = self.registry.schema(schema).arity();
        if values.len() != expected {
            return Err(HeraError::ArityMismatch {
                record: self.record_count as u32,
                expected,
                actual: values.len(),
            });
        }
        let rid = self.record_count as u32;
        self.record_count += 1;
        let pushed = self.uf.push();
        debug_assert_eq!(pushed, rid);

        // Lift into a super record (tracking attribute provenance).
        let schema_ref = self.registry.schema(schema);
        let fields: Vec<crate::super_record::Field> = values
            .iter()
            .zip(&schema_ref.attrs)
            .map(|(v, a)| crate::super_record::Field {
                values: if v.is_null() {
                    Vec::new()
                } else {
                    vec![v.clone()]
                },
                attrs: vec![a.id],
            })
            .collect();
        self.supers.insert(
            rid,
            SuperRecord {
                rid,
                fields,
                members: vec![rid],
            },
        );

        // Join each value against the live universe; labels of previously
        // merged records are already current (the join is relabeled on
        // every merge).
        let mut new_pairs = Vec::new();
        for (fid, v) in values.iter().enumerate() {
            if !v.is_null() {
                new_pairs.extend(self.join.insert(Label::new(rid, fid as u32, 0), v.clone()));
            }
        }
        for p in &new_pairs {
            self.dirty.insert(p.a.rid);
            self.dirty.insert(p.b.rid);
        }
        self.index.extend(new_pairs);
        Ok(RecordId::new(rid))
    }

    /// Runs compare-and-merge to a fixpoint over the dirty region.
    /// Returns the number of merges performed.
    ///
    /// Each iteration uses the same two-phase structure as the batch
    /// driver: a parallel snapshot phase verifies every surviving
    /// candidate root-pair against the iteration-start state, then a
    /// sequential apply phase merges in candidate order, re-verifying
    /// any pair whose super records changed under an earlier merge. The
    /// resolved entities are bit-identical for every
    /// [`HeraConfig::num_threads`] setting.
    pub fn resolve(&mut self) -> usize {
        let cfg = self.config.clone();
        let rec = self.recorder.clone();
        let verifier = InstanceVerifier::new(self.metric.as_ref(), cfg.xi, cfg.use_kuhn_munkres);
        let threads = crate::parallel::effective_threads(cfg.num_threads);
        let mut total = 0usize;
        let mut iterations = 0usize;
        while !self.dirty.is_empty() && iterations < cfg.max_iterations {
            iterations += 1;
            self.rounds += 1;
            let round = self.rounds;
            let round_merges_before = self.merges;
            let dirty = std::mem::take(&mut self.dirty);
            let groups: Vec<(u32, u32)> = self
                .index
                .record_pairs()
                .filter(|(i, j)| dirty.contains(i) || dirty.contains(j))
                .collect();

            // Phase A: dedup root-pairs in group order, prune by bounds,
            // and verify the survivors in parallel against the
            // iteration-start state (verification is read-only).
            let mut processed: FxHashSet<(u32, u32)> = FxHashSet::default();
            let mut verify_list: Vec<(u32, u32)> = Vec::new();
            for (i, j) in groups {
                let (ri, rj) = (self.uf.find(i), self.uf.find(j));
                if ri == rj {
                    continue;
                }
                let key = (ri.min(rj), ri.max(rj));
                if !processed.insert(key) {
                    continue;
                }
                let (si, sj) = (
                    self.supers[&key.0].informative_size(),
                    self.supers[&key.1].informative_size(),
                );
                let bounds = self.index.bounds(key.0, key.1, si, sj, cfg.bound_mode);
                if bounds.up < cfg.delta {
                    continue;
                }
                verify_list.push(key);
            }
            let tv = std::time::Instant::now();
            let verifications = {
                let (index, supers, registry, cache) =
                    (&self.index, &self.supers, &self.registry, &self.cache);
                let voter_opt = cfg.schema_voting.then_some(&self.voter);
                crate::parallel::par_map_with(
                    threads,
                    &verify_list,
                    VerifyScratch::new,
                    |scratch, &(a, b)| {
                        let v = verifier.verify_with(
                            index,
                            &supers[&a],
                            &supers[&b],
                            registry,
                            voter_opt,
                            cache.as_ref(),
                            scratch,
                        );
                        (v, std::mem::take(&mut scratch.delta))
                    },
                )
            };
            // Per-worker aggregation: verdicts are in input order for
            // every thread count, so one fold gives a deterministic span.
            let mut verify_agg = crate::driver::StageAgg::default();
            for (v, delta) in &verifications {
                verify_agg.add(v, delta);
            }
            verify_agg.emit(&rec, "resolve_verify", round);
            rec.timing("resolve_verify", Some(round), tv.elapsed());

            // Phase B: apply sequentially in candidate order; stale
            // verdicts (a side was merged earlier in this phase) are
            // recomputed against the current state.
            let mut touched: FxHashSet<u32> = FxHashSet::default();
            let mut reverify_agg = crate::driver::StageAgg::default();
            for (idx, &key) in verify_list.iter().enumerate() {
                // Memoize this snapshot verdict's metric calls up front,
                // even if the verdict goes stale below — the fills are
                // exact metric outputs, so the sequential re-verification
                // reuses them. Fills naming a since-folded record are
                // filtered out (only root labels stay valid across merges).
                if let Some(c) = self.cache.as_mut() {
                    let uf = &self.uf;
                    c.apply_if(&verifications[idx].1, |l| uf.find_const(l.rid) == l.rid);
                }
                let (ri, rj) = (self.uf.find(key.0), self.uf.find(key.1));
                if ri == rj {
                    continue;
                }
                let cur = (ri.min(rj), ri.max(rj));
                if cur != key && !processed.insert(cur) {
                    continue;
                }
                let stale = cur != key || touched.contains(&cur.0) || touched.contains(&cur.1);
                let reverified;
                let v = if stale {
                    let voter_opt = cfg.schema_voting.then_some(&self.voter);
                    reverified = verifier.verify_with(
                        &self.index,
                        &self.supers[&cur.0],
                        &self.supers[&cur.1],
                        &self.registry,
                        voter_opt,
                        self.cache.as_ref(),
                        &mut self.scratch,
                    );
                    reverify_agg.add(&reverified, &self.scratch.delta);
                    if let Some(c) = self.cache.as_mut() {
                        c.apply(&self.scratch.delta);
                    }
                    &reverified
                } else {
                    &verifications[idx].0
                };
                if v.sim < cfg.delta {
                    continue;
                }
                if cfg.schema_voting {
                    for &(lf, rf, _) in v.predicted() {
                        let left = &self.supers[&cur.0];
                        let right = &self.supers[&cur.1];
                        // Collect votes before mutating.
                        let la = left.fields[lf as usize].attrs.clone();
                        let ra = right.fields[rf as usize].attrs.clone();
                        for a in &la {
                            for b in &ra {
                                self.voter.add_vote(&self.registry, *a, *b);
                            }
                        }
                    }
                    let fresh =
                        self.voter
                            .decide(cfg.vote_prior, cfg.vote_error_threshold, cfg.vote_min_n);
                    if rec.enabled() {
                        for d in &fresh {
                            rec.schema_decided(
                                round,
                                &self.registry.attr_qualified_name(d.attr),
                                &self.registry.attr_qualified_name(d.partner),
                                d.up_error(),
                            );
                        }
                    }
                }
                // Merge.
                rec.merge(round, cur.0, cur.1, v.sim, v.matching.len());
                let k = self.uf.union(cur.0, cur.1);
                debug_assert_eq!(k, cur.0);
                let loser = self.supers.remove(&cur.1).expect("loser exists");
                let winner = self.supers.get_mut(&cur.0).expect("winner exists");
                let matching: Vec<(u32, u32)> =
                    v.matching.iter().map(|&(l, r, _)| (l, r)).collect();
                let remap = winner.absorb(&loser, &matching);
                self.index.merge(cur.0, cur.1, k, |l| remap.apply(l));
                if let Some(c) = self.cache.as_mut() {
                    c.merge(cur.0, cur.1, k, |l| remap.apply(l));
                }
                self.join.relabel(cur.0, cur.1, |l| remap.apply(l));
                self.dirty.insert(k);
                touched.insert(cur.0);
                touched.insert(cur.1);
                total += 1;
                self.merges += 1;
            }
            rec.span(
                "resolve_apply",
                Some(round),
                &[
                    ("merges", (self.merges - round_merges_before) as i64),
                    ("reverified", reverify_agg.pairs),
                    ("lookups", reverify_agg.lookups),
                ],
            );
            rec.round_end(
                round,
                (self.merges - round_merges_before) as i64,
                self.index.len() as i64,
                self.voter.open_buckets() as i64,
            );
        }
        rec.flush();
        total
    }

    /// Current entity label (super-record rid) of a record.
    pub fn entity_of(&self, rid: RecordId) -> u32 {
        self.uf.find_const(rid.raw())
    }

    /// All records grouped by current entity.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        self.uf.clusters()
    }

    /// Number of records ingested.
    pub fn len(&self) -> usize {
        self.record_count
    }

    /// True if no records were ingested.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Total merges performed so far.
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// Index size `|𝒱|` right now.
    pub fn index_size(&self) -> usize {
        self.index.len()
    }

    /// Entries currently held by the similarity memo cache (0 when the
    /// cache is disabled via [`HeraConfig::sim_cache`]).
    pub fn sim_cache_size(&self) -> usize {
        self.cache.as_ref().map_or(0, SimCache::len)
    }

    /// Schema matchings decided so far.
    pub fn schema_matchings(&self) -> Vec<DecidedMatching> {
        self.voter.decided()
    }

    /// The session's schema registry.
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hera, HeraConfig};
    use hera_types::motivating_example;

    /// Streams the motivating example record by record, resolving after
    /// each insertion; the final entities match the batch run.
    #[test]
    fn streaming_motivating_example() {
        let ds = motivating_example();
        let mut session = HeraSession::new(HeraConfig::paper_example());
        // Mirror the dataset's schemas.
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            session.resolve();
        }
        let clusters = session.clusters();
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        assert_eq!(
            session.entity_of(RecordId::new(0)),
            session.entity_of(RecordId::new(1))
        );
        assert_eq!(
            session.entity_of(RecordId::new(2)),
            session.entity_of(RecordId::new(4))
        );
    }

    /// Ingest-all-then-resolve reaches the same quality as the batch
    /// driver on the example.
    #[test]
    fn bulk_ingest_matches_batch() {
        let ds = motivating_example();
        let batch = Hera::new(HeraConfig::paper_example()).run(&ds);

        let mut session = HeraSession::new(HeraConfig::paper_example());
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        session.resolve();
        assert_eq!(session.clusters().len(), batch.entity_count());
        assert_eq!(session.merge_count(), batch.stats.merges);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut session = HeraSession::new(HeraConfig::paper_example());
        let s = session.add_schema("S", ["a", "b"]);
        let err = session.add_record(s, vec![Value::from("x")]).unwrap_err();
        assert!(matches!(err, HeraError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_schema_rejected() {
        let mut session = HeraSession::new(HeraConfig::paper_example());
        let err = session
            .add_record(SchemaId::new(3), vec![Value::from("x")])
            .unwrap_err();
        assert!(matches!(err, HeraError::UnknownId(_)));
    }

    #[test]
    fn empty_session() {
        let mut session = HeraSession::new(HeraConfig::paper_example());
        assert!(session.is_empty());
        assert_eq!(session.resolve(), 0);
        assert!(session.clusters().is_empty());
    }

    #[test]
    fn resolve_is_idempotent_without_new_evidence() {
        let ds = motivating_example();
        let mut session = HeraSession::new(HeraConfig::paper_example());
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        let first = session.resolve();
        assert!(first > 0);
        assert_eq!(session.resolve(), 0, "no new evidence, no new merges");
        assert_eq!(session.resolve(), 0);
    }

    #[test]
    fn session_accessors() {
        let mut session = HeraSession::new(HeraConfig::paper_example());
        let s = session.add_schema("S", ["name", "city"]);
        assert_eq!(session.registry().len(), 1);
        assert_eq!(session.registry().schema(s).arity(), 2);
        session
            .add_record(s, vec![Value::from("x y"), Value::from("LA")])
            .unwrap();
        assert_eq!(session.len(), 1);
        assert!(!session.is_empty());
        assert_eq!(session.index_size(), 0); // one record: nothing to pair
        assert_eq!(session.merge_count(), 0);
        assert_eq!(session.entity_of(RecordId::new(0)), 0);
    }

    #[test]
    fn session_index_stays_consistent() {
        let ds = motivating_example();
        let mut session = HeraSession::new(HeraConfig::paper_example());
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            session.resolve();
            session.index.check_invariants().unwrap();
            if let Some(c) = &session.cache {
                c.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn session_cache_on_off_agree() {
        let ds = motivating_example();
        let stream = |cfg: HeraConfig| {
            let mut session = HeraSession::new(cfg);
            let schemas: Vec<SchemaId> = ds
                .registry
                .schemas()
                .map(|s| {
                    session.add_schema(
                        s.name.clone(),
                        s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                    )
                })
                .collect();
            for rec in ds.iter() {
                session
                    .add_record(schemas[rec.schema.index()], rec.values.clone())
                    .unwrap();
                session.resolve();
            }
            session
        };
        let mut cached = stream(HeraConfig::paper_example());
        let mut uncached = stream(HeraConfig::paper_example().without_sim_cache());
        assert_eq!(cached.clusters(), uncached.clusters());
        assert_eq!(cached.merge_count(), uncached.merge_count());
        assert_eq!(uncached.sim_cache_size(), 0);
    }
}
