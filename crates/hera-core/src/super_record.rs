//! Super records (Definition 2) and the merge operation `⊕` (Example 2).

use hera_types::json::Json;
use hera_types::{Dataset, Label, Record, Result, SourceAttrId, Value};
use rustc_hash::FxHashMap;

/// One field of a super record: the set of values observed for (what HERA
/// believes is) one attribute of the entity, plus the source attributes
/// those values came from.
///
/// The attribute provenance is *not* part of the paper's Definition 2, but
/// the schema-based method (§IV-B) needs to know which source attributes a
/// field aggregates in order to cast votes; tracking it here keeps votes
/// exact under arbitrary merge orders.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Observed values (`f_i = {v_1, v_2, …}`), deduplicated by
    /// [`Value::same`] as in Fig. 2 (the two `John`s of `r1`/`r6` merge;
    /// `Electronic`/`electronics` are both kept).
    pub values: Vec<Value>,
    /// Source attributes whose values were folded into this field.
    pub attrs: Vec<SourceAttrId>,
}

impl Field {
    fn from_value(value: Value, attr: SourceAttrId) -> Self {
        Self {
            values: vec![value],
            attrs: vec![attr],
        }
    }

    /// True if the field already stores an equal value.
    fn position_of_same(&self, v: &Value) -> Option<usize> {
        self.values.iter().position(|x| x.same(v))
    }

    fn add_attr(&mut self, attr: SourceAttrId) {
        if !self.attrs.contains(&attr) {
            self.attrs.push(attr);
        }
    }
}

/// A super record `R = {f_1 … f_|R|}` (Definition 2).
///
/// A base record is the simplest super record: one value per field. Value
/// coordinates follow the index's label convention: value `vid` of field
/// `fid` of record `rid` is `self.fields[fid].values[vid]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperRecord {
    /// Record id — after merges, the union–find representative.
    pub rid: u32,
    /// The fields.
    pub fields: Vec<Field>,
    /// Base records folded into this super record (ascending rid).
    pub members: Vec<u32>,
}

impl SuperRecord {
    /// Lifts a base record, resolving each field's source attribute
    /// through the dataset's schema registry. Null fields are kept (they
    /// occupy a fid so labels align with the base record's positions) but
    /// carry no values.
    pub fn from_record(ds: &Dataset, rec: &Record) -> Self {
        let schema = ds.registry.schema(rec.schema);
        let fields = rec
            .values
            .iter()
            .zip(&schema.attrs)
            .map(|(v, a)| {
                if v.is_null() {
                    Field {
                        values: Vec::new(),
                        attrs: vec![a.id],
                    }
                } else {
                    Field::from_value(v.clone(), a.id)
                }
            })
            .collect();
        Self {
            rid: rec.id.raw(),
            fields,
            members: vec![rec.id.raw()],
        }
    }

    /// `|R|` — the field count, the denominator component of Definition 5.
    pub fn size(&self) -> usize {
        self.fields.len()
    }

    /// Number of fields holding at least one value. Equal to
    /// [`SuperRecord::size`] on heterogeneous data; smaller on exchanged records
    /// where nulls occupy fids. The driver uses this as Definition 5's
    /// denominator so that nulls (which carry no evidence) do not depress
    /// similarity.
    pub fn informative_size(&self) -> usize {
        self.fields.iter().filter(|f| !f.values.is_empty()).count()
    }

    /// Total number of stored values.
    pub fn value_count(&self) -> usize {
        self.fields.iter().map(|f| f.values.len()).sum()
    }

    /// The value at a label (which must belong to this record).
    pub fn value(&self, label: Label) -> &Value {
        debug_assert_eq!(label.rid, self.rid);
        &self.fields[label.fid as usize].values[label.vid as usize]
    }

    /// Encodes the super record as JSON, preserving field, value, and
    /// member order exactly (labels index into these vectors, so the
    /// order *is* part of the state).
    pub fn to_json(&self) -> Json {
        let fields = self
            .fields
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    (
                        "values".into(),
                        Json::Arr(f.values.iter().map(Value::to_json).collect()),
                    ),
                    (
                        "attrs".into(),
                        Json::Arr(
                            f.attrs
                                .iter()
                                .map(|a| Json::Int(i64::from(a.raw())))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("rid".into(), Json::Int(i64::from(self.rid))),
            ("fields".into(), Json::Arr(fields)),
            (
                "members".into(),
                Json::Arr(
                    self.members
                        .iter()
                        .map(|&m| Json::Int(i64::from(m)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a super record from [`SuperRecord::to_json`] output.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut fields = Vec::new();
        for f in json.expect("fields")?.as_arr()? {
            let mut values = Vec::new();
            for v in f.expect("values")?.as_arr()? {
                values.push(Value::from_json(v)?);
            }
            let mut attrs = Vec::new();
            for a in f.expect("attrs")?.as_arr()? {
                attrs.push(SourceAttrId::new(a.as_u32()?));
            }
            fields.push(Field { values, attrs });
        }
        let mut members = Vec::new();
        for m in json.expect("members")?.as_arr()? {
            members.push(m.as_u32()?);
        }
        Ok(Self {
            rid: json.expect("rid")?.as_u32()?,
            fields,
            members,
        })
    }

    /// Merges `other` into `self` (`self ⊕ other`, Example 2):
    ///
    /// * for each `(self_fid, other_fid)` in `matching` (the verified field
    ///   matching set, one-to-one), `other`'s values join the `self` field
    ///   — equal values deduplicate, distinct variants are all kept;
    /// * `other`'s unmatched fields are appended as new fields;
    /// * attribute provenance is unioned.
    ///
    /// Returns the label remap for index maintenance: every `(other.rid,
    /// fid, vid)` label maps to its new label under `self.rid` (labels of
    /// `self` are unchanged — appended values never displace existing
    /// ones). The remap also accepts `self` labels and returns them
    /// untouched, which is exactly the contract
    /// [`ValuePairIndex::merge`](hera_index::ValuePairIndex::merge) needs.
    pub fn absorb(&mut self, other: &SuperRecord, matching: &[(u32, u32)]) -> LabelRemap {
        debug_assert_ne!(self.rid, other.rid);
        let mut map: FxHashMap<Label, Label> = FxHashMap::default();
        let matched_of_other: FxHashMap<u32, u32> = matching.iter().map(|&(s, o)| (o, s)).collect();
        debug_assert_eq!(
            matched_of_other.len(),
            matching.len(),
            "field matching must be one-to-one"
        );
        // Attribute-identity consolidation: a field of `other` whose
        // provenance shares a SourceAttrId with a field of `self` is the
        // same attribute *by definition* (same schema, same position) —
        // no similarity evidence needed. Without this, corrupted or
        // missing values make the matcher skip such pairs and the super
        // record accumulates duplicate fields per attribute, inflating
        // `|R|` and suppressing every later similarity (field bloat).
        let mut attr_home: FxHashMap<SourceAttrId, u32> = FxHashMap::default();
        for (fid, field) in self.fields.iter().enumerate() {
            for &a in &field.attrs {
                attr_home.entry(a).or_insert(fid as u32);
            }
        }

        for (ofid, ofield) in other.fields.iter().enumerate() {
            let ofid = ofid as u32;
            let target_fid = match matched_of_other.get(&ofid) {
                Some(&sfid) => sfid,
                None => match ofield.attrs.iter().find_map(|a| attr_home.get(a)) {
                    Some(&sfid) => sfid,
                    None => {
                        // Genuinely new attribute: append as a new field.
                        let new_fid = self.fields.len() as u32;
                        self.fields.push(Field {
                            values: Vec::new(),
                            attrs: Vec::new(),
                        });
                        for &a in &ofield.attrs {
                            attr_home.entry(a).or_insert(new_fid);
                        }
                        new_fid
                    }
                },
            };
            let target = &mut self.fields[target_fid as usize];
            for attr in &ofield.attrs {
                target.add_attr(*attr);
            }
            for (ovid, v) in ofield.values.iter().enumerate() {
                let new_vid = match target.position_of_same(v) {
                    Some(pos) => pos as u32, // dedupe: equal value exists
                    None => {
                        target.values.push(v.clone());
                        (target.values.len() - 1) as u32
                    }
                };
                map.insert(
                    Label::new(other.rid, ofid, ovid as u32),
                    Label::new(self.rid, target_fid, new_vid),
                );
            }
        }

        let mut members = std::mem::take(&mut self.members);
        members.extend(&other.members);
        members.sort_unstable();
        members.dedup();
        self.members = members;

        LabelRemap {
            winner: self.rid,
            map,
        }
    }
}

/// Label rewrite produced by [`SuperRecord::absorb`].
#[derive(Debug, Clone)]
pub struct LabelRemap {
    winner: u32,
    map: FxHashMap<Label, Label>,
}

impl LabelRemap {
    /// Rewrites a label: loser labels go through the merge map, winner
    /// labels pass through unchanged.
    pub fn apply(&self, l: Label) -> Label {
        if l.rid == self.winner {
            l
        } else {
            *self
                .map
                .get(&l)
                .unwrap_or_else(|| panic!("label {l} not covered by merge remap"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::{motivating_example, RecordId};

    fn supers() -> Vec<SuperRecord> {
        let ds = motivating_example();
        ds.iter()
            .map(|r| SuperRecord::from_record(&ds, r))
            .collect()
    }

    #[test]
    fn lift_base_record() {
        let s = &supers()[0]; // r1: Customer I
        assert_eq!(s.size(), 5);
        assert_eq!(s.value_count(), 5);
        assert_eq!(s.value(Label::new(0, 0, 0)), &Value::from("John"));
        assert_eq!(s.members, vec![0]);
    }

    #[test]
    fn fig2_merge_r1_r6() {
        // R1 = r1 ⊕ r6 (0-based: records 0 and 5). Customer III fields
        // map: name→name(0), addr→address(1), mailbox→e-mail(2),
        // Tel unmatched, Con.Type→Con.Type(4).
        let ss = supers();
        let mut r1 = ss[0].clone();
        let r6 = &ss[5];
        let remap = r1.absorb(r6, &[(0, 0), (1, 1), (2, 2), (4, 4)]);
        // 5 original + 1 appended (Tel) = 6 fields.
        assert_eq!(r1.size(), 6);
        // name: "John" + "John" dedupes to one value.
        assert_eq!(r1.fields[0].values.len(), 1);
        // Con.Type: "Electronic" + "electronics" keeps both.
        assert_eq!(r1.fields[4].values.len(), 2);
        // Appended Tel field holds 831-432.
        assert_eq!(r1.fields[5].values, vec![Value::from("831-432")]);
        // Remap: r6's name value folded into (0,0,0).
        assert_eq!(remap.apply(Label::new(5, 0, 0)), Label::new(0, 0, 0));
        // r6's Con.Type got vid 1 in field 4.
        assert_eq!(remap.apply(Label::new(5, 4, 0)), Label::new(0, 4, 1));
        // r6's Tel moved to the new field 5.
        assert_eq!(remap.apply(Label::new(5, 3, 0)), Label::new(0, 5, 0));
        // Winner labels pass through.
        assert_eq!(remap.apply(Label::new(0, 2, 0)), Label::new(0, 2, 0));
        // Membership.
        assert_eq!(r1.members, vec![0, 5]);
    }

    #[test]
    fn merge_tracks_attr_provenance() {
        let ds = motivating_example();
        let ss = supers();
        let mut r1 = ss[0].clone();
        r1.absorb(&ss[5], &[(0, 0), (1, 1), (2, 2), (4, 4)]);
        // e-mail field now carries Customer I.e-mail AND Customer
        // III.work mailbox.
        let attrs = &r1.fields[2].attrs;
        assert_eq!(attrs.len(), 2);
        let names: Vec<String> = attrs
            .iter()
            .map(|&a| ds.registry.attr_qualified_name(a))
            .collect();
        assert!(names.contains(&"Customer I.e-mail".to_string()));
        assert!(names.contains(&"Customer III.work mailbox".to_string()));
    }

    #[test]
    fn empty_matching_appends_everything() {
        let ss = supers();
        let mut a = ss[0].clone(); // 5 fields
        let b = &ss[1]; // r2: Customer II, 3 fields
        let remap = a.absorb(b, &[]);
        assert_eq!(a.size(), 8);
        assert_eq!(remap.apply(Label::new(1, 2, 0)), Label::new(0, 7, 0));
    }

    #[test]
    fn chained_merges_accumulate_members() {
        let ss = supers();
        let mut a = ss[0].clone();
        a.absorb(&ss[5], &[(0, 0), (1, 1), (2, 2), (4, 4)]);
        let mut b = ss[1].clone();
        b.absorb(&ss[3], &[(0, 0)]);
        a.absorb(&b, &[(0, 0)]);
        assert_eq!(a.members, vec![0, 1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn remap_rejects_unknown_foreign_label() {
        let ss = supers();
        let mut a = ss[0].clone();
        let remap = a.absorb(&ss[5], &[(0, 0)]);
        remap.apply(Label::new(3, 0, 0)); // rid 3 never merged
    }

    proptest::proptest! {
        /// For arbitrary merges: the remap is total over the loser's
        /// labels and value-preserving — the relabeled coordinate holds
        /// an equal value in the merged record. This is exactly what
        /// Proposition 3 needs from index maintenance.
        #[test]
        fn absorb_remap_is_total_and_value_preserving(
            seed in proptest::prelude::any::<u64>(),
            n_match in 0usize..4,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let ds = motivating_example();
            let all: Vec<SuperRecord> = ds
                .iter()
                .map(|r| SuperRecord::from_record(&ds, r))
                .collect();
            let mut winner = all[rng.gen_range(0..3)].clone();
            let loser = all[rng.gen_range(3..6)].clone();
            // Random one-to-one matching between field ranges.
            let mut matching: Vec<(u32, u32)> = Vec::new();
            let mut used_w: Vec<u32> = Vec::new();
            let mut used_l: Vec<u32> = Vec::new();
            for _ in 0..n_match {
                let w = rng.gen_range(0..winner.size() as u32);
                let l = rng.gen_range(0..loser.size() as u32);
                if !used_w.contains(&w) && !used_l.contains(&l) {
                    used_w.push(w);
                    used_l.push(l);
                    matching.push((w, l));
                }
            }
            let snapshot = loser.clone();
            let remap = winner.absorb(&loser, &matching);
            for (fid, field) in snapshot.fields.iter().enumerate() {
                for (vid, v) in field.values.iter().enumerate() {
                    let old = Label::new(snapshot.rid, fid as u32, vid as u32);
                    let new = remap.apply(old);
                    proptest::prop_assert_eq!(new.rid, winner.rid);
                    let stored = winner.value(new);
                    proptest::prop_assert!(stored.same(v),
                        "label {} → {}: {:?} vs {:?}", old, new, stored, v);
                }
            }
            // Winner labels pass through unchanged.
            let w0 = Label::new(winner.rid, 0, 0);
            proptest::prop_assert_eq!(remap.apply(w0), w0);
        }
    }

    #[test]
    fn null_fields_hold_no_values_but_keep_fid_alignment() {
        use hera_types::{CanonAttrId, DatasetBuilder, EntityId};
        let mut b = DatasetBuilder::new("t");
        let s = b.add_schema(
            "S",
            [("x", CanonAttrId::new(0)), ("y", CanonAttrId::new(1))],
        );
        b.add_record(s, vec![Value::Null, Value::from("v")], EntityId::new(0))
            .unwrap();
        let ds = b.build();
        let sr = SuperRecord::from_record(&ds, ds.record(RecordId::new(0)));
        assert_eq!(sr.size(), 2);
        assert_eq!(sr.fields[0].values.len(), 0);
        assert_eq!(sr.value(Label::new(0, 1, 0)), &Value::from("v"));
    }
}
