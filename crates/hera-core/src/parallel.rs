//! Scoped worker pool behind HERA's parallel stages.
//!
//! Both parallel stages of the pipeline — value-pair verification in the
//! similarity join (`hera-join`) and candidate verification in the
//! compare-and-merge rounds — are *maps over an immutable snapshot*: each
//! work item is verified against state frozen at the start of the stage,
//! and all mutation happens afterwards, sequentially, in a fixed order.
//! That structure is what makes the results bit-identical for every
//! thread count: threads only change *when* a verdict is computed, never
//! *what* it is computed from, and [`par_map`] returns verdicts in input
//! order regardless of scheduling.
//!
//! The pool is built on `std::thread::scope` — workers borrow the
//! snapshot directly, no `'static` bounds, no channels, and the scope
//! joins every worker before returning, so a panic in one worker
//! propagates instead of poisoning later rounds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Below this many items the spawn overhead outweighs the work; run the
/// map inline instead.
const MIN_PARALLEL_ITEMS: usize = 32;

/// Work-stealing granularity: each thread claims blocks of roughly
/// `len / (threads * BLOCKS_PER_THREAD)` items, so uneven verification
/// costs (graph sizes vary wildly across record pairs) still balance.
const BLOCKS_PER_THREAD: usize = 4;

/// Resolves a requested worker count: `0` means "auto" (all available
/// cores), anything else is taken literally. Always at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning the
/// results **in input order**.
///
/// Scheduling is dynamic (workers steal fixed-size blocks off a shared
/// counter) but the output is deterministic: position `i` of the result
/// always holds `f(&items[i])`. With `threads <= 1`, or when `items` is
/// too small to be worth spawning for, the map runs inline on the calling
/// thread — the result is identical either way.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(threads, items, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker mutable scratch state.
///
/// `init` builds one fresh state per worker thread (one total on the inline
/// path); `f` receives `&mut` access to its worker's state alongside each
/// item. This is how the verification stage reuses allocation-heavy scratch
/// buffers across items without sharing them across threads. The state must
/// not influence results (scratch, caches of pure functions) — determinism
/// still requires `f(&mut s, &items[i])` to equal `f(&mut fresh, &items[i])`
/// for the output to be thread-count-invariant.
pub fn par_map_with<T, U, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() < MIN_PARALLEL_ITEMS {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let block = items.len().div_ceil(threads * BLOCKS_PER_THREAD).max(1);
    let next = AtomicUsize::new(0);
    let finished: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut state = init();
                loop {
                    let start = next.fetch_add(block, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + block).min(items.len());
                    let out: Vec<U> = items[start..end]
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect();
                    finished.lock().unwrap().push((start, out));
                }
            });
        }
    });
    let mut blocks = finished.into_inner().unwrap();
    blocks.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(items.len());
    for (_, out) in blocks {
        result.extend(out);
    }
    debug_assert_eq!(result.len(), items.len());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_detect_is_positive() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8] {
            assert_eq!(par_map(threads, &items, |&x| x * x), expected);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn balances_uneven_work() {
        // Costs skewed heavily toward the front of the input; order must
        // survive dynamic scheduling.
        let items: Vec<usize> = (0..2_000).collect();
        let f = |&i: &usize| {
            let spins = if i < 50 { 20_000 } else { 10 };
            (0..spins).fold(i as u64, |a, b| a.wrapping_add(b))
        };
        let seq: Vec<u64> = items.iter().map(f).collect();
        assert_eq!(par_map(4, &items, f), seq);
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        // State must be per-worker scratch, not shared: count how many
        // inits ran and verify the map is still order-preserving.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..5_000).collect();
        let out = par_map_with(
            4,
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |buf, &x| {
                buf.clear();
                buf.extend([x, x]);
                buf.iter().sum::<u64>()
            },
        );
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u32> = (0..40).collect();
        let out = par_map(64, &items, |&x| x + 1);
        assert_eq!(out, (1..41).collect::<Vec<u32>>());
    }
}
