//! HERA — the Heterogeneous Entity Resolution Algorithm (§II–§V).
//!
//! This crate assembles the substrates (`hera-sim`, `hera-join`,
//! `hera-index`, `hera-matching`) into the paper's system:
//!
//! * [`SuperRecord`] — the merged representation of co-referring records
//!   (Definition 2) with the `⊕` merge operation (Example 2);
//! * [`InstanceVerifier`] — record similarity without schema matchings
//!   (§IV-A): index-assisted similar-field-pair retrieval, graph
//!   simplification, Kuhn–Munkres field matching, Definition 5 scoring;
//! * [`SchemaVoter`] — majority voting over field-matching predictions
//!   with the Chernoff-style error bound of Theorem 2 (§IV-B), feeding
//!   decided attribute matchings back into verification;
//! * [`Hera`] — the iterative compare-and-merge driver (Algorithm 2) with
//!   candidate generation, direct decisions, verification, merging, and
//!   index maintenance;
//! * [`parallel`] — the scoped worker pool behind the parallel join and
//!   verification stages (deterministic: results are bit-identical for
//!   every thread count);
//! * [`SimCache`] — merge-aware memoization of `metric.sim` on the
//!   verification hot path, invalidated/re-homed through the same label
//!   remap the index uses, populated deterministically in the sequential
//!   apply phase;
//! * [`RunStats`] — the counters behind Table II, Fig. 10 and Fig. 12.
//!
//! ```
//! use hera_core::{Hera, HeraConfig};
//! use hera_types::motivating_example;
//!
//! let dataset = motivating_example();
//! let result = Hera::builder(HeraConfig::new(0.5, 0.5)).build().run(&dataset)?;
//! // r1, r2, r4, r6 (1-based) end up in one entity; r3, r5 in another.
//! assert_eq!(result.entity_of.len(), 6);
//! assert_eq!(result.entity_count(), 2);
//! # Ok::<(), hera_types::HeraError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod config;
mod driver;
pub mod parallel;
mod session;
mod simcache;
mod stats;
mod super_record;
mod verify;
mod voter;

pub use chaos::{check_no_torn_state, run_chaos, ChaosConfig, ChaosReport, ChaosVerdict};
pub use config::HeraConfig;
pub use driver::{Hera, HeraBuilder, HeraResult};
pub use session::{
    HeraSession, HeraSessionBuilder, MergeEvent, ProgressiveReport, ResolveBudget, ResolveStream,
};
pub use simcache::{SimCache, SimDelta};
pub use stats::RunStats;
pub use super_record::{Field, SuperRecord};
pub use verify::{InstanceVerifier, Verification, VerifyScratch};
pub use voter::{vote_error_bound, DecidedMatching, SchemaVoter};

pub use hera_block::{Blocker, BlockingScheme};
pub use hera_index::BoundMode;
pub use hera_obs::{JournalBuffer, Recorder};
