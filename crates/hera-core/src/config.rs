//! HERA configuration.

use hera_block::BlockingScheme;
use hera_index::BoundMode;

/// Tuning knobs for [`Hera`](crate::Hera) (Algorithm 2's inputs plus the
/// engineering options the paper leaves implicit).
#[derive(Debug, Clone)]
pub struct HeraConfig {
    /// Record-similarity threshold δ: super records with `Sim ≥ δ` merge.
    pub delta: f64,
    /// Value-similarity threshold ξ: value pairs below ξ are not indexed
    /// and field pairs below ξ are not matching candidates.
    pub xi: f64,
    /// Bound derivation for candidate generation (Algorithm 1 flavor).
    pub bound_mode: BoundMode,
    /// Run the schema-based method (§IV-B). Disable for the A3 ablation.
    pub schema_voting: bool,
    /// Prior `p = Pr(x = x*)` of Theorem 2 — the assumed probability that
    /// a single field-matching prediction is correct. The paper's worked
    /// example uses 0.8.
    pub vote_prior: f64,
    /// Error-probability threshold ρ: a majority vote is promoted to a
    /// decided schema matching once `UP_error < ρ`.
    pub vote_error_threshold: f64,
    /// Minimum number of votes before a matching can be decided (guards
    /// the bound's small-`n` regime).
    pub vote_min_n: u32,
    /// Safety cap on compare-and-merge iterations. Rounds are chunked
    /// (the progressive scheduler verifies at most `ROUND_CHUNK`
    /// candidates per round), so the cap must scale with frontier size /
    /// chunk, not with the paper's Table II `k`.
    pub max_iterations: usize,
    /// Run Kuhn–Munkres after graph simplification (true, the paper) or
    /// fall back to greedy matching (the A2 ablation's cheap arm).
    pub use_kuhn_munkres: bool,
    /// Use the q-gram prefix filter inside the similarity join.
    pub prefix_filter: bool,
    /// Run full index-invariant checks after every iteration (normalized
    /// keys, similarity-descending groups, partner symmetry, counts).
    /// Costs a full index scan per iteration — for tests and debugging.
    pub validate_index: bool,
    /// Worker threads for the parallel stages (join verification and
    /// candidate verification). `0` auto-detects the available cores.
    /// Results are bit-identical for every setting — see
    /// [`crate::parallel`].
    pub num_threads: usize,
    /// Memoize `metric.sim` results across rounds in a merge-aware cache
    /// ([`crate::SimCache`]). Results are bit-identical on or off — the
    /// cache stores exact metric outputs — so this is purely a speed
    /// knob; disable to measure the uncached baseline.
    pub sim_cache: bool,
    /// Candidate generation ahead of the similarity join.
    /// [`BlockingScheme::None`] (the default) keeps the paper-exact
    /// all-pairs enumeration — every existing result is bit-identical.
    /// Any other scheme runs a blocking + meta-blocking pass (see the
    /// `hera-block` crate) and restricts the join to the blocked record
    /// pairs: sub-quadratic, at a measured pair-completeness cost.
    pub blocking: BlockingScheme,
}

impl HeraConfig {
    /// Creates a config with the two thresholds of Algorithm 2 and paper
    /// defaults everywhere else (ξ/δ both 0.5 in the worked example; prior
    /// 0.8 and the 0.6 error threshold come from the §IV-B example).
    pub fn new(delta: f64, xi: f64) -> Self {
        assert!((0.0..=1.0).contains(&delta), "delta must be in [0,1]");
        assert!((0.0..=1.0).contains(&xi), "xi must be in [0,1]");
        Self {
            delta,
            xi,
            bound_mode: BoundMode::Sound,
            schema_voting: true,
            vote_prior: 0.8,
            vote_error_threshold: 0.6,
            vote_min_n: 3,
            max_iterations: 4096,
            use_kuhn_munkres: true,
            prefix_filter: true,
            validate_index: false,
            num_threads: 0,
            sim_cache: true,
            blocking: BlockingScheme::None,
        }
    }

    /// Paper's worked-example configuration: δ = ξ = 0.5.
    pub fn paper_example() -> Self {
        Self::new(0.5, 0.5)
    }

    /// Selects the bound mode.
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_mode = mode;
        self
    }

    /// Disables the schema-based method.
    pub fn without_schema_voting(mut self) -> Self {
        self.schema_voting = false;
        self
    }

    /// Replaces Kuhn–Munkres with greedy matching in verification.
    pub fn with_greedy_matching(mut self) -> Self {
        self.use_kuhn_munkres = false;
        self
    }

    /// Enables per-iteration index-invariant validation (tests/debug).
    pub fn with_index_validation(mut self) -> Self {
        self.validate_index = true;
        self
    }

    /// Sets the worker-thread count for the parallel stages (`0` = auto).
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Disables the merge-aware similarity memo cache (baseline runs).
    pub fn without_sim_cache(mut self) -> Self {
        self.sim_cache = false;
        self
    }

    /// Selects the blocking scheme for candidate generation
    /// ([`BlockingScheme::None`] restores the exact all-pairs join).
    pub fn with_blocking(mut self, blocking: BlockingScheme) -> Self {
        self.blocking = blocking;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = HeraConfig::paper_example();
        assert_eq!(c.delta, 0.5);
        assert_eq!(c.xi, 0.5);
        assert_eq!(c.bound_mode, BoundMode::Sound);
        assert!(c.schema_voting);
        assert!(c.use_kuhn_munkres);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn bad_delta() {
        HeraConfig::new(1.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "xi")]
    fn bad_xi() {
        HeraConfig::new(0.5, -0.1);
    }

    #[test]
    fn blocking_defaults_to_none() {
        assert_eq!(HeraConfig::paper_example().blocking, BlockingScheme::None);
        let c = HeraConfig::paper_example().with_blocking(BlockingScheme::token());
        assert_eq!(c.blocking.name(), "token");
    }

    #[test]
    fn builder_toggles() {
        let c = HeraConfig::paper_example()
            .without_schema_voting()
            .with_greedy_matching()
            .with_bound_mode(BoundMode::Paper)
            .with_threads(4)
            .without_sim_cache();
        assert!(!c.schema_voting);
        assert!(!c.use_kuhn_munkres);
        assert_eq!(c.bound_mode, BoundMode::Paper);
        assert_eq!(c.num_threads, 4);
        assert!(!c.sim_cache);
        assert!(HeraConfig::paper_example().sim_cache);
    }
}
