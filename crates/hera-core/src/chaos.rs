//! The chaos harness: streaming resolution under a deterministic fault
//! plan, and the *no-torn-state* invariant check built on top of it.
//!
//! [`run_chaos`] drives a [`HeraSession`] over a dataset exactly the way
//! the CLI's streaming mode does — ingest, resolve, checkpoint every `k`
//! records — but with a [`FaultPlan`]'s injector threaded through every
//! IO edge (snapshot writes and reads, the journal sink) and with an
//! optional simulated *crash*: at a chosen record the in-memory session
//! is dropped on the floor and the run recovers from its last good
//! checkpoint, just as a restarted process would.
//!
//! [`check_no_torn_state`] is the invariant the chaos property test and
//! `hera-cli faults replay` both assert: under *any* fault plan, a run
//! either
//!
//! 1. **completes with entities bit-identical to the fault-free run**
//!    (degraded sinks and failed checkpoints are absorbed), or
//! 2. **stops with a typed error**, after which restoring its last good
//!    checkpoint fault-free and replaying the remaining records
//!    reproduces the fault-free result exactly;
//!
//! and in both cases no partial snapshot (`.tmp`) file is left behind and
//! the journal that was written stays parseable. Panics and torn on-disk
//! state are the failures this harness exists to rule out.

use crate::config::HeraConfig;
use crate::session::{HeraSession, ResolveBudget};
use hera_faults::{BackoffPolicy, FaultInjector, FaultPlan, FiredFault, ManualClock};
use hera_types::{Dataset, HeraError, SchemaId};
use std::path::Path;
use std::sync::Arc;

/// How [`run_chaos`] drives the session.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Resolution config for every session the run builds.
    pub config: HeraConfig,
    /// Checkpoint after every `checkpoint_every` ingested records
    /// (0 disables checkpointing).
    pub checkpoint_every: usize,
    /// Simulate a crash immediately before ingesting this record index:
    /// the session is dropped and the run recovers from its last good
    /// checkpoint (or restarts from scratch when none exists).
    pub crash_after: Option<usize>,
    /// Treat a failed checkpoint as fatal (surface the typed
    /// [`HeraError::CheckpointFailed`]) instead of degrading gracefully
    /// (count it and keep resolving from in-memory state).
    pub strict_checkpoints: bool,
    /// Ingest only the first `upto` records (`None` = whole dataset).
    pub upto: Option<usize>,
    /// Per-record comparison budget: resolve via
    /// [`HeraSession::resolve_progressive`] with this many comparisons
    /// after each ingest instead of running to the fixpoint (`None` =
    /// unlimited, the classic behavior). Deferred work stays on the
    /// frontier and is picked up by later per-record calls, so torn-state
    /// checking covers budgeted (progressive) runs too.
    pub resolve_budget: Option<u64>,
}

impl ChaosConfig {
    /// A chaos run with checkpoints every `k` records and no crash.
    pub fn new(config: HeraConfig, checkpoint_every: usize) -> Self {
        Self {
            config,
            checkpoint_every,
            crash_after: None,
            strict_checkpoints: false,
            upto: None,
            resolve_budget: None,
        }
    }

    fn resolve_step(&self, session: &mut HeraSession) {
        match self.resolve_budget {
            Some(b) => {
                session.resolve_progressive(ResolveBudget::comparisons(b));
            }
            None => {
                session.resolve();
            }
        }
    }

    fn n_records(&self, ds: &Dataset) -> usize {
        self.upto.map_or(ds.len(), |u| u.min(ds.len()))
    }
}

/// What a chaos run did and where it ended.
#[derive(Debug)]
pub struct ChaosReport {
    /// Final entity label per record — present iff the run completed.
    pub labels: Option<Vec<u32>>,
    /// The typed error that stopped the run, if it did not complete.
    pub error: Option<HeraError>,
    /// Checkpoints that failed and were absorbed (non-strict mode).
    pub checkpoint_failures: usize,
    /// Recoveries performed (restores from a checkpoint, plus
    /// from-scratch restarts after a crash with no checkpoint).
    pub restores: usize,
    /// Records covered by the last checkpoint that reached disk.
    pub last_good: Option<usize>,
    /// True when the journal sink degraded during the run.
    pub sink_degraded: bool,
    /// Every fault that actually fired, in firing order.
    pub fired: Vec<FiredFault>,
    /// The journal the run's recorder captured (JSON Lines).
    pub journal: String,
}

impl ChaosReport {
    /// True when the run ingested and resolved everything.
    pub fn completed(&self) -> bool {
        self.labels.is_some()
    }
}

/// Mirrors the dataset's schemas into the session, returning session-side
/// ids in dataset order (identical across rebuilds and restores, because
/// registration order is identical).
fn mirror_schemas(session: &mut HeraSession, ds: &Dataset) -> Vec<SchemaId> {
    ds.registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect()
}

fn build_session(
    cfg: &ChaosConfig,
    injector: &FaultInjector,
    recorder: &hera_obs::Recorder,
) -> HeraSession {
    HeraSession::builder(cfg.config.clone())
        .faults(injector.clone())
        .recorder(recorder.clone())
        .retry(BackoffPolicy::checkpoint_default())
        // Chaos runs never sleep for real: backoff delays are recorded,
        // not slept, so 256 property cases stay fast.
        .clock(Arc::new(ManualClock::new()))
        .build()
}

/// Final entity label of every ingested record.
fn labels_of(session: &HeraSession, n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|rid| session.entity_of(hera_types::RecordId::new(rid)))
        .collect()
}

/// Streams `ds` through a session while `plan`'s injector attacks the IO
/// edges; checkpoints land at `snapshot_path`. Never panics: every fault
/// either degrades gracefully or surfaces as the report's typed error.
pub fn run_chaos(
    ds: &Dataset,
    cfg: &ChaosConfig,
    plan: &FaultPlan,
    snapshot_path: &Path,
) -> ChaosReport {
    let injector = FaultInjector::new(plan);
    let (recorder, journal) = hera_obs::Recorder::to_memory();
    let recorder = recorder.deterministic().with_faults(injector.clone());
    let n = cfg.n_records(ds);

    let mut session = build_session(cfg, &injector, &recorder);
    let mut schemas = mirror_schemas(&mut session, ds);
    let mut checkpoint_failures = 0usize;
    let mut restores = 0usize;
    let mut last_good: Option<usize> = None;
    let mut crashed = false;
    let mut error: Option<HeraError> = None;

    let mut i = 0usize;
    while i < n {
        if !crashed && cfg.crash_after == Some(i) {
            // The crash: the in-memory session is abandoned (replaced
            // below), exactly what a killed process loses.
            crashed = true;
            restores += 1;
            match last_good {
                Some(_) => {
                    match HeraSession::builder(cfg.config.clone())
                        .faults(injector.clone())
                        .recorder(recorder.clone())
                        .clock(Arc::new(ManualClock::new()))
                        .restore(snapshot_path)
                    {
                        Ok(s) => {
                            session = s;
                            // Resume from whatever the snapshot covers.
                            // That can exceed `last_good`: a checkpoint
                            // that failed only at the directory sync had
                            // already renamed a complete snapshot into
                            // place, so disk is a *lower* bound, not an
                            // exact match.
                            i = session.len();
                        }
                        Err(e) => {
                            // Recovery itself failed (e.g. a read fault):
                            // the run stops with the typed error.
                            error = Some(e);
                            break;
                        }
                    }
                }
                None => {
                    // Nothing durable yet: a restarted process replays the
                    // stream from the beginning.
                    session = build_session(cfg, &injector, &recorder);
                    schemas = mirror_schemas(&mut session, ds);
                    i = 0;
                }
            }
            continue;
        }

        let rec = &ds.records[i];
        if let Err(e) = session.add_record(schemas[rec.schema.index()], rec.values.clone()) {
            error = Some(e);
            break;
        }
        cfg.resolve_step(&mut session);
        i += 1;

        if cfg.checkpoint_every > 0 && i.is_multiple_of(cfg.checkpoint_every) {
            match session.checkpoint(snapshot_path) {
                Ok(()) => last_good = Some(i),
                Err(e @ HeraError::CheckpointFailed { .. }) if !cfg.strict_checkpoints => {
                    // Graceful degradation: the in-memory session is
                    // intact, so resolution continues; only durability
                    // suffered.
                    checkpoint_failures += 1;
                    let _ = e;
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
    }

    let labels = if error.is_none() {
        Some(labels_of(&session, n))
    } else {
        None
    };
    ChaosReport {
        labels,
        error,
        checkpoint_failures,
        restores,
        last_good,
        sink_degraded: recorder.degraded(),
        fired: injector.fired(),
        journal: journal.contents(),
    }
}

/// Outcome of [`check_no_torn_state`].
#[derive(Debug)]
pub struct ChaosVerdict {
    /// True when every invariant held.
    pub ok: bool,
    /// Human-readable explanation when `ok` is false (empty otherwise).
    pub detail: String,
    /// The faulted run's report, for diagnostics.
    pub report: ChaosReport,
}

/// Runs `plan` against `ds` inside `dir` and checks the no-torn-state
/// invariant (module docs): bit-identical completion or typed error plus
/// clean recovery, with no partial snapshot files left in `dir`.
pub fn check_no_torn_state(
    ds: &Dataset,
    cfg: &ChaosConfig,
    plan: &FaultPlan,
    dir: &Path,
) -> ChaosVerdict {
    let n = cfg.n_records(ds);

    // Reference: the same schedule with no faults and no crash.
    let mut ref_cfg = cfg.clone();
    ref_cfg.crash_after = None;
    let ref_report = run_chaos(ds, &ref_cfg, &FaultPlan::none(), &dir.join("ref.hera"));
    let reference = match ref_report.labels {
        Some(l) => l,
        None => {
            return ChaosVerdict {
                detail: format!("fault-free reference run failed: {:?}", ref_report.error),
                ok: false,
                report: ref_report,
            }
        }
    };

    let snapshot = dir.join("chaos.hera");
    let report = run_chaos(ds, cfg, plan, &snapshot);
    let fail = |detail: String, report: ChaosReport| ChaosVerdict {
        ok: false,
        detail,
        report,
    };

    // Invariant: whatever the faults did, the journal that was written
    // stays parseable (degradation truncates it, never corrupts it).
    if let Err(e) = hera_obs::validate(&report.journal) {
        return fail(format!("journal is not trace-check-clean: {e}"), report);
    }

    // Invariant: no partial snapshot file survives, whatever happened.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".tmp") {
                return fail(format!("partial snapshot left behind: {name:?}"), report);
            }
        }
    }

    match (&report.labels, &report.error) {
        (Some(labels), None) => {
            if *labels != reference {
                return fail(
                    format!(
                        "completed run diverged from fault-free reference\n  got: {labels:?}\n  ref: {reference:?}"
                    ),
                    report,
                );
            }
        }
        (None, Some(_)) => {
            // Typed error: recovery from the last good checkpoint —
            // fault-free this time — must reproduce the reference.
            if let Some(covered) = report.last_good {
                let resumed = HeraSession::builder(cfg.config.clone()).restore(&snapshot);
                let mut session = match resumed {
                    Ok(s) => s,
                    Err(e) => {
                        return fail(
                            format!("last good checkpoint does not restore cleanly: {e}"),
                            report,
                        )
                    }
                };
                // Disk may cover more than `covered`: a checkpoint that
                // failed only at the directory sync still renamed a
                // complete snapshot into place. Anything *less* than the
                // last reported-good checkpoint (or beyond the stream)
                // is torn state.
                let got = session.len();
                if got < covered || got > n {
                    return fail(
                        format!("restored snapshot covers {got} records, outside [{covered}, {n}]"),
                        report,
                    );
                }
                // The restored registry was mirrored from `ds` in dataset
                // order, so session schema ids coincide with dataset ids.
                for rec in &ds.records[got..n] {
                    if let Err(e) = session.add_record(rec.schema, rec.values.clone()) {
                        return fail(
                            format!("fault-free continuation failed to ingest: {e}"),
                            report,
                        );
                    }
                    cfg.resolve_step(&mut session);
                }
                let labels = labels_of(&session, n);
                if labels != reference {
                    return fail(
                        format!(
                            "recovery from last good checkpoint diverged\n  got: {labels:?}\n  ref: {reference:?}"
                        ),
                        report,
                    );
                }
            }
        }
        (Some(_), Some(_)) | (None, None) => {
            return fail("report is internally inconsistent".into(), report)
        }
    }

    ChaosVerdict {
        ok: true,
        detail: String::new(),
        report,
    }
}
