//! Graph simplification (§IV-A) and connected-component decomposition.

use crate::graph::{BipartiteGraph, Edge};
use crate::scratch::MatchScratch;
use rustc_hash::FxHashMap;

/// Result of [`simplify`].
#[derive(Debug, Clone)]
pub struct Simplified {
    /// *Mapped edges* `ℰ`: edges whose two endpoints both had degree one.
    /// By Theorem 1 they belong to a maximum-weight matching (weights are
    /// positive), so they are decided without running Kuhn–Munkres.
    pub mapped_edges: Vec<Edge>,
    /// The simplified graph `G′` that still needs solving.
    pub remaining: BipartiteGraph,
}

/// Peels off every edge `e = (x, y)` with `d(x) = d(y) = 1`.
///
/// Note the paper applies the degree test on the *original* graph only (one
/// pass): removing a mapped edge cannot reduce any other node's degree,
/// because both endpoints had no other incident edge, so one pass reaches
/// the fixpoint.
pub fn simplify(graph: &BipartiteGraph) -> Simplified {
    let edges = graph.edges();
    let mut deg_l: FxHashMap<u32, u32> = FxHashMap::default();
    let mut deg_r: FxHashMap<u32, u32> = FxHashMap::default();
    for e in &edges {
        *deg_l.entry(e.left).or_insert(0) += 1;
        *deg_r.entry(e.right).or_insert(0) += 1;
    }
    let mut mapped_edges = Vec::new();
    let mut remaining = BipartiteGraph::new();
    for e in edges {
        if deg_l[&e.left] == 1 && deg_r[&e.right] == 1 {
            mapped_edges.push(e);
        } else {
            remaining.add_edge(e.left, e.right, e.weight);
        }
    }
    Simplified {
        mapped_edges,
        remaining,
    }
}

/// [`simplify`] on caller-provided scratch: peels mapped edges into
/// scratch-owned buffers and returns `(mapped_edges, remaining)` borrows —
/// identical content, no per-call allocation.
pub fn simplify_with<'s>(
    graph: &BipartiteGraph,
    scratch: &'s mut MatchScratch,
) -> (&'s [Edge], &'s BipartiteGraph) {
    let MatchScratch {
        edges,
        deg_l,
        deg_r,
        mapped,
        remaining,
        ..
    } = scratch;
    graph.edges_into(edges);
    deg_l.clear();
    deg_r.clear();
    for e in edges.iter() {
        *deg_l.entry(e.left).or_insert(0) += 1;
        *deg_r.entry(e.right).or_insert(0) += 1;
    }
    mapped.clear();
    remaining.clear();
    for &e in edges.iter() {
        if deg_l[&e.left] == 1 && deg_r[&e.right] == 1 {
            mapped.push(e);
        } else {
            remaining.add_edge(e.left, e.right, e.weight);
        }
    }
    (mapped, remaining)
}

/// Splits a bipartite graph into its connected components.
///
/// Left and right node ids live in separate namespaces, so the union-find
/// runs over `(side, id)` keys. Components are returned in deterministic
/// order (by smallest edge).
pub fn connected_components(graph: &BipartiteGraph) -> Vec<BipartiteGraph> {
    let edges = graph.edges();
    if edges.is_empty() {
        return Vec::new();
    }
    // Compact (side, id) into indices.
    let mut key_of: FxHashMap<(bool, u32), usize> = FxHashMap::default();
    let mut parent: Vec<usize> = Vec::new();
    let mut intern = |key: (bool, u32), parent: &mut Vec<usize>| -> usize {
        *key_of.entry(key).or_insert_with(|| {
            parent.push(parent.len());
            parent.len() - 1
        })
    };
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in &edges {
        let l = intern((false, e.left), &mut parent);
        let r = intern((true, e.right), &mut parent);
        let (rl, rr) = (find(&mut parent, l), find(&mut parent, r));
        if rl != rr {
            parent[rl] = rr;
        }
    }
    let mut comps: FxHashMap<usize, BipartiteGraph> = FxHashMap::default();
    let mut order: Vec<usize> = Vec::new();
    for e in &edges {
        let l = key_of[&(false, e.left)];
        let root = find(&mut parent, l);
        if !comps.contains_key(&root) {
            order.push(root);
        }
        comps
            .entry(root)
            .or_default()
            .add_edge(e.left, e.right, e.weight);
    }
    order
        .into_iter()
        .map(|r| comps.remove(&r).unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(u32, u32, f64)]) -> BipartiteGraph {
        let mut gr = BipartiteGraph::new();
        for &(l, r, w) in edges {
            gr.add_edge(l, r, w);
        }
        gr
    }

    #[test]
    fn isolated_edges_are_mapped() {
        let s = simplify(&g(&[(0, 0, 0.9), (1, 1, 0.8)]));
        assert_eq!(s.mapped_edges.len(), 2);
        assert!(s.remaining.is_empty());
    }

    #[test]
    fn contested_edges_remain() {
        // 0 and 1 both point at right node 0.
        let s = simplify(&g(&[(0, 0, 0.9), (1, 0, 0.8), (5, 5, 1.0)]));
        assert_eq!(s.mapped_edges.len(), 1);
        assert_eq!(s.mapped_edges[0].left, 5);
        assert_eq!(s.remaining.edge_count(), 2);
    }

    #[test]
    fn fig7_simplification() {
        // Paper Fig 7(c): (f2,f4), (f4,f3), (f5,f5) are mapped;
        // the e-mail field contested between name and work-mailbox remains.
        let s = simplify(&g(&[
            (2, 4, 0.37),
            (3, 2, 1.0),
            (3, 1, 0.33),
            (4, 3, 1.0),
            (5, 5, 1.0),
        ]));
        assert_eq!(s.mapped_edges.len(), 3);
        assert_eq!(s.remaining.edge_count(), 2);
        assert_eq!(s.remaining.left_nodes(), vec![3]);
    }

    #[test]
    fn components_split_disjoint_clusters() {
        let comps = connected_components(&g(&[(0, 0, 0.5), (0, 1, 0.5), (7, 7, 0.5), (8, 7, 0.5)]));
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(|c| c.edge_count()).collect();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn components_respect_side_namespaces() {
        // Left 0 and right 0 are *different* nodes: these two edges share
        // no endpoint and form two components.
        let comps = connected_components(&g(&[(0, 1, 0.5), (1, 2, 0.5)]));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn chain_is_one_component() {
        // l0-r0, l1-r0, l1-r1 form a chain.
        let comps = connected_components(&g(&[(0, 0, 0.5), (1, 0, 0.5), (1, 1, 0.5)]));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].edge_count(), 3);
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert!(connected_components(&BipartiteGraph::new()).is_empty());
    }

    #[test]
    fn simplify_preserves_total_edges() {
        let gr = g(&[(0, 0, 0.9), (1, 0, 0.8), (5, 5, 1.0), (6, 6, 0.2)]);
        let s = simplify(&gr);
        assert_eq!(
            s.mapped_edges.len() + s.remaining.edge_count(),
            gr.edge_count()
        );
    }
}
