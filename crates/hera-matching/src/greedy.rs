//! Greedy maximal matching — a fast 2-approximation.

use crate::graph::{BipartiteGraph, Edge, Matching};
use crate::scratch::MatchScratch;

/// Builds a maximal matching by scanning edges in descending weight order
/// and keeping each edge whose endpoints are still free.
///
/// Properties used elsewhere in the workspace:
/// * its weight is a **lower bound** on the maximum-weight matching (it is
///   a feasible matching), which powers `BoundMode::Sound` in `hera-index`;
/// * it is a ½-approximation of the optimum, making it a useful ablation
///   stand-in for Kuhn–Munkres.
///
/// Ties are broken by `(left, right)` so results are deterministic.
pub fn greedy_matching(graph: &BipartiteGraph) -> Matching {
    let mut picked: Vec<Edge> = Vec::new();
    greedy_matching_into(graph, &mut MatchScratch::new(), &mut picked);
    Matching::from_edges(picked)
}

/// [`greedy_matching`] on caller-provided scratch: **appends** the picked
/// edges to `out` in descending-weight pick order without allocating.
pub fn greedy_matching_into(
    graph: &BipartiteGraph,
    scratch: &mut MatchScratch,
    out: &mut Vec<Edge>,
) {
    graph.edges_into(&mut scratch.edges);
    scratch.edges.sort_unstable_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.left, a.right).cmp(&(b.left, b.right)))
    });
    scratch.used_l.clear();
    scratch.used_r.clear();
    for &e in &scratch.edges {
        if !scratch.used_l.contains(&e.left) && !scratch.used_r.contains(&e.right) {
            scratch.used_l.insert(e.left);
            scratch.used_r.insert(e.right);
            out.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_matching, kuhn_munkres};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn g(edges: &[(u32, u32, f64)]) -> BipartiteGraph {
        let mut gr = BipartiteGraph::new();
        for &(l, r, w) in edges {
            gr.add_edge(l, r, w);
        }
        gr
    }

    #[test]
    fn takes_heaviest_first() {
        let m = greedy_matching(&g(&[(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.8)]));
        // Greedy is suboptimal here: 0.9 < 1.6.
        assert!((m.weight - 0.9).abs() < 1e-12);
        let opt = kuhn_munkres(&g(&[(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.8)]));
        assert!((opt.weight - 1.6).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tie_break() {
        let a = greedy_matching(&g(&[(0, 0, 0.5), (1, 1, 0.5), (0, 1, 0.5)]));
        let b = greedy_matching(&g(&[(0, 1, 0.5), (1, 1, 0.5), (0, 0, 0.5)]));
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn empty() {
        assert!(greedy_matching(&BipartiteGraph::new()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        /// Greedy is a feasible matching with weight within [opt/2, opt].
        #[test]
        fn greedy_is_half_approximation(seed in any::<u64>(), n_edges in 0usize..10) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n_edges {
                let l = rng.gen_range(0..5u32);
                let r = rng.gen_range(0..5u32);
                if seen.insert((l, r)) {
                    gr.add_edge(l, r, rng.gen_range(0.01..1.0));
                }
            }
            let greedy = greedy_matching(&gr);
            let opt = brute_force_matching(&gr);
            prop_assert!(greedy.weight <= opt.weight + 1e-9);
            prop_assert!(2.0 * greedy.weight + 1e-9 >= opt.weight);
        }
    }
}
