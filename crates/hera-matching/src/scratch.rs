//! Reusable working memory for the matching pipeline.
//!
//! Every solver in this crate has an `*_into`/`*_with` variant that
//! borrows a [`MatchScratch`] instead of allocating its intermediate
//! buffers (edge lists, degree maps, union–find arrays, component
//! graphs, the Hungarian cost matrix and potentials). A caller that
//! verifies many record pairs — HERA's hottest loop — reuses one scratch
//! per worker and reaches zero steady-state allocation inside the
//! solvers. Results are identical to the allocating entry points: the
//! scratch only recycles capacity, never state (every buffer is cleared
//! or fully overwritten before use).

use crate::graph::{BipartiteGraph, Edge};
use rustc_hash::{FxHashMap, FxHashSet};

/// Reusable buffers for [`kuhn_munkres_with`](crate::kuhn_munkres_with),
/// [`greedy_matching_into`](crate::greedy_matching_into),
/// [`simplify_with`](crate::simplify_with) and
/// [`max_weight_matching_into`](crate::max_weight_matching_into).
///
/// Create one per worker thread and pass it to every call; the first few
/// calls grow the buffers to the working-set size and later calls run
/// allocation-free.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Sorted edge list of the graph under consideration.
    pub(crate) edges: Vec<Edge>,
    /// Left-node degrees (simplification's Theorem-1 test).
    pub(crate) deg_l: FxHashMap<u32, u32>,
    /// Right-node degrees.
    pub(crate) deg_r: FxHashMap<u32, u32>,
    /// Mapped edges peeled off by simplification.
    pub(crate) mapped: Vec<Edge>,
    /// The simplified graph (only populated by `simplify_with`).
    pub(crate) remaining: BipartiteGraph,
    /// `(side, node)` → union–find slot, for component decomposition.
    pub(crate) key_of: FxHashMap<(bool, u32), usize>,
    /// Union–find parent array over interned nodes.
    pub(crate) parent: Vec<usize>,
    /// Component root → pool index, in first-seen (deterministic) order.
    pub(crate) comp_of_root: FxHashMap<usize, usize>,
    /// Pooled per-component graphs; only the prefix assigned in the
    /// current call is meaningful.
    pub(crate) comps: Vec<BipartiteGraph>,
    /// Greedy matching's occupied left nodes.
    pub(crate) used_l: FxHashSet<u32>,
    /// Greedy matching's occupied right nodes.
    pub(crate) used_r: FxHashSet<u32>,
    /// Hungarian-algorithm working memory.
    pub(crate) km: KmScratch,
}

impl MatchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Kuhn–Munkres working memory: compacted node lists, the flat
/// `(n+1) × (m+1)` cost matrix, and the potential/augmentation arrays of
/// the e-maxx formulation.
#[derive(Debug, Default)]
pub(crate) struct KmScratch {
    pub(crate) lefts: Vec<u32>,
    pub(crate) rights: Vec<u32>,
    pub(crate) cost: Vec<f64>,
    pub(crate) u: Vec<f64>,
    pub(crate) v: Vec<f64>,
    pub(crate) p: Vec<usize>,
    pub(crate) way: Vec<usize>,
    pub(crate) minv: Vec<f64>,
    pub(crate) used: Vec<bool>,
}
