//! Bipartite maximum-weight matching — the engine behind HERA's field
//! matching (Definition 8).
//!
//! The paper reduces "which field of `R_i` corresponds to which field of
//! `R_j`" to a maximum-weight matching in a bipartite graph whose nodes are
//! fields and whose edge weights are field similarities. This crate
//! implements the full pipeline of §IV-A:
//!
//! 1. [`BipartiteGraph`] — build the graph from weighted `(left, right)`
//!    pairs;
//! 2. [`simplify`] — peel off *mapped edges* whose two endpoints both have
//!    degree one (Theorem 1: they belong to some maximum matching, since
//!    all weights are positive);
//! 3. [`connected_components`] — split the simplified graph; a maximum
//!    matching of a disjoint union is the union of per-component maximum
//!    matchings;
//! 4. [`kuhn_munkres`] — the Hungarian algorithm (`O(m³)`) per component,
//!    with dummy padding to a complete square matrix as the paper
//!    prescribes;
//! 5. [`max_weight_matching`] — the composed solver returning a
//!    [`Matching`];
//! 6. [`greedy_matching`] — sort-by-weight maximal matching, used by the
//!    index's *sound* lower bound and as an ablation baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod greedy;
mod hungarian;
mod scratch;
mod simplify;

pub use graph::{BipartiteGraph, Edge, Matching};
pub use greedy::{greedy_matching, greedy_matching_into};
pub use hungarian::{kuhn_munkres, kuhn_munkres_with};
pub use scratch::MatchScratch;
pub use simplify::{connected_components, simplify, simplify_with, Simplified};

#[cfg(test)]
mod outcome_tests {
    use super::*;

    #[test]
    fn outcome_reports_structure() {
        let mut gr = BipartiteGraph::new();
        gr.add_edge(9, 9, 0.5); // isolated: peeled by Theorem 1
        gr.add_edge(0, 0, 0.9); // contested triangle: one component
        gr.add_edge(0, 1, 0.8);
        gr.add_edge(1, 0, 0.8);
        gr.add_edge(5, 5, 0.7); // second isolated edge
        let mut out = Vec::new();
        let o = max_weight_matching_observed(&gr, &mut MatchScratch::new(), &mut out);
        assert_eq!(o.mapped_edges, 2);
        assert_eq!(o.components, 1);
        assert_eq!(o.simplified_nodes, 4);
        assert_eq!(
            max_weight_matching_into(&gr, &mut MatchScratch::new(), &mut Vec::new()),
            o.simplified_nodes
        );
    }

    #[test]
    fn empty_graph_outcome_is_zero() {
        let gr = BipartiteGraph::new();
        let mut out = Vec::new();
        let o = max_weight_matching_observed(&gr, &mut MatchScratch::new(), &mut out);
        assert_eq!(o, MatchOutcome::default());
        assert!(out.is_empty());
    }
}

/// Solves maximum-weight bipartite matching with the paper's full pipeline:
/// simplification, component decomposition, and Kuhn–Munkres per component.
///
/// Returns the matching together with the number of nodes that survived
/// simplification (the paper's `m̄` statistic is the average of
/// `simplified_nodes` over all verifications).
pub fn max_weight_matching(graph: &BipartiteGraph) -> Matching {
    max_weight_matching_with(graph, &mut MatchScratch::new())
}

/// [`max_weight_matching`] on caller-provided scratch — same result, no
/// per-call allocation inside the pipeline (the returned [`Matching`]
/// still owns its edge list).
pub fn max_weight_matching_with(graph: &BipartiteGraph, scratch: &mut MatchScratch) -> Matching {
    let mut edges: Vec<Edge> = Vec::new();
    let simplified_nodes = max_weight_matching_into(graph, scratch, &mut edges);
    let mut m = Matching::from_edges(edges);
    m.simplified_nodes = simplified_nodes;
    m
}

/// Structural telemetry of one matching run — the per-verification
/// numbers behind the paper's `m̄` statistic and the observability
/// layer's verify spans. All counts are deterministic functions of the
/// input graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Nodes that survived Theorem-1 simplification (the `m̄` input).
    pub simplified_nodes: usize,
    /// Edges peeled directly by Theorem 1 (both endpoints degree one).
    pub mapped_edges: usize,
    /// Connected components the contested remainder split into (one
    /// Kuhn–Munkres invocation each).
    pub components: usize,
}

/// [`max_weight_matching_observed`] returning only the simplified-node
/// count — the original zero-allocation entry point.
pub fn max_weight_matching_into(
    graph: &BipartiteGraph,
    scratch: &mut MatchScratch,
    out: &mut Vec<Edge>,
) -> usize {
    max_weight_matching_observed(graph, scratch, out).simplified_nodes
}

/// Fully scratch-backed pipeline: **appends** the matched edges to `out`
/// (mapped edges first, then per-component Kuhn–Munkres results; not
/// sorted) and returns the run's structural telemetry.
///
/// This is the zero-allocation entry point the verifier's hot loop uses:
/// simplification, component decomposition, and the Hungarian solver all
/// run on pooled buffers inside `scratch`.
pub fn max_weight_matching_observed(
    graph: &BipartiteGraph,
    scratch: &mut MatchScratch,
    out: &mut Vec<Edge>,
) -> MatchOutcome {
    let scratch::MatchScratch {
        edges,
        deg_l,
        deg_r,
        key_of,
        parent,
        comp_of_root,
        comps,
        km,
        ..
    } = scratch;
    graph.edges_into(edges);
    deg_l.clear();
    deg_r.clear();
    for e in edges.iter() {
        *deg_l.entry(e.left).or_insert(0) += 1;
        *deg_r.entry(e.right).or_insert(0) += 1;
    }

    // Theorem-1 peeling fused with the component union–find: mapped edges
    // (both endpoints degree one) go straight to `out`; contested edges
    // are interned for component decomposition.
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    key_of.clear();
    parent.clear();
    let mut mapped_count = 0usize;
    for e in edges.iter() {
        if deg_l[&e.left] == 1 && deg_r[&e.right] == 1 {
            out.push(*e);
            mapped_count += 1;
            continue;
        }
        let mut intern = |key: (bool, u32)| -> usize {
            *key_of.entry(key).or_insert_with(|| {
                parent.push(parent.len());
                parent.len() - 1
            })
        };
        let l = intern((false, e.left));
        let r = intern((true, e.right));
        let (rl, rr) = (find(parent, l), find(parent, r));
        if rl != rr {
            parent[rl] = rr;
        }
    }
    // Every mapped edge retires one (otherwise untouched) node per side,
    // so the contested remainder has these many distinct nodes.
    let simplified_nodes = deg_l.len() + deg_r.len() - 2 * mapped_count;

    // Group contested edges into pooled component graphs, components in
    // first-seen edge order (the same deterministic order
    // `connected_components` yields).
    comp_of_root.clear();
    let mut n_comps = 0usize;
    for e in edges.iter() {
        if deg_l[&e.left] == 1 && deg_r[&e.right] == 1 {
            continue;
        }
        let root = find(parent, key_of[&(false, e.left)]);
        let idx = *comp_of_root.entry(root).or_insert_with(|| {
            if comps.len() == n_comps {
                comps.push(BipartiteGraph::new());
            }
            comps[n_comps].clear();
            n_comps += 1;
            n_comps - 1
        });
        comps[idx].add_edge(e.left, e.right, e.weight);
    }

    for comp in comps[..n_comps].iter() {
        hungarian::km_into(comp, km, out);
    }
    MatchOutcome {
        simplified_nodes,
        mapped_edges: mapped_count,
        components: n_comps,
    }
}

/// Exhaustive maximum-weight matching by branch-and-bound enumeration.
/// Exponential; used as a test oracle and exposed for the correctness
/// benches. Panics if the graph has more than 20 edges.
pub fn brute_force_matching(graph: &BipartiteGraph) -> Matching {
    let edges = graph.edges();
    assert!(
        edges.len() <= 20,
        "brute force oracle limited to 20 edges, got {}",
        edges.len()
    );
    fn rec(
        edges: &[Edge],
        idx: usize,
        used_l: &mut Vec<u32>,
        used_r: &mut Vec<u32>,
        picked: &mut Vec<Edge>,
        best: &mut (f64, Vec<Edge>),
    ) {
        if idx == edges.len() {
            let w: f64 = picked.iter().map(|e| e.weight).sum();
            if w > best.0 {
                *best = (w, picked.clone());
            }
            return;
        }
        let e = edges[idx];
        // Skip edge idx.
        rec(edges, idx + 1, used_l, used_r, picked, best);
        // Take edge idx if endpoints are free.
        if !used_l.contains(&e.left) && !used_r.contains(&e.right) {
            used_l.push(e.left);
            used_r.push(e.right);
            picked.push(e);
            rec(edges, idx + 1, used_l, used_r, picked, best);
            picked.pop();
            used_l.pop();
            used_r.pop();
        }
    }
    let mut best = (f64::NEG_INFINITY, Vec::new());
    rec(
        &edges,
        0,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut best,
    );
    if best.1.is_empty() && best.0 < 0.0 {
        best = (0.0, Vec::new());
    }
    Matching::from_edges(best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn g(edges: &[(u32, u32, f64)]) -> BipartiteGraph {
        let mut gr = BipartiteGraph::new();
        for &(l, r, w) in edges {
            gr.add_edge(l, r, w);
        }
        gr
    }

    #[test]
    fn empty_graph() {
        let m = max_weight_matching(&g(&[]));
        assert!(m.edges.is_empty());
        assert_eq!(m.weight, 0.0);
    }

    #[test]
    fn single_edge() {
        let m = max_weight_matching(&g(&[(0, 0, 0.8)]));
        assert_eq!(m.edges.len(), 1);
        assert!((m.weight - 0.8).abs() < 1e-12);
    }

    #[test]
    fn contested_right_node_takes_heavier_edge() {
        // Two left nodes want the same right node.
        let m = max_weight_matching(&g(&[(0, 0, 0.9), (1, 0, 0.8)]));
        assert_eq!(m.edges.len(), 1);
        assert!((m.weight - 0.9).abs() < 1e-12);
        assert_eq!(m.edges[0].left, 0);
    }

    #[test]
    fn prefers_global_optimum_over_greedy_choice() {
        // Greedy takes (0,0,0.9) then only gets 0.9.
        // Optimal: (0,1,0.8) + (1,0,0.8) = 1.6.
        let m = max_weight_matching(&g(&[(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.8)]));
        assert!((m.weight - 1.6).abs() < 1e-12);
        assert_eq!(m.edges.len(), 2);
    }

    #[test]
    fn paper_example3_field_matching() {
        // Fig 7: similar field pairs of R1 = r1⊕r6 and R2 = r2⊕r4.
        // name-name 1.0 contested by email-name 0.33; the matching keeps
        // the four pairs of F(1,2) with total 0.37+1+1+1.
        let m = max_weight_matching(&g(&[
            (2, 4, 0.37), // address - addr
            (3, 2, 1.0),  // e-mail - work mailbox (contested)
            (3, 1, 0.33), // e-mail - name
            (4, 3, 1.0),  // Tel-ish field pair
            (5, 5, 1.0),  // Con.Type - Con.Type
        ]));
        assert!((m.weight - 3.37).abs() < 1e-9);
        assert_eq!(m.edges.len(), 4);
        assert!(m
            .edges
            .iter()
            .any(|e| e.left == 3 && e.right == 2 && (e.weight - 1.0).abs() < 1e-12));
    }

    #[test]
    fn matching_reports_simplified_size() {
        // One isolated edge (degree 1/1) is peeled; the contested triangle
        // survives.
        let m = max_weight_matching(&g(&[(9, 9, 0.5), (0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.8)]));
        assert_eq!(m.simplified_nodes, 4); // nodes 0,1 on both sides
        assert!((m.weight - 0.5 - 1.6).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // One scratch driven across graphs of very different shapes must
        // produce exactly what the allocating entry points produce.
        let graphs = [
            g(&[]),
            g(&[(0, 0, 0.8)]),
            g(&[(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.8), (9, 9, 0.5)]),
            g(&[
                (2, 4, 0.37),
                (3, 2, 1.0),
                (3, 1, 0.33),
                (4, 3, 1.0),
                (5, 5, 1.0),
            ]),
            g(&[(7, 7, 0.6), (1, 2, 0.3)]),
        ];
        let mut scratch = MatchScratch::new();
        for gr in &graphs {
            let fresh = max_weight_matching(gr);
            let reused = max_weight_matching_with(gr, &mut scratch);
            assert_eq!(fresh.edges, reused.edges);
            assert_eq!(fresh.weight.to_bits(), reused.weight.to_bits());
            assert_eq!(fresh.simplified_nodes, reused.simplified_nodes);

            let km_fresh = kuhn_munkres(gr);
            let km_reused = kuhn_munkres_with(gr, &mut scratch);
            assert_eq!(km_fresh.edges, km_reused.edges);

            let greedy_fresh = greedy_matching(gr);
            let mut picked = Vec::new();
            greedy_matching_into(gr, &mut scratch, &mut picked);
            assert_eq!(greedy_fresh.edges, Matching::from_edges(picked).edges);

            let s = simplify(gr);
            let (mapped, remaining) = simplify_with(gr, &mut scratch);
            assert_eq!(s.mapped_edges, mapped);
            assert_eq!(s.remaining.edges(), remaining.edges());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        /// The composed pipeline must equal the brute-force oracle.
        #[test]
        fn pipeline_matches_brute_force(seed in any::<u64>(), n_edges in 0usize..10) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n_edges {
                let l = rng.gen_range(0..5u32);
                let r = rng.gen_range(0..5u32);
                if seen.insert((l, r)) {
                    // Weight grid avoids float-tie ambiguity in the oracle.
                    let w = rng.gen_range(1..=20) as f64 / 20.0;
                    gr.add_edge(l, r, w);
                }
            }
            let fast = max_weight_matching(&gr);
            let slow = brute_force_matching(&gr);
            prop_assert!((fast.weight - slow.weight).abs() < 1e-9,
                "pipeline {} vs oracle {}", fast.weight, slow.weight);
        }

        /// Greedy is never better than optimal, and optimal is at most the
        /// total edge weight.
        #[test]
        fn greedy_bounds_optimal(seed in any::<u64>(), n_edges in 0usize..12) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n_edges {
                let l = rng.gen_range(0..6u32);
                let r = rng.gen_range(0..6u32);
                if seen.insert((l, r)) {
                    gr.add_edge(l, r, rng.gen_range(0.05..1.0));
                }
            }
            let opt = max_weight_matching(&gr);
            let greedy = greedy_matching(&gr);
            let total: f64 = gr.edges().iter().map(|e| e.weight).sum();
            prop_assert!(greedy.weight <= opt.weight + 1e-9);
            prop_assert!(opt.weight <= total + 1e-9);
        }
    }
}
