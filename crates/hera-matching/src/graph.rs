//! Bipartite graph and matching types.

use rustc_hash::FxHashMap;

/// A weighted edge between left node `left` and right node `right`.
///
/// Node ids are caller-defined `u32`s (HERA uses field indices); they need
/// not be dense — the solvers compact them internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Left endpoint (a field of `R_i` in HERA).
    pub left: u32,
    /// Right endpoint (a field of `R_j`).
    pub right: u32,
    /// Edge weight; must be finite and non-negative (a field similarity).
    pub weight: f64,
}

/// An undirected bipartite graph `G(X ∪ Y, E)` per Definition 8.
///
/// Parallel `(left, right)` insertions keep the heavier weight, mirroring
/// field similarity's max-over-value-pairs semantics.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    edges: FxHashMap<(u32, u32), f64>,
}

impl BipartiteGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or raises) an edge.
    ///
    /// # Panics
    /// Panics if `weight` is negative or non-finite.
    pub fn add_edge(&mut self, left: u32, right: u32, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        let slot = self.edges.entry((left, right)).or_insert(0.0);
        if weight > *slot {
            *slot = weight;
        }
    }

    /// Removes every edge but keeps the allocated capacity, so a graph can
    /// be rebuilt per verification without reallocating (scratch reuse).
    pub fn clear(&mut self) {
        self.edges.clear();
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All edges in deterministic `(left, right)` order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        self.edges_into(&mut out);
        out
    }

    /// Fills `out` with all edges in deterministic `(left, right)` order,
    /// replacing its previous contents. Allocation-free once `out` has
    /// grown to the working-set size.
    pub fn edges_into(&self, out: &mut Vec<Edge>) {
        out.clear();
        out.extend(self.edges.iter().map(|(&(left, right), &weight)| Edge {
            left,
            right,
            weight,
        }));
        out.sort_unstable_by_key(|e| (e.left, e.right));
    }

    /// Distinct left node ids, ascending.
    pub fn left_nodes(&self) -> Vec<u32> {
        let mut ls = Vec::new();
        self.left_nodes_into(&mut ls);
        ls
    }

    /// Fills `out` with the distinct left node ids, ascending.
    pub fn left_nodes_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.edges.keys().map(|&(l, _)| l));
        out.sort_unstable();
        out.dedup();
    }

    /// Distinct right node ids, ascending.
    pub fn right_nodes(&self) -> Vec<u32> {
        let mut rs = Vec::new();
        self.right_nodes_into(&mut rs);
        rs
    }

    /// Fills `out` with the distinct right node ids, ascending.
    pub fn right_nodes_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.edges.keys().map(|&(_, r)| r));
        out.sort_unstable();
        out.dedup();
    }

    /// Number of distinct left nodes (`|X|`).
    pub fn left_count(&self) -> usize {
        self.left_nodes().len()
    }

    /// Number of distinct right nodes (`|Y|`).
    pub fn right_count(&self) -> usize {
        self.right_nodes().len()
    }

    /// Weight of edge `(left, right)` if present.
    pub fn weight(&self, left: u32, right: u32) -> Option<f64> {
        self.edges.get(&(left, right)).copied()
    }
}

/// A one-to-one matching: no two edges share an endpoint on either side.
#[derive(Debug, Clone, Default)]
pub struct Matching {
    /// The matched edges, sorted by `(left, right)`.
    pub edges: Vec<Edge>,
    /// Total weight `w(M)`.
    pub weight: f64,
    /// Nodes remaining after graph simplification when this matching was
    /// produced by [`max_weight_matching`](crate::max_weight_matching);
    /// 0 otherwise. Feeds the paper's `m̄` statistic (Table II).
    pub simplified_nodes: usize,
}

impl Matching {
    /// Builds a matching from edges, computing the weight.
    ///
    /// # Panics (debug)
    /// Debug-asserts the one-to-one property.
    pub fn from_edges(mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable_by_key(|e| (e.left, e.right));
        #[cfg(debug_assertions)]
        {
            let mut ls: Vec<u32> = edges.iter().map(|e| e.left).collect();
            ls.sort_unstable();
            let before = ls.len();
            ls.dedup();
            debug_assert_eq!(before, ls.len(), "matching reuses a left node");
            let mut rs: Vec<u32> = edges.iter().map(|e| e.right).collect();
            rs.sort_unstable();
            let before = rs.len();
            rs.dedup();
            debug_assert_eq!(before, rs.len(), "matching reuses a right node");
        }
        let weight = edges.iter().map(|e| e.weight).sum();
        Self {
            edges,
            weight,
            simplified_nodes: 0,
        }
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if nothing matched.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Looks up the partner of a left node.
    pub fn right_of(&self, left: u32) -> Option<u32> {
        self.edges.iter().find(|e| e.left == left).map(|e| e.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_keep_max() {
        let mut g = BipartiteGraph::new();
        g.add_edge(1, 2, 0.4);
        g.add_edge(1, 2, 0.7);
        g.add_edge(1, 2, 0.5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.weight(1, 2), Some(0.7));
    }

    #[test]
    fn node_sets() {
        let mut g = BipartiteGraph::new();
        g.add_edge(3, 10, 0.5);
        g.add_edge(1, 10, 0.5);
        g.add_edge(3, 11, 0.5);
        assert_eq!(g.left_nodes(), vec![1, 3]);
        assert_eq!(g.right_nodes(), vec![10, 11]);
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        BipartiteGraph::new().add_edge(0, 0, -0.1);
    }

    #[test]
    fn matching_from_edges() {
        let m = Matching::from_edges(vec![
            Edge {
                left: 2,
                right: 0,
                weight: 0.5,
            },
            Edge {
                left: 0,
                right: 1,
                weight: 0.25,
            },
        ]);
        assert_eq!(m.len(), 2);
        assert!((m.weight - 0.75).abs() < 1e-12);
        assert_eq!(m.right_of(2), Some(0));
        assert_eq!(m.right_of(7), None);
        // Sorted by left.
        assert_eq!(m.edges[0].left, 0);
    }

    #[test]
    #[should_panic(expected = "reuses a left node")]
    #[cfg(debug_assertions)]
    fn non_matching_rejected() {
        Matching::from_edges(vec![
            Edge {
                left: 0,
                right: 0,
                weight: 1.0,
            },
            Edge {
                left: 0,
                right: 1,
                weight: 1.0,
            },
        ]);
    }
}
