//! Kuhn–Munkres (Hungarian) algorithm for maximum-weight bipartite
//! matching, `O(n³)`.

use crate::graph::{BipartiteGraph, Edge, Matching};
use crate::scratch::{KmScratch, MatchScratch};

/// Solves maximum-weight matching on `graph` exactly.
///
/// The paper notes "KM algorithm requires a complete bipartite graph … we
/// can add dummy points and set the weight of their corresponding edges to
/// be zero". We do exactly that: node ids are compacted, the smaller side
/// becomes the rows, missing edges get weight 0, and the potential-based
/// `O(n³)` assignment solver runs on the resulting complete rectangular
/// matrix. Zero-weight assignments (dummies / non-edges) are dropped from
/// the returned [`Matching`], so only genuine field pairs appear.
pub fn kuhn_munkres(graph: &BipartiteGraph) -> Matching {
    kuhn_munkres_with(graph, &mut MatchScratch::new())
}

/// [`kuhn_munkres`] on caller-provided scratch: identical result, no
/// per-call allocation of the cost matrix or potential arrays.
pub fn kuhn_munkres_with(graph: &BipartiteGraph, scratch: &mut MatchScratch) -> Matching {
    let mut edges: Vec<Edge> = Vec::new();
    km_into(graph, &mut scratch.km, &mut edges);
    Matching::from_edges(edges)
}

/// The scratch-backed solver core. **Appends** matched edges to `out` in
/// column order of the internal assignment (deterministic for a given
/// graph, but not sorted) — callers wanting `(left, right)` order sort
/// afterwards.
pub(crate) fn km_into(graph: &BipartiteGraph, s: &mut KmScratch, out: &mut Vec<Edge>) {
    graph.left_nodes_into(&mut s.lefts);
    graph.right_nodes_into(&mut s.rights);
    if s.lefts.is_empty() || s.rights.is_empty() {
        return;
    }

    // Rows must be the smaller side for the assignment solver.
    let transpose = s.lefts.len() > s.rights.len();
    let (n, m) = if transpose {
        (s.rights.len(), s.lefts.len())
    } else {
        (s.lefts.len(), s.rights.len())
    };
    // `(left, right)` node ids of the cell at row i, column j (1-indexed).
    let cell = |s: &KmScratch, i: usize, j: usize| -> (u32, u32) {
        if transpose {
            (s.lefts[j - 1], s.rights[i - 1])
        } else {
            (s.lefts[i - 1], s.rights[j - 1])
        }
    };

    // Cost matrix (minimization): cost = -weight; absent edges cost 0.
    // Stored flat, row-major, (n+1) × (m+1) with the 0 row/column the
    // algorithm's virtual slots.
    let width = m + 1;
    s.cost.clear();
    s.cost.resize((n + 1) * width, 0.0);
    for i in 1..=n {
        for j in 1..=m {
            let (l, r) = cell(s, i, j);
            s.cost[i * width + j] = -graph.weight(l, r).unwrap_or(0.0);
        }
    }

    // Potential-based assignment (e-maxx formulation), 1-indexed.
    let inf = f64::INFINITY;
    s.u.clear();
    s.u.resize(n + 1, 0.0);
    s.v.clear();
    s.v.resize(m + 1, 0.0);
    s.p.clear();
    s.p.resize(m + 1, 0); // p[j] = row assigned to column j
    s.way.clear();
    s.way.resize(m + 1, 0);
    for i in 1..=n {
        s.p[0] = i;
        let mut j0 = 0usize;
        s.minv.clear();
        s.minv.resize(m + 1, inf);
        s.used.clear();
        s.used.resize(m + 1, false);
        loop {
            s.used[j0] = true;
            let i0 = s.p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !s.used[j] {
                    let cur = s.cost[i0 * width + j] - s.u[i0] - s.v[j];
                    if cur < s.minv[j] {
                        s.minv[j] = cur;
                        s.way[j] = j0;
                    }
                    if s.minv[j] < delta {
                        delta = s.minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if s.used[j] {
                    s.u[s.p[j]] += delta;
                    s.v[j] -= delta;
                } else {
                    s.minv[j] -= delta;
                }
            }
            j0 = j1;
            if s.p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = s.way[j0];
            s.p[j0] = s.p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    for j in 1..=m {
        let i = s.p[j];
        if i == 0 {
            continue;
        }
        let (left, right) = cell(s, i, j);
        if let Some(w) = graph.weight(left, right) {
            if w > 0.0 {
                out.push(Edge {
                    left,
                    right,
                    weight: w,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_matching;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn g(edges: &[(u32, u32, f64)]) -> BipartiteGraph {
        let mut gr = BipartiteGraph::new();
        for &(l, r, w) in edges {
            gr.add_edge(l, r, w);
        }
        gr
    }

    #[test]
    fn empty() {
        assert!(kuhn_munkres(&BipartiteGraph::new()).is_empty());
    }

    #[test]
    fn square_exact() {
        // Classic 3x3 assignment.
        let m = kuhn_munkres(&g(&[
            (0, 0, 0.1),
            (0, 1, 0.6),
            (0, 2, 0.3),
            (1, 0, 0.7),
            (1, 1, 0.2),
            (1, 2, 0.4),
            (2, 0, 0.3),
            (2, 1, 0.9),
            (2, 2, 0.8),
        ]));
        // Optimal: (0,1)=0.6 + (1,0)=0.7 + (2,2)=0.8 = 2.1.
        assert!((m.weight - 2.1).abs() < 1e-9, "got {}", m.weight);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn rectangular_wide() {
        // 1 left node, 3 right nodes: picks the heaviest.
        let m = kuhn_munkres(&g(&[(0, 0, 0.2), (0, 1, 0.8), (0, 2, 0.5)]));
        assert_eq!(m.len(), 1);
        assert_eq!(m.edges[0].right, 1);
    }

    #[test]
    fn rectangular_tall() {
        // 3 left nodes contend for 1 right node (transposed path).
        let m = kuhn_munkres(&g(&[(0, 0, 0.2), (1, 0, 0.8), (2, 0, 0.5)]));
        assert_eq!(m.len(), 1);
        assert_eq!(m.edges[0].left, 1);
    }

    #[test]
    fn leaving_a_node_unmatched_can_be_optimal() {
        // Matching (0,0) blocks both cheaper alternatives: optimal takes
        // the single heavy edge and leaves node 1 unmatched when forced:
        // edges: (0,0,1.0), (1,0,0.9). Max matching = 1.0.
        let m = kuhn_munkres(&g(&[(0, 0, 1.0), (1, 0, 0.9)]));
        assert_eq!(m.len(), 1);
        assert!((m.weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_graph_never_invents_edges() {
        let m = kuhn_munkres(&g(&[(0, 1, 0.5), (1, 0, 0.5)]));
        for e in &m.edges {
            assert!(g(&[(0, 1, 0.5), (1, 0, 0.5)])
                .weight(e.left, e.right)
                .is_some());
        }
        assert!((m.weight - 1.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        #[test]
        fn km_equals_brute_force(seed in any::<u64>(), n_edges in 0usize..12) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n_edges {
                let l = rng.gen_range(0..5u32);
                let r = rng.gen_range(0..5u32);
                if seen.insert((l, r)) {
                    gr.add_edge(l, r, rng.gen_range(1..=100) as f64 / 100.0);
                }
            }
            let km = kuhn_munkres(&gr);
            let oracle = brute_force_matching(&gr);
            prop_assert!((km.weight - oracle.weight).abs() < 1e-9,
                "km {} vs oracle {}", km.weight, oracle.weight);
        }

        /// The result is always a valid matching over existing edges.
        #[test]
        fn km_result_is_valid(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            for _ in 0..15 {
                gr.add_edge(rng.gen_range(0..6), rng.gen_range(0..6), rng.gen_range(0.01..1.0));
            }
            let m = kuhn_munkres(&gr);
            // One-to-one (checked by Matching::from_edges in debug) and
            // edges exist in the graph with the same weight.
            for e in &m.edges {
                prop_assert_eq!(gr.weight(e.left, e.right), Some(e.weight));
            }
        }
    }
}
