//! Kuhn–Munkres (Hungarian) algorithm for maximum-weight bipartite
//! matching, `O(n³)`.

use crate::graph::{BipartiteGraph, Edge, Matching};

/// Solves maximum-weight matching on `graph` exactly.
///
/// The paper notes "KM algorithm requires a complete bipartite graph … we
/// can add dummy points and set the weight of their corresponding edges to
/// be zero". We do exactly that: node ids are compacted, the smaller side
/// becomes the rows, missing edges get weight 0, and the potential-based
/// `O(n³)` assignment solver runs on the resulting complete rectangular
/// matrix. Zero-weight assignments (dummies / non-edges) are dropped from
/// the returned [`Matching`], so only genuine field pairs appear.
pub fn kuhn_munkres(graph: &BipartiteGraph) -> Matching {
    let lefts = graph.left_nodes();
    let rights = graph.right_nodes();
    if lefts.is_empty() || rights.is_empty() {
        return Matching::default();
    }

    // Rows must be the smaller side for the assignment solver.
    let transpose = lefts.len() > rights.len();
    let (rows, cols) = if transpose {
        (rights.clone(), lefts.clone())
    } else {
        (lefts.clone(), rights.clone())
    };
    let n = rows.len();
    let m = cols.len();

    // Cost matrix (minimization): cost = -weight; absent edges cost 0.
    let mut cost = vec![vec![0.0f64; m + 1]; n + 1];
    for (i, &row_id) in rows.iter().enumerate() {
        for (j, &col_id) in cols.iter().enumerate() {
            let w = if transpose {
                graph.weight(col_id, row_id)
            } else {
                graph.weight(row_id, col_id)
            };
            cost[i + 1][j + 1] = -w.unwrap_or(0.0);
        }
    }

    // Potential-based assignment (e-maxx formulation), 1-indexed.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row assigned to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0][j] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for j in 1..=m {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (left, right) = if transpose {
            (cols[j - 1], rows[i - 1])
        } else {
            (rows[i - 1], cols[j - 1])
        };
        if let Some(w) = graph.weight(left, right) {
            if w > 0.0 {
                edges.push(Edge {
                    left,
                    right,
                    weight: w,
                });
            }
        }
    }
    Matching::from_edges(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_matching;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn g(edges: &[(u32, u32, f64)]) -> BipartiteGraph {
        let mut gr = BipartiteGraph::new();
        for &(l, r, w) in edges {
            gr.add_edge(l, r, w);
        }
        gr
    }

    #[test]
    fn empty() {
        assert!(kuhn_munkres(&BipartiteGraph::new()).is_empty());
    }

    #[test]
    fn square_exact() {
        // Classic 3x3 assignment.
        let m = kuhn_munkres(&g(&[
            (0, 0, 0.1),
            (0, 1, 0.6),
            (0, 2, 0.3),
            (1, 0, 0.7),
            (1, 1, 0.2),
            (1, 2, 0.4),
            (2, 0, 0.3),
            (2, 1, 0.9),
            (2, 2, 0.8),
        ]));
        // Optimal: (0,1)=0.6 + (1,0)=0.7 + (2,2)=0.8 = 2.1.
        assert!((m.weight - 2.1).abs() < 1e-9, "got {}", m.weight);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn rectangular_wide() {
        // 1 left node, 3 right nodes: picks the heaviest.
        let m = kuhn_munkres(&g(&[(0, 0, 0.2), (0, 1, 0.8), (0, 2, 0.5)]));
        assert_eq!(m.len(), 1);
        assert_eq!(m.edges[0].right, 1);
    }

    #[test]
    fn rectangular_tall() {
        // 3 left nodes contend for 1 right node (transposed path).
        let m = kuhn_munkres(&g(&[(0, 0, 0.2), (1, 0, 0.8), (2, 0, 0.5)]));
        assert_eq!(m.len(), 1);
        assert_eq!(m.edges[0].left, 1);
    }

    #[test]
    fn leaving_a_node_unmatched_can_be_optimal() {
        // Matching (0,0) blocks both cheaper alternatives: optimal takes
        // the single heavy edge and leaves node 1 unmatched when forced:
        // edges: (0,0,1.0), (1,0,0.9). Max matching = 1.0.
        let m = kuhn_munkres(&g(&[(0, 0, 1.0), (1, 0, 0.9)]));
        assert_eq!(m.len(), 1);
        assert!((m.weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_graph_never_invents_edges() {
        let m = kuhn_munkres(&g(&[(0, 1, 0.5), (1, 0, 0.5)]));
        for e in &m.edges {
            assert!(g(&[(0, 1, 0.5), (1, 0, 0.5)])
                .weight(e.left, e.right)
                .is_some());
        }
        assert!((m.weight - 1.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        #[test]
        fn km_equals_brute_force(seed in any::<u64>(), n_edges in 0usize..12) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n_edges {
                let l = rng.gen_range(0..5u32);
                let r = rng.gen_range(0..5u32);
                if seen.insert((l, r)) {
                    gr.add_edge(l, r, rng.gen_range(1..=100) as f64 / 100.0);
                }
            }
            let km = kuhn_munkres(&gr);
            let oracle = brute_force_matching(&gr);
            prop_assert!((km.weight - oracle.weight).abs() < 1e-9,
                "km {} vs oracle {}", km.weight, oracle.weight);
        }

        /// The result is always a valid matching over existing edges.
        #[test]
        fn km_result_is_valid(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut gr = BipartiteGraph::new();
            for _ in 0..15 {
                gr.add_edge(rng.gen_range(0..6), rng.gen_range(0..6), rng.gen_range(0.01..1.0));
            }
            let m = kuhn_munkres(&gr);
            // One-to-one (checked by Matching::from_edges in debug) and
            // edges exist in the graph with the same weight.
            for e in &m.edges {
                prop_assert_eq!(gr.weight(e.left, e.right), Some(e.weight));
            }
        }
    }
}
