//! `hera-cli` — command-line entity resolution on heterogeneous records.
//!
//! ```text
//! hera-cli generate --preset dm1 --out dm1.json
//! hera-cli resolve  --input dm1.json --delta 0.5 --xi 0.5 --labels labels.csv --eval
//! hera-cli exchange --input dm1.json --fraction 0.33 --out dm1-s.json
//! hera-cli fuse     --input dm1.json --labels labels.csv --out fused.json
//! hera-cli baseline --input dm1-s.json --system rswoosh --eval
//! hera-cli demo
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" {
        print!("{}", commands::USAGE);
        return ExitCode::SUCCESS;
    }
    // `faults` is a two-token command group (`faults replay`, `faults
    // gen`): fold the action into the command so the strict parser (no
    // positionals after the command) stays strict everywhere else.
    if raw[0] == "faults" && raw.len() > 1 && !raw[1].starts_with("--") {
        let action = raw.remove(1);
        raw[0] = format!("faults {action}");
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    // `--source` legitimately repeats (multi-file import); anything else
    // given twice is almost certainly a mistake — the last value wins.
    for name in args.duplicated(&["source"]) {
        eprintln!("warning: --{name} given more than once; the last value wins");
    }
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
