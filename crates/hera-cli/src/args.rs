//! Minimal dependency-free argument parsing: `--flag value` pairs and
//! bare `--switch`es after a subcommand.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    flags: BTreeMap<String, Vec<String>>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// Grammar: `<command> (--key value | --switch)*`. A `--key` followed
    /// by another `--…` token or end of input is a switch.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        match it.next() {
            Some(c) if !c.starts_with("--") => out.command = c,
            Some(c) => return Err(format!("expected a subcommand, got flag {c}")),
            None => return Err("no subcommand given (try `hera help`)".into()),
        }
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {tok:?}"));
            };
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    out.flags
                        .entry(key.to_owned())
                        .or_default()
                        .push(it.next().unwrap());
                }
                _ => out.switches.push(key.to_owned()),
            }
        }
        Ok(out)
    }

    /// String flag (last occurrence wins when repeated).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All occurrences of a repeatable flag, in order.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.flags.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Float flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Integer flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// Boolean switch.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Names given more than once that are *not* declared repeatable —
    /// for value flags the last occurrence silently wins ([`Args::get`]),
    /// so the caller should warn the user. Covers both value flags and
    /// switches; sorted, deduplicated.
    pub fn duplicated(&self, repeatable: &[&str]) -> Vec<String> {
        let mut dup: Vec<String> = self
            .flags
            .iter()
            .filter(|(k, v)| v.len() > 1 && !repeatable.contains(&k.as_str()))
            .map(|(k, _)| k.clone())
            .collect();
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &self.switches {
            *counts.entry(s.as_str()).or_insert(0) += 1;
        }
        dup.extend(
            counts
                .into_iter()
                .filter(|&(k, n)| n > 1 && !repeatable.contains(&k))
                .map(|(k, _)| k.to_owned()),
        );
        dup.sort_unstable();
        dup.dedup();
        dup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_flags() {
        let a = parse("resolve --input x.json --delta 0.6 --eval").unwrap();
        assert_eq!(a.command, "resolve");
        assert_eq!(a.get("input"), Some("x.json"));
        assert_eq!(a.get_f64("delta", 0.5).unwrap(), 0.6);
        assert_eq!(a.get_f64("xi", 0.5).unwrap(), 0.5);
        assert!(a.has("eval"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn missing_command_is_error() {
        assert!(parse("").is_err());
        assert!(parse("--input x").is_err());
    }

    #[test]
    fn positional_after_command_is_error() {
        assert!(parse("resolve stray").is_err());
    }

    #[test]
    fn require_and_type_errors() {
        let a = parse("generate --seed nope").unwrap();
        assert!(a.require("preset").is_err());
        assert!(a.get_u64("seed", 1).is_err());
    }

    #[test]
    fn trailing_switch() {
        let a = parse("demo --verbose").unwrap();
        assert!(a.has("verbose"));
    }

    #[test]
    fn repeated_flags_collect_in_order() {
        let a = parse("import --source a=1.csv --source b=2.csv --out x").unwrap();
        assert_eq!(
            a.get_all("source"),
            &["a=1.csv".to_string(), "b=2.csv".to_string()]
        );
        // get() yields the last occurrence.
        assert_eq!(a.get("source"), Some("b=2.csv"));
        assert!(a.get_all("missing").is_empty());
    }

    #[test]
    fn repeated_value_flag_is_last_wins_and_reported() {
        let a = parse("resolve --threads 2 --threads 4").unwrap();
        // Defined behavior: the last occurrence wins…
        assert_eq!(a.get("threads"), Some("4"));
        assert_eq!(a.get_u64("threads", 0).unwrap(), 4);
        // …and the duplicate is reported unless declared repeatable.
        assert_eq!(a.duplicated(&[]), vec!["threads".to_string()]);
        assert!(a.duplicated(&["threads"]).is_empty());
    }

    #[test]
    fn repeated_switch_is_reported() {
        let a = parse("resolve --eval --eval --quiet").unwrap();
        assert!(a.has("eval"));
        assert_eq!(a.duplicated(&[]), vec!["eval".to_string()]);
    }

    #[test]
    fn declared_repeatable_flags_are_not_reported() {
        let a = parse("import --source a=1.csv --source b=2.csv --out x").unwrap();
        assert!(a.duplicated(&["source"]).is_empty());
        // Without the declaration the same line would warn.
        assert_eq!(a.duplicated(&[]), vec!["source".to_string()]);
    }

    #[test]
    fn unique_flags_report_no_duplicates() {
        let a = parse("resolve --input x.json --delta 0.6 --eval").unwrap();
        assert!(a.duplicated(&[]).is_empty());
    }

    #[test]
    fn empty_flag_name_is_error() {
        let err = parse("resolve -- value").unwrap_err();
        assert!(err.contains("empty flag name"), "{err}");
        let err = parse("resolve --input x.json --").unwrap_err();
        assert!(err.contains("empty flag name"), "{err}");
    }

    #[test]
    fn positional_argument_error_names_the_token() {
        let err = parse("resolve --input x.json stray extra").unwrap_err();
        // `--input` swallows `x.json`; `stray` is the offender.
        assert!(err.contains("stray"), "{err}");
    }
}
