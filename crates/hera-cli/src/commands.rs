//! Subcommand implementations.

use crate::args::Args;
use hera_baselines::{CollectiveEr, CorrelationClustering, RSwoosh, Resolver};
use hera_core::{Hera, HeraConfig};
use hera_eval::{bcubed, PairMetrics};
use hera_sim::TypeDispatch;
use hera_types::Dataset;
use std::fs;

/// Help text.
pub const USAGE: &str = "\
hera-cli — entity resolution on heterogeneous records (HERA, ICDE 2020)

USAGE:
  hera-cli import   --source NAME=FILE.csv [--source …] [--entity-column COL]
                [--name NAME] [--out FILE]
  hera-cli generate --preset <dm1|dm2|dm3|dm4> [--seed N] [--out FILE]
  hera-cli resolve  --input FILE [--delta 0.5] [--xi 0.5] [--threads N] [--labels FILE]
                [--eval] [--matchings] [--no-sim-cache] [--trace FILE.jsonl]
                [--trace-stderr] [--trace-deterministic]
  hera-cli exchange --input FILE [--fraction 0.333] [--seed N] [--out FILE]
  hera-cli fuse     --input FILE --labels FILE [--fraction 1.0] [--seed N] [--out FILE]
  hera-cli baseline --input FILE --system <rswoosh|cc|cr> [--delta 0.5] [--xi 0.5] [--eval]
  hera-cli trace-check --input FILE.jsonl
  hera-cli demo
  hera-cli help

Datasets are JSON (hera_types::Dataset). Labels are CSV `record_id,entity`.
`--threads 0` (the default) auto-detects the cores; any setting yields
bit-identical results. `--no-sim-cache` disables the merge-aware similarity
memo cache (results are bit-identical either way; the flag exists for
baseline timing).

`--trace FILE` writes a structured run journal (JSON Lines: per-stage
spans, every merge, every decided schema matching — see DESIGN.md,
Observability). Core journal events are byte-identical at every thread
count and cache setting; `--trace-deterministic` drops the host-dependent
timing/diag lines too, making the whole file reproducible.
`--trace-stderr` mirrors per-round summaries to stderr as the run goes.
`trace-check` validates a journal (every line parses, every line has an
event kind) and prints per-kind counts.
";

/// Routes a parsed command line.
pub fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "import" => import(args),
        "generate" => generate(args),
        "resolve" => resolve(args),
        "exchange" => exchange(args),
        "fuse" => fuse(args),
        "baseline" => baseline(args),
        "trace-check" => trace_check(args),
        "demo" => demo(),
        other => Err(format!(
            "unknown subcommand {other:?} (try `hera-cli help`)"
        )),
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Dataset::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn write_out(path: Option<&str>, content: &str) -> Result<(), String> {
    match path {
        Some(p) => fs::write(p, content).map_err(|e| format!("writing {p}: {e}")),
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn import(args: &Args) -> Result<(), String> {
    let sources = args.get_all("source");
    if sources.is_empty() {
        return Err("import needs at least one --source NAME=FILE.csv".into());
    }
    let mut importer = hera_types::CsvImporter::new(args.get("name").unwrap_or("imported"));
    if let Some(col) = args.get("entity-column") {
        importer = importer.with_entity_column(col);
    }
    for spec in sources {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--source expects NAME=FILE.csv, got {spec:?}"))?;
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        importer = importer.add_source(name, text);
    }
    let ds = importer.build().map_err(|e| e.to_string())?;
    eprintln!(
        "imported {}: {} records under {} schemas ({} distinct attributes)",
        ds.name,
        ds.len(),
        ds.registry.len(),
        ds.truth.distinct_attr_count()
    );
    let json = ds.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn generate(args: &Args) -> Result<(), String> {
    let preset = args.require("preset")?;
    let mut cfg = match preset {
        "dm1" => hera_datagen::presets::dm1(),
        "dm2" => hera_datagen::presets::dm2(),
        "dm3" => hera_datagen::presets::dm3(),
        "dm4" => hera_datagen::presets::dm4(),
        other => return Err(format!("unknown preset {other:?} (expected dm1..dm4)")),
    };
    if let Some(seed) = args.get("seed") {
        cfg.seed = seed
            .parse()
            .map_err(|_| format!("--seed expects an integer, got {seed:?}"))?;
    }
    let ds = hera_datagen::Generator::new(cfg).generate();
    eprintln!(
        "generated {}: {} records, {} entities, {} distinct attributes",
        ds.name,
        ds.len(),
        ds.truth.entity_count(),
        ds.truth.distinct_attr_count()
    );
    let json = ds.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn resolve(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let delta = args.get_f64("delta", 0.5)?;
    let xi = args.get_f64("xi", 0.5)?;
    let threads = args.get_u64("threads", 0)? as usize;
    let mut config = HeraConfig::new(delta, xi).with_threads(threads);
    if args.has("no-sim-cache") {
        config = config.without_sim_cache();
    }
    let mut recorder = hera_obs::Recorder::disabled();
    if let Some(path) = args.get("trace") {
        recorder =
            hera_obs::Recorder::to_file(path).map_err(|e| format!("creating trace {path}: {e}"))?;
    }
    if args.has("trace-deterministic") {
        recorder = recorder.deterministic();
    }
    if args.has("trace-stderr") {
        recorder = recorder.with_progress(true);
    }
    let result = Hera::new(config).with_recorder(recorder.clone()).run(&ds);
    recorder.flush();
    if let Some(path) = args.get("trace") {
        eprintln!("trace journal written to {path}");
    }
    eprintln!(
        "resolved {} records into {} entities ({} iterations, {} merges, {} threads, {:?})",
        ds.len(),
        result.entity_count(),
        result.stats.iterations,
        result.stats.merges,
        result.stats.threads,
        result.stats.total_time()
    );
    eprintln!(
        "  index: {:?} ({:.0} pairs/s) · verify: {:?} ({:.0} pairs/s)",
        result.stats.index_build_time,
        result.stats.index_pairs_per_sec(),
        result.stats.verify_time,
        result.stats.verify_pairs_per_sec()
    );
    if args.has("no-sim-cache") {
        eprintln!(
            "  sim cache: off · {} metric calls",
            result.stats.metric_sim_calls
        );
    } else {
        eprintln!(
            "  sim cache: {} hits / {} misses ({:.0}% hit rate) · {} entries, {} invalidated · {} metric calls",
            result.stats.sim_cache_hits,
            result.stats.sim_cache_misses,
            result.stats.sim_cache_hit_rate() * 100.0,
            result.stats.sim_cache_size,
            result.stats.sim_cache_invalidated,
            result.stats.metric_sim_calls
        );
    }
    if args.has("eval") {
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        let (bp, br, bf) = bcubed(&result.clusters(), &ds.truth);
        eprintln!("pairwise: {m}");
        eprintln!("b-cubed:  P={bp:.3} R={br:.3} F1={bf:.3}");
    }
    if args.has("matchings") {
        for m in &result.schema_matchings {
            eprintln!(
                "matching: {} ≈ {} (confidence {:.2})",
                ds.registry.attr_qualified_name(m.attr),
                ds.registry.attr_qualified_name(m.partner),
                m.confidence
            );
        }
    }
    let mut csv = String::from("record_id,entity\n");
    for (rid, &e) in result.entity_of.iter().enumerate() {
        csv.push_str(&format!("{rid},{e}\n"));
    }
    write_out(args.get("labels"), &csv)
}

fn exchange(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let fraction = args.get_f64("fraction", 1.0 / 3.0)?;
    let seed = args.get_u64("seed", 1)?;
    let plan = hera_exchange::plan_exchange_ensuring(
        &ds,
        fraction,
        seed,
        &[hera_types::CanonAttrId::new(0)],
    );
    let out = hera_exchange::chase(&ds, &plan, format!("{}-X", ds.name));
    eprintln!(
        "exchanged into {} target attributes; {} source values dropped",
        plan.target_attrs.len(),
        plan.dropped_value_count
    );
    let json = out.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn parse_labels(path: &str, n: usize) -> Result<Vec<u32>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut labels = vec![u32::MAX; n];
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 && line.starts_with("record_id") {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let rid: usize = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| format!("{path}:{}: bad record id", lineno + 1))?;
        let ent: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| format!("{path}:{}: bad entity", lineno + 1))?;
        if rid >= n {
            return Err(format!(
                "{path}:{}: record id {rid} out of range",
                lineno + 1
            ));
        }
        labels[rid] = ent;
    }
    if let Some(missing) = labels.iter().position(|&l| l == u32::MAX) {
        return Err(format!("{path}: no label for record {missing}"));
    }
    Ok(labels)
}

fn fuse(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let labels = parse_labels(args.require("labels")?, ds.len())?;
    let fraction = args.get_f64("fraction", 1.0)?;
    let seed = args.get_u64("seed", 1)?;
    let plan = hera_exchange::plan_exchange_ensuring(
        &ds,
        fraction,
        seed,
        &[hera_types::CanonAttrId::new(0)],
    );
    let fused = hera_exchange::fuse_entities(&ds, &labels, &plan, format!("{}-fused", ds.name));
    eprintln!(
        "fused {} records into {} entity records under {} target attributes",
        ds.len(),
        fused.len(),
        plan.target_attrs.len()
    );
    let json = fused.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn baseline(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    if ds.registry.len() != 1 {
        return Err(format!(
            "baselines need a homogeneous dataset (one schema), got {} — run `hera exchange` first",
            ds.registry.len()
        ));
    }
    let delta = args.get_f64("delta", 0.5)?;
    let xi = args.get_f64("xi", 0.5)?;
    let system: Box<dyn Resolver> = match args.require("system")? {
        "rswoosh" => Box::new(RSwoosh::new(delta, xi)),
        "cc" => Box::new(CorrelationClustering::new(
            delta,
            xi,
            args.get_u64("seed", 7)?,
        )),
        "cr" => Box::new(CollectiveEr::new(delta, xi, args.get_f64("alpha", 0.25)?)),
        other => return Err(format!("unknown system {other:?} (rswoosh|cc|cr)")),
    };
    let metric = TypeDispatch::paper_default();
    let clusters = system.resolve(&ds, &metric);
    eprintln!(
        "{} resolved {} records into {} clusters",
        system.name(),
        ds.len(),
        clusters.len()
    );
    if args.has("eval") {
        let m = PairMetrics::score(&clusters, &ds.truth);
        eprintln!("pairwise: {m}");
    }
    let mut csv = String::from("record_id,entity\n");
    for (label, cluster) in clusters.iter().enumerate() {
        for &rid in cluster {
            csv.push_str(&format!("{rid},{label}\n"));
        }
    }
    write_out(args.get("labels"), &csv)
}

fn trace_check(args: &Args) -> Result<(), String> {
    let path = args.require("input")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let summary = hera_obs::validate(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: {} journal lines, all valid", summary.lines);
    for (kind, n) in &summary.by_kind {
        println!("  {kind}: {n}");
    }
    let core_lines = hera_obs::deterministic_view(&text).lines().count();
    println!("  ({core_lines} deterministic core lines)");
    Ok(())
}

fn demo() -> Result<(), String> {
    let ds = hera_types::motivating_example();
    println!("The paper's Fig. 1 scenario: six customer records, three schemas.\n");
    for rec in ds.iter() {
        let schema = ds.registry.schema(rec.schema);
        println!("  r{} [{}] {:?}", rec.id.raw() + 1, schema.name, rec.values);
    }
    let result = Hera::new(HeraConfig::paper_example()).run(&ds);
    println!(
        "\nHERA (δ = ξ = 0.5) finds {} entities:",
        result.entity_count()
    );
    for cluster in result.clusters() {
        let names: Vec<String> = cluster.iter().map(|r| format!("r{}", r + 1)).collect();
        println!("  {{{}}}", names.join(", "));
    }
    let m = PairMetrics::score(&result.clusters(), &ds.truth);
    println!("\nagainst ground truth: {m}");
    Ok(())
}
