//! Subcommand implementations.

use crate::args::Args;
use hera_baselines::{CollectiveEr, CorrelationClustering, RSwoosh, Resolver};
use hera_core::{chaos, BlockingScheme, Hera, HeraConfig, HeraSession, ResolveBudget};
use hera_eval::{bcubed, PairMetrics};
use hera_faults::{FaultInjector, FaultPlan};
use hera_sim::TypeDispatch;
use hera_types::{Dataset, HeraError, RecordId, SchemaId};
use std::fs;

/// Help text.
pub const USAGE: &str = "\
hera-cli — entity resolution on heterogeneous records (HERA, ICDE 2020)

USAGE:
  hera-cli import   --source NAME=FILE.csv [--source …] [--entity-column COL]
                [--name NAME] [--out FILE]
  hera-cli generate --preset <dm1|dm2|dm3|dm4> [--seed N] [--out FILE]
  hera-cli generate --size N [--dup-ratio 0.3] [--sources 6] [--attrs 12]
                [--corruption <light|moderate|heavy>] [--seed N] [--out FILE]
  hera-cli resolve  --input FILE [--delta 0.5] [--xi 0.5] [--threads N] [--labels FILE]
                [--eval] [--matchings] [--no-sim-cache] [--trace FILE.jsonl]
                [--trace-stderr] [--trace-deterministic] [--streaming]
                [--checkpoint FILE.hera] [--checkpoint-every N]
                [--budget N] [--budget-merges M]
                [--fault-plan FILE.json] [--blocking <none|token|qgram|lsh>]
  hera-cli checkpoint --input FILE --out FILE.hera [--upto N] [--delta 0.5] [--xi 0.5]
                [--threads N] [--no-sim-cache] [--blocking <none|token|qgram|lsh>]
  hera-cli restore-resolve --snapshot FILE.hera --input FILE [--labels FILE] [--eval]
                [--matchings] [--delta 0.5] [--xi 0.5] [--threads N] [--no-sim-cache]
                [--budget N] [--budget-merges M] [--checkpoint FILE.hera]
                [--trace FILE.jsonl] [--trace-stderr] [--trace-deterministic]
                [--blocking <none|token|qgram|lsh>]
  hera-cli exchange --input FILE [--fraction 0.333] [--seed N] [--out FILE]
  hera-cli fuse     --input FILE --labels FILE [--fraction 1.0] [--seed N] [--out FILE]
  hera-cli baseline --input FILE --system <rswoosh|cc|cr> [--delta 0.5] [--xi 0.5] [--eval]
  hera-cli trace-check --input FILE.jsonl [--require-monotonic-rounds]
  hera-cli faults gen --seed N [--out FILE.json]
  hera-cli faults replay --input FILE --plan FILE.json [--checkpoint-every N]
                [--crash-after N] [--strict-checkpoints] [--upto N] [--resolve-budget N]
                [--delta 0.5] [--xi 0.5] [--threads N] [--no-sim-cache]
  hera-cli serve    [--shards N] [--workers N] [--listen ADDR | (stdio default)]
                [--restore FILE.hera]
                [--stitch-every N] [--delta 0.5] [--xi 0.5] [--threads N]
                [--no-sim-cache] [--blocking <none|token|qgram|lsh>]
                [--trace FILE.jsonl] [--trace-deterministic]
                [--fault-plan FILE.json] [--no-retry]
  hera-cli client   --connect ADDR [--line JSON]...   (stdin JSONL when no --line)
  hera-cli demo
  hera-cli help

Datasets are JSON (hera_types::Dataset). Labels are CSV `record_id,entity`.
`--threads 0` (the default) auto-detects the cores; any setting yields
bit-identical results. `--no-sim-cache` disables the merge-aware similarity
memo cache (results are bit-identical either way; the flag exists for
baseline timing).

`resolve --blocking <scheme>` runs a blocking + meta-blocking pass ahead
of the similarity join (token, qgram, or lsh — see DESIGN.md, Candidate
generation) and compares only the blocked record pairs: sub-quadratic
candidate generation at a measured pair-completeness cost. The default
`none` keeps the exact all-pairs join. With `--streaming` (and in
`checkpoint` / `restore-resolve`) the same schemes run *incrementally*:
each arriving record joins only against its co-blocked candidates, and
the blocker state rides along in snapshots (a snapshot restores only
under the blocking scheme that produced it).

`--trace FILE` writes a structured run journal (JSON Lines: per-stage
spans, every merge, every decided schema matching — see DESIGN.md,
Observability). Core journal events are byte-identical at every thread
count and cache setting; `--trace-deterministic` drops the host-dependent
timing/diag lines too, making the whole file reproducible.
`--trace-stderr` mirrors per-round summaries to stderr as the run goes.
`trace-check` validates a journal (every line parses, every line has an
event kind) and prints per-kind counts.

`resolve --streaming` ingests record by record through a HeraSession
(resolving after each insert) instead of the batch driver.
`--checkpoint FILE` snapshots the full session state when ingestion
finishes; `--checkpoint-every N` (implies --streaming) additionally
snapshots after every N records, so a crash loses at most N records of
work. `checkpoint` stops after the first --upto records and writes the
snapshot; `restore-resolve` loads a snapshot, ingests the records the
snapshot has not seen yet, and reports like `resolve`. Restoring and
continuing is bit-identical to an uninterrupted streaming run — same
entities, same stats, same core journal events (see DESIGN.md,
Persistence). Snapshots are versioned and CRC-checked; corrupt or
version-skewed files are rejected.

`resolve --budget N` runs *progressive* (anytime) resolution: ingest
everything, then spend at most N pair comparisons on the
highest-expected-value candidates first (ranked by the value-pair
index's Up/Low bounds — see DESIGN.md, Progressive resolution).
`--budget-merges M` caps applied merges instead (or as well). An
unlimited budget is bit-identical to plain `resolve`; a budgeted run's
merges are a prefix of a bigger-budget run's. Combine with
`--checkpoint FILE.hera` to snapshot the exhausted frontier, then
`restore-resolve --snapshot FILE.hera --input FILE --budget N` to spend
the next slice — the resumed run continues exactly where the previous
one stopped (journal rounds keep counting up; `trace-check
--require-monotonic-rounds` enforces that). `--checkpoint-every` does
not compose with `--budget` (the budget already defines the boundary).
`faults replay --resolve-budget N` runs the chaos harness with that
per-record comparison budget, covering crash/recovery of progressive
runs.

`serve` runs the long-lived sharded ER service (crate hera-serve):
records arrive as JSON-lines requests — over stdin/stdout by default,
or TCP with `--listen 127.0.0.1:PORT` — route to `--shards N` per-shard
sessions by blocking key, resolve incrementally under per-request
budgets, and stay queryable (`lookup` / `entity` / `stats`).
`--stitch-every N` runs the cross-shard boundary pass automatically
every N ingested records (or send `{\"cmd\":\"stitch\"}` manually). The
service is concurrent: `--workers N` sets the shard-worker thread count
(default: one per shard; clamped to the shard count), shards ingest and
resolve in parallel, the boundary stitch runs double-buffered on its own
thread while lookups answer from the last published partition, and the
TCP listener serves any number of simultaneous clients — answers stay
bit-identical at every worker count. The `checkpoint` request snapshots
every shard plus a manifest (safe to race with live ingest);
`serve --restore FILE.hera` brings the whole service back. `client`
forwards request lines to a running server and prints the responses.

`resolve --fault-plan FILE` runs under a deterministic fault-injection
plan (hera-faults JSON): named failpoints on the snapshot write/read
paths and the trace sink fire on scheduled hits. A failing trace sink
degrades to a null sink (one `sink_degraded` journal event, then
silence); a failing mid-run checkpoint is retried with backoff, then
reported and absorbed — the resolve loop continues from in-memory state.
`faults gen --seed N` prints the deterministic random plan for a seed;
`faults replay` re-runs a (dataset, plan, schedule) triple through the
chaos harness and checks the no-torn-state invariant — the exact repro
path for a chaos-test failure (see DESIGN.md, Fault model).
";

/// Routes a parsed command line.
pub fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "import" => import(args),
        "generate" => generate(args),
        "resolve" => resolve(args),
        "checkpoint" => checkpoint(args),
        "restore-resolve" => restore_resolve(args),
        "exchange" => exchange(args),
        "fuse" => fuse(args),
        "baseline" => baseline(args),
        "trace-check" => trace_check(args),
        "serve" => serve(args),
        "client" => client(args),
        "faults gen" => faults_gen(args),
        "faults replay" => faults_replay(args),
        "faults" => Err("faults needs an action: `faults gen` or `faults replay`".into()),
        "demo" => demo(),
        other => Err(format!(
            "unknown subcommand {other:?} (try `hera-cli help`)"
        )),
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Dataset::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn write_out(path: Option<&str>, content: &str) -> Result<(), String> {
    match path {
        Some(p) => fs::write(p, content).map_err(|e| format!("writing {p}: {e}")),
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn import(args: &Args) -> Result<(), String> {
    let sources = args.get_all("source");
    if sources.is_empty() {
        return Err("import needs at least one --source NAME=FILE.csv".into());
    }
    let mut importer = hera_types::CsvImporter::new(args.get("name").unwrap_or("imported"));
    if let Some(col) = args.get("entity-column") {
        importer = importer.with_entity_column(col);
    }
    for spec in sources {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--source expects NAME=FILE.csv, got {spec:?}"))?;
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        importer = importer.add_source(name, text);
    }
    let ds = importer.build().map_err(|e| e.to_string())?;
    eprintln!(
        "imported {}: {} records under {} schemas ({} distinct attributes)",
        ds.name,
        ds.len(),
        ds.registry.len(),
        ds.truth.distinct_attr_count()
    );
    let json = ds.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn generate(args: &Args) -> Result<(), String> {
    // `--size N` selects the streaming scale generator (10⁴–10⁶-record
    // heterogeneous datasets); `--preset` the Table I toy datasets.
    if let Some(size) = args.get("size") {
        if args.get("preset").is_some() {
            return Err("--size and --preset are mutually exclusive".into());
        }
        let n: usize = size
            .parse()
            .map_err(|_| format!("--size expects an integer, got {size:?}"))?;
        let mut cfg = hera_datagen::scale_preset(n, args.get_u64("seed", 51)?);
        cfg.duplicate_ratio = args.get_f64("dup-ratio", cfg.duplicate_ratio)?;
        cfg.n_sources = args.get_u64("sources", cfg.n_sources as u64)? as usize;
        cfg.n_attrs = args.get_u64("attrs", cfg.n_attrs as u64)? as usize;
        cfg.corruption = match args.get("corruption").unwrap_or("moderate") {
            "light" => hera_datagen::CorruptionConfig::light(),
            "moderate" => hera_datagen::CorruptionConfig::moderate(),
            "heavy" => hera_datagen::CorruptionConfig::heavy(),
            other => {
                return Err(format!(
                    "unknown corruption profile {other:?} (expected light|moderate|heavy)"
                ))
            }
        };
        cfg.validate()
            .map_err(|e| format!("generate --size: {e}"))?;
        let ds = hera_datagen::ScaleGenerator::new(cfg).generate();
        eprintln!(
            "generated {}: {} records, {} entities, {} sources",
            ds.name,
            ds.len(),
            ds.truth.entity_count(),
            ds.registry.len()
        );
        let json = ds.to_json().map_err(|e| e.to_string())?;
        return write_out(args.get("out"), &json);
    }
    let preset = args.require("preset")?;
    let mut cfg = match preset {
        "dm1" => hera_datagen::presets::dm1(),
        "dm2" => hera_datagen::presets::dm2(),
        "dm3" => hera_datagen::presets::dm3(),
        "dm4" => hera_datagen::presets::dm4(),
        other => return Err(format!("unknown preset {other:?} (expected dm1..dm4)")),
    };
    if let Some(seed) = args.get("seed") {
        cfg.seed = seed
            .parse()
            .map_err(|_| format!("--seed expects an integer, got {seed:?}"))?;
    }
    let ds = hera_datagen::Generator::new(cfg).generate();
    eprintln!(
        "generated {}: {} records, {} entities, {} distinct attributes",
        ds.name,
        ds.len(),
        ds.truth.entity_count(),
        ds.truth.distinct_attr_count()
    );
    let json = ds.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn build_config(args: &Args) -> Result<HeraConfig, String> {
    let delta = args.get_f64("delta", 0.5)?;
    let xi = args.get_f64("xi", 0.5)?;
    let threads = args.get_u64("threads", 0)? as usize;
    let mut config = HeraConfig::new(delta, xi).with_threads(threads);
    if args.has("no-sim-cache") {
        config = config.without_sim_cache();
    }
    if let Some(scheme) = args.get("blocking") {
        config = config.with_blocking(BlockingScheme::parse(scheme)?);
    }
    Ok(config)
}

/// The `--budget N` / `--budget-merges M` pair as a [`ResolveBudget`];
/// `None` when neither flag is present (classic fixpoint resolution).
fn budget_of(args: &Args) -> Result<Option<ResolveBudget>, String> {
    let mut budget = ResolveBudget::unlimited();
    if args.get("budget").is_some() {
        budget.comparisons = Some(args.get_u64("budget", 0)?);
    }
    if args.get("budget-merges").is_some() {
        budget.merges = Some(args.get_u64("budget-merges", 0)?);
    }
    Ok(budget.is_bounded().then_some(budget))
}

/// Prints what a budgeted [`HeraSession::resolve_progressive`] call did.
fn report_progressive(report: &hera_core::ProgressiveReport) {
    if report.exhausted {
        let deferred = if report.comparisons_deferred > 0 {
            format!(
                " ({} verified pair(s) deferred by the merge budget)",
                report.comparisons_deferred
            )
        } else {
            String::new()
        };
        eprintln!(
            "budget exhausted: {} comparison(s) spent{deferred}, {} merge(s) applied, \
             {} dirty root(s) left on the frontier",
            report.comparisons_spent, report.merges, report.frontier
        );
    } else {
        eprintln!(
            "fixpoint reached within budget: {} comparison(s) spent, {} merge(s) applied",
            report.comparisons_spent, report.merges
        );
    }
}

/// Loads a fault plan file (hera-faults JSON).
fn load_fault_plan(path: &str) -> Result<FaultPlan, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let json = hera_types::json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    FaultPlan::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
}

/// The `--fault-plan FILE` injector, shared by the trace sink and the
/// session's snapshot IO; disabled when the flag is absent.
fn fault_injector(args: &Args) -> Result<FaultInjector, String> {
    match args.get("fault-plan") {
        Some(path) => {
            let plan = load_fault_plan(path)?;
            eprintln!(
                "fault plan {path}: {} rule(s), seed {}",
                plan.rules.len(),
                plan.seed
            );
            Ok(FaultInjector::new(&plan))
        }
        None => Ok(FaultInjector::disabled()),
    }
}

fn build_recorder(args: &Args) -> Result<hera_obs::Recorder, String> {
    let mut recorder = hera_obs::Recorder::disabled();
    if let Some(path) = args.get("trace") {
        recorder =
            hera_obs::Recorder::to_file(path).map_err(|e| format!("creating trace {path}: {e}"))?;
    }
    if args.has("trace-deterministic") {
        recorder = recorder.deterministic();
    }
    if args.has("trace-stderr") {
        recorder = recorder.with_progress(true);
    }
    Ok(recorder)
}

/// Registers every schema of `ds` in the (empty) session, in dataset
/// order, so that `ds` schema index `i` maps to session schema id `i`.
fn mirror_schemas(session: &mut HeraSession, ds: &Dataset) -> Vec<SchemaId> {
    ds.registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Ingests records `[from, to)` of `ds` one by one, resolving after
/// each insert; with `checkpoint_every = Some(n)` also snapshots the
/// session to `checkpoint_path` after every `n`-th ingested record.
///
/// A mid-run checkpoint that still fails after its retry policy
/// ([`HeraError::CheckpointFailed`]) degrades gracefully: the failure is
/// reported on stderr and resolution continues from in-memory state —
/// only durability suffered, and the next periodic checkpoint will try
/// again. Any other checkpoint error is fatal.
fn ingest_range(
    session: &mut HeraSession,
    ds: &Dataset,
    schemas: &[SchemaId],
    from: usize,
    to: usize,
    checkpoint_every: Option<usize>,
    checkpoint_path: Option<&str>,
) -> Result<(), String> {
    for (i, rec) in ds.records.iter().enumerate().skip(from).take(to - from) {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .map_err(|e| format!("ingesting record {i}: {e}"))?;
        session.resolve();
        if let (Some(n), Some(path)) = (checkpoint_every, checkpoint_path) {
            if (i + 1) % n == 0 {
                match session.checkpoint(path) {
                    Ok(()) => {}
                    Err(e @ HeraError::CheckpointFailed { .. }) => {
                        eprintln!(
                            "warning: {e}; continuing from in-memory state \
                             (next checkpoint will retry)"
                        );
                    }
                    Err(e) => return Err(format!("checkpointing to {path}: {e}")),
                }
            }
        }
    }
    Ok(())
}

/// Shared tail of `resolve --streaming` and `restore-resolve`: stats,
/// optional eval/matchings, and the labels CSV.
fn report_session(args: &Args, ds: &Dataset, session: &mut HeraSession) -> Result<(), String> {
    let stats = session.stats().clone();
    eprintln!(
        "resolved {} records into {} entities ({} iterations, {} merges, {} threads, {:?})",
        session.len(),
        session.clusters().len(),
        stats.iterations,
        stats.merges,
        stats.threads,
        stats.total_time()
    );
    if args.has("no-sim-cache") {
        eprintln!("  sim cache: off · {} metric calls", stats.metric_sim_calls);
    } else {
        eprintln!(
            "  sim cache: {} hits / {} misses ({:.0}% hit rate) · {} entries, {} invalidated · {} metric calls",
            stats.sim_cache_hits,
            stats.sim_cache_misses,
            stats.sim_cache_hit_rate() * 100.0,
            stats.sim_cache_size,
            stats.sim_cache_invalidated,
            stats.metric_sim_calls
        );
    }
    if args.has("eval") {
        let clusters = session.clusters();
        let m = PairMetrics::score(&clusters, &ds.truth);
        let (bp, br, bf) = bcubed(&clusters, &ds.truth);
        eprintln!("pairwise: {m}");
        eprintln!("b-cubed:  P={bp:.3} R={br:.3} F1={bf:.3}");
    }
    if args.has("matchings") {
        for m in session.schema_matchings() {
            eprintln!(
                "matching: {} ≈ {} (confidence {:.2})",
                ds.registry.attr_qualified_name(m.attr),
                ds.registry.attr_qualified_name(m.partner),
                m.confidence
            );
        }
    }
    let mut csv = String::from("record_id,entity\n");
    for rid in 0..session.len() {
        csv.push_str(&format!(
            "{rid},{}\n",
            session.entity_of(RecordId::new(rid as u32))
        ));
    }
    write_out(args.get("labels"), &csv)
}

fn resolve_streaming(args: &Args, ds: &Dataset) -> Result<(), String> {
    let every = match args.get("checkpoint-every") {
        Some(_) => Some(args.get_u64("checkpoint-every", 1)? as usize),
        None => None,
    };
    if every == Some(0) {
        return Err("--checkpoint-every expects a positive record count".into());
    }
    let snap_path = args.get("checkpoint");
    if every.is_some() && snap_path.is_none() {
        return Err("--checkpoint-every needs --checkpoint FILE.hera".into());
    }
    let injector = fault_injector(args)?;
    let recorder = build_recorder(args)?.with_faults(injector.clone());
    let mut session = HeraSession::builder(build_config(args)?)
        .recorder(recorder.clone())
        .faults(injector)
        .build();
    let schemas = mirror_schemas(&mut session, ds);
    ingest_range(&mut session, ds, &schemas, 0, ds.len(), every, snap_path)?;
    if let Some(path) = snap_path {
        session
            .checkpoint(path)
            .map_err(|e| format!("checkpointing to {path}: {e}"))?;
        eprintln!("checkpoint written to {path}");
    }
    recorder.flush();
    if let Some(path) = args.get("trace") {
        eprintln!("trace journal written to {path}");
    }
    report_session(args, ds, &mut session)
}

fn checkpoint(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let out = args.require("out")?;
    let upto = match args.get("upto") {
        Some(_) => args.get_u64("upto", 0)? as usize,
        None => ds.len(),
    };
    if upto > ds.len() {
        return Err(format!(
            "--upto {upto} exceeds the dataset's {} records",
            ds.len()
        ));
    }
    let recorder = build_recorder(args)?;
    let mut session = HeraSession::builder(build_config(args)?)
        .recorder(recorder.clone())
        .build();
    let schemas = mirror_schemas(&mut session, &ds);
    ingest_range(&mut session, &ds, &schemas, 0, upto, None, None)?;
    session
        .checkpoint(out)
        .map_err(|e| format!("checkpointing to {out}: {e}"))?;
    recorder.flush();
    eprintln!(
        "checkpointed {upto} of {} records ({} entities so far) to {out}",
        ds.len(),
        session.clusters().len()
    );
    Ok(())
}

fn restore_resolve(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let snap = args.require("snapshot")?;
    let recorder = build_recorder(args)?;
    let mut session = HeraSession::builder(build_config(args)?)
        .recorder(recorder.clone())
        .restore(snap)
        .map_err(|e| format!("restoring {snap}: {e}"))?;
    if session.len() > ds.len() {
        return Err(format!(
            "snapshot has {} records but the dataset only has {}",
            session.len(),
            ds.len()
        ));
    }
    if session.registry().len() != ds.registry.len() {
        return Err(format!(
            "snapshot registry has {} schemas but the dataset has {}",
            session.registry().len(),
            ds.registry.len()
        ));
    }
    let schemas: Vec<SchemaId> = (0..ds.registry.len() as u32).map(SchemaId::new).collect();
    let from = session.len();
    eprintln!(
        "restored {snap} at record {from}; continuing through record {}",
        ds.len()
    );
    if let Some(budget) = budget_of(args)? {
        // Budgeted continuation: ingest whatever the snapshot has not
        // seen, then spend one budgeted call on the frontier — for a
        // snapshot taken at budget exhaustion this picks up exactly
        // where the previous slice stopped.
        for (i, rec) in ds.records.iter().enumerate().skip(from) {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .map_err(|e| format!("ingesting record {i}: {e}"))?;
        }
        let report = session.resolve_progressive(budget);
        report_progressive(&report);
        if let Some(path) = args.get("checkpoint") {
            session
                .checkpoint(path)
                .map_err(|e| format!("checkpointing to {path}: {e}"))?;
            eprintln!("checkpoint written to {path}");
        }
    } else {
        ingest_range(&mut session, &ds, &schemas, from, ds.len(), None, None)?;
    }
    recorder.flush();
    if let Some(path) = args.get("trace") {
        eprintln!("trace journal written to {path}");
    }
    report_session(args, &ds, &mut session)
}

/// `resolve --budget N [--budget-merges M]`: ingest everything into a
/// session without intermediate resolution, then spend one budgeted
/// [`HeraSession::resolve_progressive`] call over the whole frontier —
/// the highest-expected-value candidates first. `--checkpoint FILE`
/// snapshots the (possibly exhausted) session so `restore-resolve
/// --budget` can spend the next slice.
fn resolve_budgeted(args: &Args, ds: &Dataset, budget: ResolveBudget) -> Result<(), String> {
    if args.get("checkpoint-every").is_some() {
        return Err(
            "--checkpoint-every does not compose with --budget; the budget boundary is \
             the checkpoint boundary — use --checkpoint FILE.hera"
                .into(),
        );
    }
    let injector = fault_injector(args)?;
    let recorder = build_recorder(args)?.with_faults(injector.clone());
    let mut session = HeraSession::builder(build_config(args)?)
        .recorder(recorder.clone())
        .faults(injector)
        .build();
    let schemas = mirror_schemas(&mut session, ds);
    for (i, rec) in ds.records.iter().enumerate() {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .map_err(|e| format!("ingesting record {i}: {e}"))?;
    }
    let report = session.resolve_progressive(budget);
    report_progressive(&report);
    if let Some(path) = args.get("checkpoint") {
        session
            .checkpoint(path)
            .map_err(|e| format!("checkpointing to {path}: {e}"))?;
        eprintln!(
            "checkpoint written to {path}; resume with \
             `hera-cli restore-resolve --snapshot {path} --input … --budget N`"
        );
    }
    recorder.flush();
    if let Some(path) = args.get("trace") {
        eprintln!("trace journal written to {path}");
    }
    report_session(args, ds, &mut session)
}

fn resolve(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    if let Some(budget) = budget_of(args)? {
        return resolve_budgeted(args, &ds, budget);
    }
    if args.has("streaming")
        || args.get("checkpoint-every").is_some()
        || args.get("checkpoint").is_some()
    {
        return resolve_streaming(args, &ds);
    }
    let config = build_config(args)?;
    // Batch resolution's only IO edge is the trace sink; the snapshot
    // failpoints need `--streaming`.
    let recorder = build_recorder(args)?.with_faults(fault_injector(args)?);
    let result = Hera::builder(config)
        .recorder(recorder.clone())
        .build()
        .run(&ds)
        .map_err(|e| e.to_string())?;
    recorder.flush();
    if let Some(path) = args.get("trace") {
        eprintln!("trace journal written to {path}");
    }
    eprintln!(
        "resolved {} records into {} entities ({} iterations, {} merges, {} threads, {:?})",
        ds.len(),
        result.entity_count(),
        result.stats.iterations,
        result.stats.merges,
        result.stats.threads,
        result.stats.total_time()
    );
    eprintln!(
        "  index: {:?} ({:.0} pairs/s) · verify: {:?} ({:.0} pairs/s)",
        result.stats.index_build_time,
        result.stats.index_pairs_per_sec(),
        result.stats.verify_time,
        result.stats.verify_pairs_per_sec()
    );
    if args.has("no-sim-cache") {
        eprintln!(
            "  sim cache: off · {} metric calls",
            result.stats.metric_sim_calls
        );
    } else {
        eprintln!(
            "  sim cache: {} hits / {} misses ({:.0}% hit rate) · {} entries, {} invalidated · {} metric calls",
            result.stats.sim_cache_hits,
            result.stats.sim_cache_misses,
            result.stats.sim_cache_hit_rate() * 100.0,
            result.stats.sim_cache_size,
            result.stats.sim_cache_invalidated,
            result.stats.metric_sim_calls
        );
    }
    if args.has("eval") {
        let m = PairMetrics::score(&result.clusters(), &ds.truth);
        let (bp, br, bf) = bcubed(&result.clusters(), &ds.truth);
        eprintln!("pairwise: {m}");
        eprintln!("b-cubed:  P={bp:.3} R={br:.3} F1={bf:.3}");
    }
    if args.has("matchings") {
        for m in &result.schema_matchings {
            eprintln!(
                "matching: {} ≈ {} (confidence {:.2})",
                ds.registry.attr_qualified_name(m.attr),
                ds.registry.attr_qualified_name(m.partner),
                m.confidence
            );
        }
    }
    let mut csv = String::from("record_id,entity\n");
    for (rid, &e) in result.entity_of.iter().enumerate() {
        csv.push_str(&format!("{rid},{e}\n"));
    }
    write_out(args.get("labels"), &csv)
}

fn exchange(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let fraction = args.get_f64("fraction", 1.0 / 3.0)?;
    let seed = args.get_u64("seed", 1)?;
    let plan = hera_exchange::plan_exchange_ensuring(
        &ds,
        fraction,
        seed,
        &[hera_types::CanonAttrId::new(0)],
    );
    let out = hera_exchange::chase(&ds, &plan, format!("{}-X", ds.name));
    eprintln!(
        "exchanged into {} target attributes; {} source values dropped",
        plan.target_attrs.len(),
        plan.dropped_value_count
    );
    let json = out.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn parse_labels(path: &str, n: usize) -> Result<Vec<u32>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut labels = vec![u32::MAX; n];
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 && line.starts_with("record_id") {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let rid: usize = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| format!("{path}:{}: bad record id", lineno + 1))?;
        let ent: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| format!("{path}:{}: bad entity", lineno + 1))?;
        if rid >= n {
            return Err(format!(
                "{path}:{}: record id {rid} out of range",
                lineno + 1
            ));
        }
        labels[rid] = ent;
    }
    if let Some(missing) = labels.iter().position(|&l| l == u32::MAX) {
        return Err(format!("{path}: no label for record {missing}"));
    }
    Ok(labels)
}

fn fuse(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let labels = parse_labels(args.require("labels")?, ds.len())?;
    let fraction = args.get_f64("fraction", 1.0)?;
    let seed = args.get_u64("seed", 1)?;
    let plan = hera_exchange::plan_exchange_ensuring(
        &ds,
        fraction,
        seed,
        &[hera_types::CanonAttrId::new(0)],
    );
    let fused = hera_exchange::fuse_entities(&ds, &labels, &plan, format!("{}-fused", ds.name));
    eprintln!(
        "fused {} records into {} entity records under {} target attributes",
        ds.len(),
        fused.len(),
        plan.target_attrs.len()
    );
    let json = fused.to_json().map_err(|e| e.to_string())?;
    write_out(args.get("out"), &json)
}

fn baseline(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    if ds.registry.len() != 1 {
        return Err(format!(
            "baselines need a homogeneous dataset (one schema), got {} — run `hera exchange` first",
            ds.registry.len()
        ));
    }
    let delta = args.get_f64("delta", 0.5)?;
    let xi = args.get_f64("xi", 0.5)?;
    let system: Box<dyn Resolver> = match args.require("system")? {
        "rswoosh" => Box::new(RSwoosh::new(delta, xi)),
        "cc" => Box::new(CorrelationClustering::new(
            delta,
            xi,
            args.get_u64("seed", 7)?,
        )),
        "cr" => Box::new(CollectiveEr::new(delta, xi, args.get_f64("alpha", 0.25)?)),
        other => return Err(format!("unknown system {other:?} (rswoosh|cc|cr)")),
    };
    let metric = TypeDispatch::paper_default();
    let clusters = system.resolve(&ds, &metric);
    eprintln!(
        "{} resolved {} records into {} clusters",
        system.name(),
        ds.len(),
        clusters.len()
    );
    if args.has("eval") {
        let m = PairMetrics::score(&clusters, &ds.truth);
        eprintln!("pairwise: {m}");
    }
    let mut csv = String::from("record_id,entity\n");
    for (label, cluster) in clusters.iter().enumerate() {
        for &rid in cluster {
            csv.push_str(&format!("{rid},{label}\n"));
        }
    }
    write_out(args.get("labels"), &csv)
}

fn trace_check(args: &Args) -> Result<(), String> {
    let path = args.require("input")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let summary = hera_obs::validate(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: {} journal lines, all valid", summary.lines);
    for (kind, n) in &summary.by_kind {
        println!("  {kind}: {n}");
    }
    let core_lines = hera_obs::deterministic_view(&text).lines().count();
    println!("  ({core_lines} deterministic core lines)");
    match hera_obs::check_rounds_monotonic(&text) {
        Ok(n) => println!("  rounds monotonic across {n} round-bearing line(s)"),
        Err(e) if args.has("require-monotonic-rounds") => {
            return Err(format!("{path}: rounds not monotonic: {e}"));
        }
        Err(e) => {
            // Crash-*replay* journals legitimately rewind (the writer
            // re-executes pre-crash rounds); anything else is a resumed
            // run that restarted its counter — a bug.
            println!("  rounds NOT monotonic ({e}) — expected only for crash-replay journals");
        }
    }
    Ok(())
}

fn faults_gen(args: &Args) -> Result<(), String> {
    let seed = args.get_u64("seed", 1)?;
    let plan = FaultPlan::random(seed);
    eprintln!(
        "fault plan for seed {seed}: {} rule(s) over {:?}",
        plan.rules.len(),
        plan.rules
            .iter()
            .map(|r| r.point.as_str())
            .collect::<Vec<_>>()
    );
    write_out(args.get("out"), &plan.to_json().to_string_compact())
}

fn faults_replay(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args.require("input")?)?;
    let plan = load_fault_plan(args.require("plan")?)?;
    let mut cfg = chaos::ChaosConfig::new(
        build_config(args)?,
        args.get_u64("checkpoint-every", 1)? as usize,
    );
    if args.get("crash-after").is_some() {
        cfg.crash_after = Some(args.get_u64("crash-after", 0)? as usize);
    }
    cfg.strict_checkpoints = args.has("strict-checkpoints");
    if args.get("upto").is_some() {
        cfg.upto = Some(args.get_u64("upto", 0)? as usize);
    }
    if args.get("resolve-budget").is_some() {
        cfg.resolve_budget = Some(args.get_u64("resolve-budget", 0)?);
    }

    let dir = std::env::temp_dir().join(format!("hera-faults-replay-{}", std::process::id()));
    fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let verdict = chaos::check_no_torn_state(&ds, &cfg, &plan, &dir);
    let _ = fs::remove_dir_all(&dir);

    let report = &verdict.report;
    eprintln!(
        "replayed {} records under plan seed {} ({} rule(s))",
        cfg.upto.map_or(ds.len(), |u| u.min(ds.len())),
        plan.seed,
        plan.rules.len()
    );
    for f in &report.fired {
        eprintln!("  fired: {f}");
    }
    eprintln!(
        "  outcome: {} · {} checkpoint failure(s) absorbed · {} recovery(ies) · sink degraded: {}",
        if report.completed() {
            "completed".to_string()
        } else {
            format!(
                "typed error ({})",
                report.error.as_ref().expect("error set")
            )
        },
        report.checkpoint_failures,
        report.restores,
        report.sink_degraded
    );
    if verdict.ok {
        println!("no-torn-state invariant: OK");
        Ok(())
    } else {
        Err(format!(
            "no-torn-state invariant VIOLATED: {}",
            verdict.detail
        ))
    }
}

/// `serve` — run the long-lived sharded ER service over stdio or TCP.
fn serve(args: &Args) -> Result<(), String> {
    let config = build_config(args)?;
    let shards = args.get_u64("shards", 1)? as usize;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let stitch_every = args.get_u64("stitch-every", 0)? as usize;
    let workers = args.get_u64("workers", 0)? as usize;
    let recorder = build_recorder(args)?;
    let injector = fault_injector(args)?;
    let mut builder = hera_serve::ErService::builder(config, shards)
        .stitch_every(stitch_every)
        .workers(workers)
        .recorder(recorder.clone())
        .faults(injector);
    if args.has("no-retry") {
        builder = builder.retry(hera_faults::BackoffPolicy::none());
    }
    let service = match args.get("restore") {
        Some(path) => builder
            .restore(path)
            .map_err(|e| format!("restoring {path}: {e}"))?,
        None => builder.build(),
    };
    eprintln!(
        "hera-serve: {} shard(s) on {} worker thread(s), {} record(s) restored, stitch-every {}",
        service.shard_count(),
        service.worker_count(),
        service.len(),
        stitch_every
    );

    let service = std::sync::Arc::new(service);
    let shutdown = match args.get("listen") {
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            eprintln!(
                "listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            hera_serve::serve_tcp(service.clone(), listener).map(|_| true)
        }
        None => {
            // stdio mode: requests on stdin, responses on stdout.
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            hera_serve::serve_lines(&service, stdin.lock(), &mut stdout)
        }
    }
    .map_err(|e| e.to_string())?;
    recorder.flush();
    eprintln!(
        "hera-serve: {} ({} record(s), {} stitched)",
        if shutdown { "shutdown" } else { "input closed" },
        service.len(),
        service.len() - service.pending_len()
    );
    Ok(())
}

/// `client` — forward JSON-lines requests to a running server. `--line`
/// sends one request per flag occurrence; with none, stdin is piped.
/// Responses print to stdout, one line per request.
fn client(args: &Args) -> Result<(), String> {
    let addr = args.require("connect")?;
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let reader = std::io::BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let lines: Vec<String> = if args.get_all("line").is_empty() {
        use std::io::BufRead as _;
        std::io::stdin()
            .lock()
            .lines()
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?
    } else {
        args.get_all("line").to_vec()
    };
    use std::io::{BufRead as _, Write as _};
    let mut responses = reader;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut reply = String::new();
        if responses.read_line(&mut reply).map_err(|e| e.to_string())? == 0 {
            return Err("server closed the connection".into());
        }
        print!("{reply}");
    }
    Ok(())
}

fn demo() -> Result<(), String> {
    let ds = hera_types::motivating_example();
    println!("The paper's Fig. 1 scenario: six customer records, three schemas.\n");
    for rec in ds.iter() {
        let schema = ds.registry.schema(rec.schema);
        println!("  r{} [{}] {:?}", rec.id.raw() + 1, schema.name, rec.values);
    }
    let result = Hera::builder(HeraConfig::paper_example())
        .build()
        .run(&ds)
        .map_err(|e| e.to_string())?;
    println!(
        "\nHERA (δ = ξ = 0.5) finds {} entities:",
        result.entity_count()
    );
    for cluster in result.clusters() {
        let names: Vec<String> = cluster.iter().map(|r| format!("r{}", r + 1)).collect();
        println!("  {{{}}}", names.join(", "));
    }
    let m = PairMetrics::score(&result.clusters(), &ds.truth);
    println!("\nagainst ground truth: {m}");
    Ok(())
}
